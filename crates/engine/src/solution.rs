//! The unified solver result and its generic ledger derivation.
//!
//! A [`Solution`] carries the totals every consumer needs (`total_cost`,
//! the `Σ|d_i|` denominator of `ave_cost`) plus a flat list of
//! [`SolutionPart`]s — the committed outputs of the run. One generic
//! pass ([`Solution::ledger`]) turns those parts into the decision
//! ledger of `mcs-obs`, replacing the three near-identical per-algorithm
//! builders that used to live in `dp_greedy::ledger`
//! (`dp_greedy_ledger` / `optimal_ledger` / `greedy_ledger`):
//!
//! * [`SolutionPart::Schedule`] — an explicit schedule priced at the
//!   part's own rates (base rates for singletons, `2αμ`/`2αλ` for
//!   package schedules): one `cache` event per interval and one
//!   `transfer` event per transfer, exactly as
//!   `mcs_offline::ledger::schedule_events` derives them.
//! * [`SolutionPart::Serve`] — the recorded three-arm greedy choices of
//!   Observation 2, carrying the real `option_costs` of all arms.
//! * [`SolutionPart::Aggregate`] — a channel-attributed lump cost for
//!   solvers that only report aggregates (the on-line DP_Greedy's
//!   package-transfer counts, the resilient policy's attempt totals, the
//!   multi-item partial-subset serving).
//!
//! Because parts are emitted in the same order the old builders walked
//! the reports, a `dp_greedy` Solution renders the byte-identical JSONL
//! the pre-engine `dpg trace solve` produced.

use mcs_model::Schedule;
use mcs_obs::ledger::OPTION_NAMES;
use mcs_obs::{Ledger, LedgerEvent, Subject};
use mcs_offline::ledger::schedule_events;

use crate::SolverKind;

/// One recorded serve-time arm choice (Observation 2's three-arm greedy).
#[derive(Debug, Clone, Copy)]
pub struct ServeChoice {
    /// The arm committed to: `"cache"`, `"transfer"`, or `"package"`.
    pub option_chosen: &'static str,
    /// Real cost of each arm at decision time, `f64::INFINITY` for
    /// infeasible arms, in [`OPTION_NAMES`] slot order.
    pub option_costs: [f64; 3],
    /// Decision time.
    pub t: f64,
    /// Cost actually paid.
    pub cost: f64,
}

/// One committed output of a solver run.
#[derive(Debug, Clone)]
pub enum SolutionPart {
    /// An explicit schedule priced at `mu`/`lambda` (pass the
    /// package-scaled rates for package schedules).
    Schedule {
        /// Ledger phase, e.g. `"offline"`, `"phase2.package"`.
        phase: &'static str,
        /// The item or pair the schedule serves.
        subject: Subject,
        /// The schedule itself.
        schedule: Schedule,
        /// Cache rate this schedule is priced at.
        mu: f64,
        /// Transfer cost this schedule is priced at.
        lambda: f64,
    },
    /// Recorded serve-time arm choices.
    Serve {
        /// Ledger phase (DP_Greedy uses `"phase2.serve"`).
        phase: &'static str,
        /// The item served.
        subject: Subject,
        /// The choices, in request order.
        choices: Vec<ServeChoice>,
    },
    /// A lump cost attributed to one channel (for aggregate-only
    /// solvers).
    Aggregate {
        /// Ledger phase, e.g. `"online"`, `"phase2.partial"`.
        phase: &'static str,
        /// The item or pair the cost is attributed to.
        subject: Subject,
        /// The channel: `"cache"`, `"transfer"`, or `"package"`.
        channel: &'static str,
        /// Attribution time (the horizon for end-of-run settlements).
        t: f64,
        /// The lump cost.
        cost: f64,
    },
}

impl SolutionPart {
    /// Sum of the costs this part will contribute to the ledger.
    pub fn cost(&self, _total: f64) -> f64 {
        match self {
            SolutionPart::Schedule {
                schedule,
                mu,
                lambda,
                ..
            } => {
                let cache: f64 = schedule.intervals.iter().map(|iv| mu * iv.span.len()).sum();
                cache + lambda * schedule.transfers.len() as f64
            }
            SolutionPart::Serve { choices, .. } => choices.iter().map(|c| c.cost).sum(),
            SolutionPart::Aggregate { cost, .. } => *cost,
        }
    }
}

/// The unified result of a [`crate::CachingSolver`] run.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The producing solver's registry name (also the ledger `algo`).
    pub algo: &'static str,
    /// Off-line or on-line.
    pub kind: SolverKind,
    /// Total cost as reported by the algorithm (authoritative — the
    /// ledger reconciles *against* it, it is never re-summed from parts).
    pub total_cost: f64,
    /// `Σ|d_i|` — total item accesses, the `ave_cost` denominator.
    pub total_accesses: usize,
    /// The committed outputs, in deterministic emission order.
    pub parts: Vec<SolutionPart>,
}

impl Solution {
    /// The paper's headline metric: cost per item access.
    pub fn ave_cost(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_cost / self.total_accesses as f64
        }
    }

    /// Derives the decision ledger from the parts — the single generic
    /// derivation shared by every registered solver.
    pub fn ledger(&self) -> Ledger {
        let mut events = Vec::new();
        for part in &self.parts {
            match part {
                SolutionPart::Schedule {
                    phase,
                    subject,
                    schedule,
                    mu,
                    lambda,
                } => {
                    schedule_events(
                        self.algo,
                        phase,
                        *subject,
                        schedule,
                        *mu,
                        *lambda,
                        &mut events,
                    );
                }
                SolutionPart::Serve {
                    phase,
                    subject,
                    choices,
                } => {
                    for c in choices {
                        events.push(LedgerEvent {
                            algo: self.algo,
                            phase,
                            subject: *subject,
                            option_chosen: c.option_chosen,
                            option_costs: c.option_costs,
                            t: c.t,
                            cost: c.cost,
                        });
                    }
                }
                SolutionPart::Aggregate {
                    phase,
                    subject,
                    channel,
                    t,
                    cost,
                } => {
                    let slot = OPTION_NAMES
                        .iter()
                        .position(|n| n == channel)
                        .expect("channel is one of cache/transfer/package");
                    let mut option_costs = [f64::INFINITY; 3];
                    option_costs[slot] = *cost;
                    events.push(LedgerEvent {
                        algo: self.algo,
                        phase,
                        subject: *subject,
                        option_chosen: channel,
                        option_costs,
                        t: *t,
                        cost: *cost,
                    });
                }
            }
        }
        Ledger { events }
    }

    /// Absolute gap between the derived ledger total and the reported
    /// total cost (the reconciliation theorem says this is 0 up to
    /// floating-point associativity).
    pub fn reconciliation_gap(&self) -> f64 {
        (self.ledger().total_cost() - self.total_cost).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggregate(channel: &'static str, cost: f64) -> SolutionPart {
        SolutionPart::Aggregate {
            phase: "online",
            subject: Subject::Item(0),
            channel,
            t: 1.0,
            cost,
        }
    }

    #[test]
    fn aggregate_parts_land_in_their_channel() {
        let s = Solution {
            algo: "test",
            kind: SolverKind::Online,
            total_cost: 4.5,
            total_accesses: 9,
            parts: vec![
                aggregate("cache", 1.0),
                aggregate("transfer", 2.0),
                aggregate("package", 1.5),
            ],
        };
        let b = s.ledger().breakdown();
        assert_eq!(b.cache, 1.0);
        assert_eq!(b.transfer, 2.0);
        assert_eq!(b.package_delivery, 1.5);
        assert!(s.reconciliation_gap() < 1e-12);
        assert!((s.ave_cost() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serve_parts_carry_option_costs_through() {
        let s = Solution {
            algo: "test",
            kind: SolverKind::Offline,
            total_cost: 2.0,
            total_accesses: 1,
            parts: vec![SolutionPart::Serve {
                phase: "phase2.serve",
                subject: Subject::Item(3),
                choices: vec![ServeChoice {
                    option_chosen: "transfer",
                    option_costs: [5.0, 2.0, f64::INFINITY],
                    t: 0.7,
                    cost: 2.0,
                }],
            }],
        };
        let l = s.ledger();
        assert_eq!(l.events.len(), 1);
        assert_eq!(l.events[0].option_chosen, "transfer");
        assert_eq!(l.events[0].option_costs[0], 5.0);
        assert!(s.reconciliation_gap() < 1e-12);
    }

    #[test]
    fn empty_solution_has_an_empty_ledger() {
        let s = Solution {
            algo: "test",
            kind: SolverKind::Offline,
            total_cost: 0.0,
            total_accesses: 0,
            parts: vec![],
        };
        assert!(s.ledger().is_empty());
        assert_eq!(s.ave_cost(), 0.0);
    }
}

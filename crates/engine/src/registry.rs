//! The static solver registry.
//!
//! One flat array of `&'static dyn CachingSolver` — every algorithm in
//! the workspace, offline and online. Consumers iterate [`solvers`] (the
//! CLI's `dpg algos`, the bench harness, the workspace reconciliation
//! test, the CI registry-smoke job) or look one up by name with
//! [`find`], which also accepts the historical CLI spellings (`dpg`,
//! `package`).

use crate::solvers::{
    DpGreedySolver, ExhaustiveSolver, GreedySolver, HeteroExactSolver, HeteroGreedySolver,
    KPackSolver, MultiSolver, OnlineDpgSolver, OptimalFastSolver, OptimalSolver,
    PackageServedSolver, ResilientSolver, SkiRentalSolver, TieredWaterfallSolver, WindowedSolver,
};
use crate::CachingSolver;

/// Every registered solver, offline first, in stable presentation order.
/// The plane-aware solvers (`hetero_*`, `tiered_waterfall`) are appended
/// so pre-plane tooling that pins registry order keeps its rows.
static REGISTRY: [&'static dyn CachingSolver; 15] = [
    &DpGreedySolver,
    &OptimalSolver,
    &OptimalFastSolver,
    &GreedySolver,
    &ExhaustiveSolver,
    &PackageServedSolver,
    &MultiSolver,
    &KPackSolver,
    &WindowedSolver,
    &SkiRentalSolver,
    &OnlineDpgSolver,
    &ResilientSolver,
    &HeteroExactSolver,
    &HeteroGreedySolver,
    &TieredWaterfallSolver,
];

/// Alternate spellings accepted by [`find`] (the pre-engine CLI names,
/// plus `kpack` for the K-package solver).
static ALIASES: [(&str, &str); 3] = [
    ("dpg", "dp_greedy"),
    ("package", "package_served"),
    ("kpack", "dpg_k"),
];

/// All registered solvers, in stable presentation order.
pub fn solvers() -> &'static [&'static dyn CachingSolver] {
    &REGISTRY
}

/// The `(alias, canonical name)` spellings [`find`] accepts beyond the
/// registry names — surfaced so `dpg algos` can list them.
pub fn aliases() -> &'static [(&'static str, &'static str)] {
    &ALIASES
}

/// Looks a solver up by registry name or alias (`dpg`, `package`).
pub fn find(name: &str) -> Option<&'static dyn CachingSolver> {
    let canonical = ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map_or(name, |(_, target)| *target);
    REGISTRY.iter().copied().find(|s| s.name() == canonical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunContext, SolverKind};
    use mcs_model::par::par_map;
    use mcs_model::rng::Rng;
    use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

    #[test]
    fn names_are_unique_and_finds_resolve() {
        let mut seen = std::collections::BTreeSet::new();
        for s in solvers() {
            assert!(seen.insert(s.name()), "duplicate name {}", s.name());
            assert!(std::ptr::eq(find(s.name()).unwrap(), *s));
            assert!(!s.description().is_empty());
        }
        assert_eq!(find("dpg").unwrap().name(), "dp_greedy");
        assert_eq!(find("package").unwrap().name(), "package_served");
        assert_eq!(find("kpack").unwrap().name(), "dpg_k");
        assert!(find("nope").is_none());
    }

    /// Random workload for the cross-validation below; `limit` clamps
    /// the request count for the exponential solver.
    fn random_sequence(rng: &mut Rng, limit: usize) -> RequestSeq {
        let servers = rng.gen_range(2u32..=4);
        let items = rng.gen_range(2u32..=4);
        let n = rng.gen_range(6usize..=15).min(limit);
        let mut b = RequestSeqBuilder::new(servers, items);
        let mut t = 0.0;
        for _ in 0..n {
            t += 0.1 + rng.gen_f64() * 2.0;
            let server = rng.gen_range(0u32..servers);
            let first = rng.gen_range(0u32..items);
            let mut set = vec![first];
            if rng.gen_bool(0.4) {
                let second = (first + 1) % items;
                set.push(second);
            }
            b = b.push(server, t, set);
        }
        b.build().expect("generated sequence is valid")
    }

    fn random_model(rng: &mut Rng) -> CostModel {
        CostModel::new(
            0.5 + rng.gen_f64() * 3.0,
            0.5 + rng.gen_f64() * 6.0,
            0.55 + rng.gen_f64() * 0.4,
        )
        .expect("generated model is valid")
    }

    /// Registry-wide cross-validation on random workloads, run in
    /// parallel via the shared `mcs_model::par` utility:
    /// every solver reconciles, the three exact per-item solvers agree,
    /// and no offline heuristic beats the exact per-item optimum family
    /// it refines.
    #[test]
    fn registry_cross_validation_on_random_workloads() {
        let cases: Vec<u64> = (0..24).collect();
        let failures: Vec<String> = par_map(&cases, |&case| {
            let mut rng = Rng::seed_from_u64(0x5EED_0000 + case);
            let seq = random_sequence(&mut rng, 16);
            let ctx = RunContext::new(random_model(&mut rng)).with_theta(0.3);
            let mut costs = std::collections::BTreeMap::new();
            let mut errs = Vec::new();
            for s in solvers() {
                if s.request_limit().is_some_and(|l| seq.requests().len() > l) {
                    continue;
                }
                let sol = s.solve(&seq, &ctx);
                if sol.reconciliation_gap() > 1e-9 {
                    errs.push(format!(
                        "case {case}: {} gap {:.3e}",
                        s.name(),
                        sol.reconciliation_gap()
                    ));
                }
                costs.insert(s.name(), sol.total_cost);
            }
            let optimal = costs["optimal"];
            for exact in ["optimal_fast", "exhaustive"] {
                if let Some(c) = costs.get(exact) {
                    if (c - optimal).abs() > 1e-9 {
                        errs.push(format!("case {case}: {exact} {c} != optimal {optimal}"));
                    }
                }
            }
            if costs["greedy"] < optimal - 1e-9 {
                errs.push(format!("case {case}: greedy beat optimal"));
            }
            errs.join("; ")
        })
        .into_iter()
        .filter(|e| !e.is_empty())
        .collect();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    #[test]
    fn paper_example_totals_match_the_known_landmarks() {
        let seq = dp_greedy::paper_example::paper_sequence();
        let ctx = RunContext::paper_example();
        let dpg = find("dp_greedy").unwrap().solve(&seq, &ctx);
        assert!((dpg.total_cost - dp_greedy::paper_example::EXPECTED_TOTAL).abs() < 1e-9);
        assert!(dpg.reconciliation_gap() < 1e-9);
        for s in solvers() {
            let sol = s.solve(&seq, &ctx);
            assert!(
                sol.reconciliation_gap() < 1e-9,
                "{} fails reconciliation on the paper example (gap {:.3e})",
                s.name(),
                sol.reconciliation_gap()
            );
            assert_eq!(sol.algo, s.name());
            assert_eq!(sol.kind, s.kind());
            if s.kind() == SolverKind::Offline {
                assert_eq!(sol.total_accesses, seq.total_item_accesses());
            }
        }
    }

    /// `dpg_k` at the pairwise shape (the default `max_group = 2`)
    /// delegates to the exact `dp_greedy` pipeline: cost bits and ledger
    /// JSONL match modulo the `algo` label.
    #[test]
    fn dpg_k_at_pairwise_shape_matches_dp_greedy_exactly() {
        let mut rng = Rng::seed_from_u64(0x4B50_4143);
        for case in 0..6 {
            let seq = random_sequence(&mut rng, usize::MAX);
            let ctx = RunContext::new(random_model(&mut rng)).with_theta(0.3);
            let a = find("dp_greedy").unwrap().solve(&seq, &ctx);
            let b = find("dpg_k").unwrap().solve(&seq, &ctx);
            assert_eq!(
                a.total_cost.to_bits(),
                b.total_cost.to_bits(),
                "case {case}"
            );
            let la = a.ledger().to_jsonl_string();
            let lb = b
                .ledger()
                .to_jsonl_string()
                .replace("\"algo\":\"dpg_k\"", "\"algo\":\"dp_greedy\"");
            assert_eq!(la, lb, "case {case}");
        }
    }

    /// Larger `max_group` with the adaptive θ rule stays reconciled and
    /// deterministic across repeated runs.
    #[test]
    fn dpg_k_large_groups_reconcile_and_are_deterministic() {
        let mut rng = Rng::seed_from_u64(0x4B50_4B50);
        let seq = random_sequence(&mut rng, usize::MAX);
        let model = random_model(&mut rng);
        for k in [3usize, 4, 8] {
            let ctx = RunContext::new(model)
                .with_theta(0.2)
                .with_max_group(k)
                .with_adaptive_theta();
            let a = find("dpg_k").unwrap().solve(&seq, &ctx);
            let b = find("dpg_k").unwrap().solve(&seq, &ctx);
            assert!(
                a.reconciliation_gap() < 1e-9,
                "k = {k}: gap {:.3e}",
                a.reconciliation_gap()
            );
            assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "k = {k}");
            assert_eq!(
                a.ledger().to_jsonl_string(),
                b.ledger().to_jsonl_string(),
                "k = {k}"
            );
        }
    }

    /// The engine `dp_greedy` Solution must render the byte-identical
    /// ledger of the pre-engine builder chain (pairs: package schedule →
    /// serve a → serve b; then unpacked singletons) so `dpg trace solve`
    /// output is unchanged across the refactor.
    #[test]
    fn dp_greedy_ledger_matches_the_paper_trace() {
        let seq = dp_greedy::paper_example::paper_sequence();
        let sol = find("dp_greedy")
            .unwrap()
            .solve(&seq, &RunContext::paper_example());
        let ledger = sol.ledger();
        assert!((ledger.total_cost() - 14.96).abs() < 1e-9);
        let first = &ledger.events[0];
        assert_eq!(first.algo, "dp_greedy");
        assert_eq!(first.phase, "phase2.package");
    }
}

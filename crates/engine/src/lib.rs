//! # mcs-engine — the unified solver engine
//!
//! Every algorithm in the workspace — DP_Greedy and its multi-item and
//! windowed extensions, the off-line `optimal`/`optimal_fast`/`greedy`/
//! `exhaustive` substrate, the Package_Served baseline, and the on-line
//! ski-rental family — is reachable through one seam:
//!
//! * [`CachingSolver`] — the trait: `name()`, `kind()` (offline/online),
//!   and `solve(&RequestSeq, &RunContext) -> Solution`.
//! * [`RunContext`] — the shared run parameters: a [`mcs_model::CostPlane`]
//!   (homogeneous [`mcs_model::CostModel`], per-server heterogeneous, or
//!   tiered), the packing threshold `θ`, a seed, and an optional
//!   [`mcs_model::FaultPlan`] for fault-aware policies. Observability
//!   handles are the process-global `mcs-obs` registry, so solvers need
//!   no plumbing to emit spans and counters.
//! * [`Solution`] — the unified result: total cost, the `Σ|d_i|`
//!   denominator of the paper's `ave_cost` metric, and a list of
//!   [`solution::SolutionPart`]s (explicit schedules, recorded serve-arm
//!   choices, and aggregate channel costs) from which one *generic*
//!   ledger derivation ([`Solution::ledger`]) produces the decision
//!   ledger — replacing the per-algorithm builders that used to live in
//!   `dp_greedy::ledger`.
//! * [`registry`] — the static solver registry: iterate all solvers with
//!   [`registry::solvers`], look one up (aliases included) with
//!   [`registry::find`]. Adding an algorithm is one `impl CachingSolver`
//!   plus one registry entry; the CLI (`dpg algos`, `dpg run --algo`),
//!   the experiment runners, the bench harness, and the workspace-level
//!   reconciliation property test all pick it up automatically.
//!
//! The engine sits above the algorithm crates and below the consumers
//! (`sim`, `experiments`, CLI, benches): algorithm crates stay free of
//! trait plumbing and the consumers stay free of per-algorithm glue.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod registry;
pub mod solution;
pub mod solvers;

use mcs_model::defaults::{DEFAULT_SEED, DEFAULT_THETA};
use mcs_model::{CostModel, CostPlane, FaultPlan, RequestSeq};

pub use registry::{aliases, find, solvers};
pub use solution::{ServeChoice, Solution, SolutionPart};

/// Whether a solver sees the whole request sequence up front (offline)
/// or serves requests one at a time with no knowledge of the future
/// (online).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Off-line: the full trajectory is known (the paper's model).
    Offline,
    /// On-line: requests arrive one at a time.
    Online,
}

impl SolverKind {
    /// Stable lowercase label (`"offline"` / `"online"`), used by the
    /// CLI's JSON output.
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Offline => "offline",
            SolverKind::Online => "online",
        }
    }
}

/// Shared parameters of one solver run.
///
/// Observability is deliberately *not* a field: `mcs-obs` is a
/// process-global registry and solvers emit spans/counters through it
/// directly, so a `RunContext` stays cheap to clone and serializable.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// The cost plane: homogeneous (`μ`, `λ`, `α`), per-server
    /// heterogeneous, or tiered. The paper-model solvers read the
    /// homogeneous projection via [`RunContext::model`]; plane-aware
    /// solvers match on the shape directly.
    pub plane: CostPlane,
    /// Packing threshold `θ` for correlation-aware solvers.
    pub theta: f64,
    /// Seed for solvers with internal randomness or derived workloads.
    pub seed: u64,
    /// Maximum package size for package-aware solvers (`dpg_k`): `2`
    /// recovers the paper's pairwise shape, larger values allow bigger
    /// bundles. Ignored by the pair-only solvers.
    pub max_group: usize,
    /// When set, package-aware solvers derive `θ` per trace from the
    /// observed co-request density of the prescan instead of using the
    /// fixed `theta` field.
    pub adaptive: bool,
    /// Fault plan for fault-aware policies (`None` = ideal fleet; only
    /// the `resilient` solver reads it today).
    pub fault_plan: Option<FaultPlan>,
}

impl RunContext {
    /// A context with the workspace defaults for `θ` and the seed,
    /// pairwise packages (`max_group = 2`), and the fixed-θ mode.
    pub fn new(model: CostModel) -> Self {
        RunContext::from_plane(CostPlane::Homogeneous(model))
    }

    /// A context over an arbitrary [`CostPlane`] (same defaults as
    /// [`RunContext::new`]).
    pub fn from_plane(plane: CostPlane) -> Self {
        RunContext {
            plane,
            theta: DEFAULT_THETA,
            seed: DEFAULT_SEED,
            max_group: 2,
            adaptive: false,
            fault_plan: None,
        }
    }

    /// The homogeneous projection of the context's cost plane: the exact
    /// embedded model for a homogeneous (or uniformly-collapsible) plane,
    /// a deterministic mean-rate summary otherwise. The paper-model
    /// solvers price everything through this, which is why the registry
    /// byte-identity guarantee only holds on collapsible planes — their
    /// [`CachingSolver::validate`] gate enforces exactly that.
    pub fn model(&self) -> CostModel {
        self.plane.projected_homogeneous()
    }

    /// The Section V-C running-example context (`μ = λ = 1`, `α = 0.8`,
    /// `θ = 0.4`).
    pub fn paper_example() -> Self {
        RunContext::new(CostModel::paper_example()).with_theta(dp_greedy::paper_example::THETA)
    }

    /// Sets the packing threshold.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the package size for package-aware solvers (`2` = pairs).
    pub fn with_max_group(mut self, max_group: usize) -> Self {
        self.max_group = max_group;
        self
    }

    /// Switches package-aware solvers to the adaptive per-trace θ rule
    /// ([`mcs_correlation::adaptive_theta`]).
    pub fn with_adaptive_theta(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Sets the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// A derived context for re-entrant epoch-by-epoch use (the serving
    /// daemon settles each epoch through the registry): same plane, `θ`
    /// and fault plan, but a per-epoch seed mixed with SplitMix64 so
    /// epochs draw independent randomness while staying a pure function
    /// of `(base seed, epoch)` — recovery replays the exact context.
    #[must_use]
    pub fn for_epoch(&self, epoch: u64) -> Self {
        let mut derived = self.clone();
        derived.seed = mcs_model::rng::mix64(self.seed ^ epoch.rotate_left(17));
        derived
    }
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::new(mcs_model::defaults::default_model())
    }
}

/// One caching algorithm behind the engine seam.
///
/// Implementations are zero-sized registry entries; all run state lives
/// in the [`RunContext`] and the returned [`Solution`].
pub trait CachingSolver: Sync {
    /// Stable registry name (snake_case; the `--algo` spelling).
    fn name(&self) -> &'static str;

    /// Off-line or on-line.
    fn kind(&self) -> SolverKind;

    /// One-line human description for `dpg algos`.
    fn description(&self) -> &'static str;

    /// Runs the algorithm over `seq` under `ctx`.
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution;

    /// Checks that this solver can price `seq` under `ctx`'s cost plane,
    /// returning a human-readable reason when it cannot. Callers (the
    /// CLI, the experiment runners) gate on this *before* `solve`; a
    /// failed precondition inside `solve` itself is a bug.
    ///
    /// The default requires a homogeneous plane (or a uniform one that
    /// collapses to it bitwise) — the paper's cost model, which every
    /// pre-plane solver prices under. Plane-aware solvers override this
    /// with their own shape checks.
    fn validate(&self, _seq: &RequestSeq, ctx: &RunContext) -> Result<(), String> {
        if ctx.plane.collapse_homogeneous().is_some() {
            Ok(())
        } else {
            Err(format!(
                "solver '{}' prices the paper's homogeneous model; the given '{}' cost plane \
                 does not collapse to one (try hetero_greedy, hetero_exact, or tiered_waterfall)",
                self.name(),
                ctx.plane.shape()
            ))
        }
    }

    /// Upper bound on the request-sequence length this solver stays
    /// tractable at, or `None` for the polynomial solvers. The
    /// registry-wide property tests clamp their random workloads to this
    /// (the exhaustive solver is exponential — historically its
    /// cross-validation capped traces at ~10 points).
    fn request_limit(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_uses_the_workspace_defaults() {
        let ctx = RunContext::default();
        assert_eq!(ctx.theta, DEFAULT_THETA);
        assert_eq!(ctx.seed, DEFAULT_SEED);
        assert_eq!(ctx.max_group, 2);
        assert!(!ctx.adaptive);
        assert!(ctx.fault_plan.is_none());
        assert_eq!(ctx.model().mu(), mcs_model::defaults::DEFAULT_MU);
        assert_eq!(ctx.plane.shape(), "homogeneous");
    }

    #[test]
    fn paper_context_matches_the_running_example() {
        let ctx = RunContext::paper_example();
        assert_eq!(ctx.model().mu(), 1.0);
        assert_eq!(ctx.model().lambda(), 1.0);
        assert_eq!(ctx.theta, 0.4);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(SolverKind::Offline.label(), "offline");
        assert_eq!(SolverKind::Online.label(), "online");
    }

    #[test]
    fn epoch_contexts_are_deterministic_and_distinct() {
        let base = RunContext::default()
            .with_seed(42)
            .with_theta(0.7)
            .with_max_group(5)
            .with_adaptive_theta();
        // Pure function of (seed, epoch): recovery replays it exactly.
        assert_eq!(base.for_epoch(3).seed, base.for_epoch(3).seed);
        // Distinct epochs (and distinct base seeds) draw distinct seeds.
        let mut seeds: Vec<u64> = (0..50).map(|e| base.for_epoch(e).seed).collect();
        seeds.push(RunContext::default().with_seed(43).for_epoch(0).seed);
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "epoch seed collision");
        // Everything except the seed is inherited.
        let derived = base.for_epoch(9);
        assert_eq!(derived.theta, base.theta);
        assert_eq!(derived.model().mu(), base.model().mu());
        assert_eq!(derived.max_group, 5);
        assert!(derived.adaptive);
        assert!(derived.fault_plan.is_none());
    }
}

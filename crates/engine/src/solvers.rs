//! The registered [`CachingSolver`] implementations.
//!
//! Every solver is a zero-sized struct wrapping one of the workspace's
//! algorithm entry points. The interesting work is building the
//! [`SolutionPart`] list so the generic ledger derivation reconciles
//! (`Σ event.cost == total_cost`) for every solver:
//!
//! * Schedule-producing solvers (`dp_greedy`, `optimal`, `greedy`,
//!   `package_served`, `windowed`, `ski_rental`) emit their explicit
//!   schedules, priced at the rates they were computed under.
//! * Cost-only exact solvers (`optimal_fast`, `exhaustive`) prove the
//!   same optimum as `optimal`, so their parts are derived from
//!   `optimal`'s schedule — the reconciliation check then doubles as a
//!   cross-validation of the fast/exhaustive cost against the covering
//!   DP's schedule.
//! * Aggregate-only solvers (`online_dpg`, `resilient`, the partial
//!   serving of `multi`) emit channel-attributed lump costs.
//!
//! Whole-run aggregates that have no natural single subject are
//! attributed to `Subject::Item(0)` by convention.

use dp_greedy::baselines::package_served_pair;
use dp_greedy::ledger::arm_name;
use dp_greedy::multi_item::{
    dp_greedy_multi, dp_greedy_packages, MultiItemConfig, MultiItemReport,
};
use dp_greedy::singleton_greedy::SingletonGreedyOutcome;
use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig, DpGreedyReport};
use dp_greedy::windowed::slice_windows;
use mcs_correlation::{greedy_matching, JaccardMatrix, Phase1Stats};
use mcs_model::fault::FaultPlan;
use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, ItemId, RequestSeq, Schedule};
use mcs_obs::Subject;
use mcs_offline::exhaustive::exhaustive_optimal;
use mcs_offline::hetero::{hetero_exact, hetero_greedy_report, MAX_SERVERS};
use mcs_offline::{greedy::greedy, optimal, optimal_fast_cost};
use mcs_online::online_dpg::{online_dp_greedy, OnlineDpgConfig};
use mcs_online::tiered::tiered_run;
use mcs_online::{resilient_ski_rental, ski_rental};

use crate::solution::{ServeChoice, Solution, SolutionPart};
use crate::{CachingSolver, RunContext, SolverKind};

fn serve_part(item: ItemId, greedy_out: &SingletonGreedyOutcome, shift: f64) -> SolutionPart {
    SolutionPart::Serve {
        phase: "phase2.serve",
        subject: Subject::Item(item.0),
        choices: greedy_out
            .choices
            .iter()
            .map(|c| ServeChoice {
                option_chosen: arm_name(c.arm),
                option_costs: c.option_costs,
                t: c.time + shift,
                cost: c.cost,
            })
            .collect(),
    }
}

/// Shifts every time in `schedule` by `dt` (used to lift window-relative
/// schedules back to global time for the ledger).
fn shift_schedule(schedule: &Schedule, dt: f64) -> Schedule {
    if dt == 0.0 {
        return schedule.clone();
    }
    let mut out = schedule.clone();
    for iv in &mut out.intervals {
        iv.span.start += dt;
        iv.span.end += dt;
    }
    for tr in &mut out.transfers {
        tr.time += dt;
    }
    out
}

/// Emits the parts of one DP_Greedy report, in the order the original
/// `dp_greedy_ledger` builder walked it (pairs first: package schedule,
/// then the two serve streams; then unpacked singletons). `shift` lifts
/// window-relative times to global time (0 for a whole-sequence run).
fn dp_greedy_parts(
    report: &DpGreedyReport,
    model: &CostModel,
    shift: f64,
    parts: &mut Vec<SolutionPart>,
) {
    let pkg = model.scaled_for_package();
    for pair in &report.pairs {
        parts.push(SolutionPart::Schedule {
            phase: "phase2.package",
            subject: Subject::Pair(pair.a.0, pair.b.0),
            schedule: shift_schedule(&pair.package_schedule, shift),
            mu: pkg.mu(),
            lambda: pkg.lambda(),
        });
        parts.push(serve_part(pair.a, &pair.a_greedy, shift));
        parts.push(serve_part(pair.b, &pair.b_greedy, shift));
    }
    for s in &report.singletons {
        parts.push(SolutionPart::Schedule {
            phase: "phase2.unpacked",
            subject: Subject::Item(s.item.0),
            schedule: shift_schedule(&s.schedule, shift),
            mu: model.mu(),
            lambda: model.lambda(),
        });
    }
}

/// Per-item schedule parts for the non-packing baselines: runs `solve`
/// on every item trace, summing costs. Returns (parts, total).
///
/// Items are independent, so the solves fan out over worker threads
/// (`mcs_model::par::par_map`; `MCS_THREADS=1` forces serial). Order is
/// preserved and costs are summed in item order afterwards, so parts and
/// total are bit-identical to a sequential loop for any thread count.
fn per_item_parts(
    seq: &RequestSeq,
    model: &CostModel,
    phase: &'static str,
    solve: impl Fn(&SingleItemTrace, &CostModel) -> (Schedule, f64) + Sync,
) -> (Vec<SolutionPart>, f64) {
    let items: Vec<ItemId> = (0..seq.items()).map(ItemId).collect();
    let solved = mcs_model::par::par_map(&items, |&item| solve(&seq.item_trace(item), model));
    let mut parts = Vec::with_capacity(solved.len());
    let mut total = 0.0;
    for (item, (schedule, cost)) in items.into_iter().zip(solved) {
        total += cost;
        parts.push(SolutionPart::Schedule {
            phase,
            subject: Subject::Item(item.0),
            schedule,
            mu: model.mu(),
            lambda: model.lambda(),
        });
    }
    (parts, total)
}

/// The paper's two-phase DP_Greedy algorithm.
pub struct DpGreedySolver;

impl CachingSolver for DpGreedySolver {
    fn name(&self) -> &'static str {
        "dp_greedy"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "two-phase DP_Greedy: Jaccard pair packing + package DP + three-arm greedy"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = ctx.model();
        let report = dp_greedy(seq, &DpGreedyConfig::new(model).with_theta(ctx.theta));
        let mut parts = Vec::new();
        dp_greedy_parts(&report, &model, 0.0, &mut parts);
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: report.total_cost,
            total_accesses: report.total_accesses,
            parts,
        }
    }
}

/// The non-packing Optimal yardstick (per-item covering DP of \[6\]).
pub struct OptimalSolver;

impl CachingSolver for OptimalSolver {
    fn name(&self) -> &'static str {
        "optimal"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "per-item optimal off-line caching (covering DP of [6]); no packing"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let (parts, total) = per_item_parts(seq, &ctx.model(), "offline", |trace, model| {
            let out = optimal(trace, model);
            (out.schedule, out.cost)
        });
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// The O(n log n) fast variant of the optimal solver (cost only); ledger
/// parts come from the covering DP's schedule, whose cost is provably
/// equal — so reconciliation cross-validates the fast cost.
pub struct OptimalFastSolver;

impl CachingSolver for OptimalFastSolver {
    fn name(&self) -> &'static str {
        "optimal_fast"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "fast per-item optimal (cost-only); ledger derived from the covering DP"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        // The per-item closure returns (ledger schedule, fast cost): the
        // schedule comes from the covering DP, the summed total from the
        // fast recurrence — reconciliation then cross-validates them.
        let (parts, total) = per_item_parts(seq, &ctx.model(), "offline", |trace, model| {
            let fast = optimal_fast_cost(trace, model);
            let out = optimal(trace, model);
            (out.schedule, fast)
        });
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// The simple per-item greedy of Fig. 4 (the 2-approximation baseline).
pub struct GreedySolver;

impl CachingSolver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "per-item simple greedy of Fig. 4 (within 2x of optimal); no packing"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let (parts, total) = per_item_parts(seq, &ctx.model(), "offline", |trace, model| {
            let out = greedy(trace, model);
            (out.schedule, out.cost)
        });
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Exact optimum by exhaustive subset enumeration (exponential; exists to
/// cross-check the covering DP). Ledger parts come from the covering
/// DP's schedule, as for [`OptimalFastSolver`].
pub struct ExhaustiveSolver;

impl CachingSolver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "exact optimum by exhaustive enumeration (small traces only)"
    }
    fn request_limit(&self) -> Option<usize> {
        // Exponential in the cacheable-request count per item; cap the
        // whole sequence well below `exhaustive::MAX_CACHEABLE`.
        Some(18)
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let (parts, total) = per_item_parts(seq, &ctx.model(), "offline", |trace, model| {
            let exact = exhaustive_optimal(trace, model);
            let out = optimal(trace, model);
            (out.schedule, exact)
        });
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// The Package_Served extreme of Fig. 13: matched pairs are always
/// packed (optimal DP over the union trace at package rates); leftovers
/// served per-item optimally.
pub struct PackageServedSolver;

impl CachingSolver for PackageServedSolver {
    fn name(&self) -> &'static str {
        "package_served"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "always-pack extreme: matched pairs served entirely by package"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = &ctx.model();
        let matrix = JaccardMatrix::from_sequence(seq);
        let packing = greedy_matching(&matrix, ctx.theta);
        let pkg = model.scaled_for_package();

        let mut parts = Vec::new();
        let mut total = 0.0;
        for &(a, b) in &packing.pairs {
            let union = seq.union_trace(a, b);
            let out = optimal(&union, &pkg);
            debug_assert!((out.cost - package_served_pair(seq, a, b, model)).abs() < 1e-9);
            total += out.cost;
            parts.push(SolutionPart::Schedule {
                phase: "phase2.package",
                subject: Subject::Pair(a.0, b.0),
                schedule: out.schedule,
                mu: pkg.mu(),
                lambda: pkg.lambda(),
            });
        }
        for &item in &packing.singletons {
            let out = optimal(&seq.item_trace(item), model);
            total += out.cost;
            parts.push(SolutionPart::Schedule {
                phase: "offline",
                subject: Subject::Item(item.0),
                schedule: out.schedule,
                mu: model.mu(),
                lambda: model.lambda(),
            });
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Emits the parts of one [`MultiItemReport`]: per package, an explicit
/// schedule at group rates plus aggregate package/transfer channels for
/// the partial-subset serving; per singleton, the re-derived per-item
/// optimal schedule. Shared by [`MultiSolver`] and [`KPackSolver`].
fn multi_report_parts(
    seq: &RequestSeq,
    report: &MultiItemReport,
    model: &CostModel,
) -> Vec<SolutionPart> {
    let horizon = seq.horizon();
    let mut parts = Vec::new();
    for g in &report.groups {
        let k = g.items.len() as u32;
        let subject = Subject::Pair(g.items[0].0, g.items[1].0);
        parts.push(SolutionPart::Schedule {
            phase: "phase2.package",
            subject,
            schedule: g.package_schedule.clone(),
            mu: model.cache_rate_package(k),
            lambda: model.transfer_cost_package(k),
        });
        // Partial-subset serving: `group_deliveries` shipments at the
        // group transfer cost went over the package channel; the rest
        // of the partial cost is individual serving.
        let delivered = g.group_deliveries as f64 * model.transfer_cost_package(k);
        if delivered > 0.0 {
            parts.push(SolutionPart::Aggregate {
                phase: "phase2.partial",
                subject,
                channel: "package",
                t: horizon,
                cost: delivered,
            });
        }
        let individual = g.partial_cost - delivered;
        if individual != 0.0 {
            parts.push(SolutionPart::Aggregate {
                phase: "phase2.partial",
                subject,
                channel: "transfer",
                t: horizon,
                cost: individual,
            });
        }
    }
    for &(item, _) in &report.singletons {
        // Singleton cost is the per-item optimum; re-derive the
        // schedule (deterministic) for exact events.
        let out = optimal(&seq.item_trace(item), model);
        parts.push(SolutionPart::Schedule {
            phase: "offline",
            subject: Subject::Item(item.0),
            schedule: out.schedule,
            mu: model.mu(),
            lambda: model.lambda(),
        });
    }
    parts
}

/// Multi-item DP_Greedy (groups beyond pairs). Full-group co-requests
/// get an explicit package schedule at group rates; partial-subset
/// serving is aggregate-only, split into its package-delivery portion
/// and the individually-served remainder.
pub struct MultiSolver;

impl CachingSolver for MultiSolver {
    fn name(&self) -> &'static str {
        "multi"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "multi-item DP_Greedy: agglomerative grouping beyond pairs"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = &ctx.model();
        let report = dp_greedy_multi(seq, &MultiItemConfig::new(*model).with_theta(ctx.theta));
        let parts = multi_report_parts(seq, &report, model);
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: report.total_cost,
            total_accesses: report.total_accesses,
            parts,
        }
    }
}

/// Adaptive K-package DP_Greedy — ROADMAP item 2 behind the registry
/// seam. Phase 1 runs over [`Phase1Stats`] — the hash-based
/// `SparseCoOccurrence` or the bitset popcount kernel, selected by the
/// `MCS_PHASE1` knob and bit-identical either way (memory independent of
/// `k²` on the hash path): the greedy pair matcher at `max_group = 2`,
/// the agglomerative K-matcher above it; `--adaptive` derives `θ` per
/// trace from the prescan's co-request density. At `max_group = 2` with
/// a fixed `θ` the solver delegates to the exact `dp_greedy` pipeline,
/// so cost bits and ledger parts are identical to [`DpGreedySolver`]
/// (modulo the `algo` label) — the K = 2 reduction the workspace tests
/// pin.
pub struct KPackSolver;

impl CachingSolver for KPackSolver {
    fn name(&self) -> &'static str {
        "dpg_k"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "K-package DP_Greedy: sparse agglomerative matching up to max_group, adaptive theta"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = &ctx.model();
        if ctx.max_group <= 2 {
            // Pairwise shape: the exact two-phase pipeline (Algorithm 1),
            // with θ optionally re-derived from the prescan.
            let theta = if ctx.adaptive {
                Phase1Stats::from_sequence(seq).adaptive_theta(model.alpha())
            } else {
                ctx.theta
            };
            let report = dp_greedy(seq, &DpGreedyConfig::new(*model).with_theta(theta));
            let mut parts = Vec::new();
            dp_greedy_parts(&report, model, 0.0, &mut parts);
            return Solution {
                algo: self.name(),
                kind: self.kind(),
                total_cost: report.total_cost,
                total_accesses: report.total_accesses,
                parts,
            };
        }
        let stats = Phase1Stats::from_sequence(seq);
        let theta = if ctx.adaptive {
            stats.adaptive_theta(model.alpha())
        } else {
            ctx.theta
        };
        let packages = stats.k_packages(theta, ctx.max_group);
        let report = dp_greedy_packages(seq, &packages, model);
        let parts = multi_report_parts(seq, &report, model);
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: report.total_cost,
            total_accesses: report.total_accesses,
            parts,
        }
    }
}

/// Windowed DP_Greedy: both phases re-run per time window (quarter of
/// the horizon) so the packing adapts to correlation drift.
pub struct WindowedSolver;

impl WindowedSolver {
    /// Window length for a given sequence: a quarter of the horizon, so
    /// the packing gets four chances to adapt.
    pub fn window_for(seq: &RequestSeq) -> f64 {
        (seq.horizon() / 4.0).max(f64::MIN_POSITIVE)
    }
}

impl CachingSolver for WindowedSolver {
    fn name(&self) -> &'static str {
        "windowed"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "windowed DP_Greedy: re-packs per quarter-horizon window (drift-adaptive)"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let mut parts = Vec::new();
        let mut total = 0.0;
        if !seq.is_empty() {
            let model = ctx.model();
            let window = WindowedSolver::window_for(seq);
            let inner = DpGreedyConfig::new(model).with_theta(ctx.theta);
            for (start, _, slice) in slice_windows(seq, window) {
                let report = dp_greedy(&slice, &inner);
                total += report.total_cost;
                dp_greedy_parts(&report, &model, start, &mut parts);
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Per-item on-line ski-rental (rent-or-buy with a moving backbone).
pub struct SkiRentalSolver;

impl CachingSolver for SkiRentalSolver {
    fn name(&self) -> &'static str {
        "ski_rental"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Online
    }
    fn description(&self) -> &'static str {
        "per-item on-line ski-rental (rent-or-buy; 3-competitive family)"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let (parts, total) = per_item_parts(seq, &ctx.model(), "online", |trace, model| {
            let out = ski_rental(trace, model);
            (out.schedule, out.cost)
        });
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Per-item exact offline caching under a heterogeneous cost plane
/// (per-server `μ_s`, per-link `λ_st`). The DP state space is the server
/// power set, so the solver is gated to [`MAX_SERVERS`] servers and a
/// short request budget; its `validate` turns both gates into typed
/// usage errors instead of panics.
///
/// The heterogeneous DP proves a cost but no explicit schedule, so each
/// item contributes one aggregate event on the `cache` channel (the
/// dominant residence term); the total is folded in ledger-event order,
/// making the reconciliation gap exactly zero.
pub struct HeteroExactSolver;

impl CachingSolver for HeteroExactSolver {
    fn name(&self) -> &'static str {
        "hetero_exact"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "per-item exact offline caching under per-server mu and per-link lambda (<=16 servers)"
    }
    fn request_limit(&self) -> Option<usize> {
        // The subset DP is exponential in the fleet size; keep the
        // registry property tests and the paper example in range while
        // excusing this solver from the large perf workloads.
        Some(32)
    }
    fn validate(&self, seq: &RequestSeq, ctx: &RunContext) -> Result<(), String> {
        if seq.servers() > MAX_SERVERS {
            return Err(format!(
                "hetero_exact handles at most {MAX_SERVERS} servers but the trace has {}",
                seq.servers()
            ));
        }
        ctx.plane
            .hetero_view(seq.servers())
            .map(|_| ())
            .map_err(|e| format!("hetero_exact: {e}"))
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = ctx
            .plane
            .hetero_view(seq.servers())
            .expect("validated: plane has a heterogeneous view");
        let horizon = seq.horizon();
        let items: Vec<ItemId> = (0..seq.items()).map(ItemId).collect();
        let costs = mcs_model::par::par_map(&items, |&item| {
            hetero_exact(&seq.item_trace(item), &model).expect("validated: model sized for trace")
        });
        let mut parts = Vec::new();
        let mut total = 0.0;
        for (item, cost) in items.into_iter().zip(costs) {
            total += cost;
            if cost != 0.0 {
                parts.push(SolutionPart::Aggregate {
                    phase: "offline",
                    subject: Subject::Item(item.0),
                    channel: "cache",
                    t: horizon,
                    cost,
                });
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Per-item greedy serving under a heterogeneous cost plane: at each
/// request, bridge the cache from the previous holder or re-transfer
/// over the cheapest link, whichever is cheaper (ties cache). Polynomial
/// — the fleet-size companion to [`HeteroExactSolver`]'s yardstick.
///
/// Each item emits its `cache`/`transfer` channel split from
/// [`hetero_greedy_report`]; the total is folded in ledger-event order
/// so the reconciliation gap is exactly zero.
pub struct HeteroGreedySolver;

impl CachingSolver for HeteroGreedySolver {
    fn name(&self) -> &'static str {
        "hetero_greedy"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Offline
    }
    fn description(&self) -> &'static str {
        "per-item greedy serving under per-server mu and per-link lambda (any fleet size)"
    }
    fn validate(&self, seq: &RequestSeq, ctx: &RunContext) -> Result<(), String> {
        ctx.plane
            .hetero_view(seq.servers())
            .map(|_| ())
            .map_err(|e| format!("hetero_greedy: {e}"))
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = ctx
            .plane
            .hetero_view(seq.servers())
            .expect("validated: plane has a heterogeneous view");
        let horizon = seq.horizon();
        let items: Vec<ItemId> = (0..seq.items()).map(ItemId).collect();
        let reports = mcs_model::par::par_map(&items, |&item| {
            hetero_greedy_report(&seq.item_trace(item), &model)
                .expect("validated: model sized for trace")
        });
        let mut parts = Vec::new();
        let mut total = 0.0;
        for (item, report) in items.into_iter().zip(reports) {
            for (channel, cost) in [
                ("cache", report.cache_cost),
                ("transfer", report.transfer_cost),
            ] {
                if cost != 0.0 {
                    total += cost;
                    parts.push(SolutionPart::Aggregate {
                        phase: "offline",
                        subject: Subject::Item(item.0),
                        channel,
                        t: horizon,
                        cost,
                    });
                }
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// On-line tiered waterfall caching ([`mcs_online::tiered`]): per-server
/// L1→…→Lk storage ladders with promotion on hit, LRU demotion cascades
/// under capacity pressure, and peer-vs-origin fetch on miss.
///
/// The run reports a whole-fleet outcome, emitted as two aggregate
/// events — residence on `cache`, fetches plus tier moves on `transfer`
/// — whose association order matches [`mcs_online::tiered::TieredOutcome`],
/// so the reconciliation gap is exactly zero.
pub struct TieredWaterfallSolver;

impl CachingSolver for TieredWaterfallSolver {
    fn name(&self) -> &'static str {
        "tiered_waterfall"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Online
    }
    fn description(&self) -> &'static str {
        "on-line tiered waterfall: per-server storage ladders, promotion/demotion, peer fetch"
    }
    fn validate(&self, seq: &RequestSeq, ctx: &RunContext) -> Result<(), String> {
        ctx.plane
            .tiered_view(seq.servers())
            .map(|_| ())
            .map_err(|e| format!("tiered_waterfall: {e}"))
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = ctx
            .plane
            .tiered_view(seq.servers())
            .expect("validated: plane has a tiered view");
        let out = tiered_run(seq, &model).expect("validated: model sized for trace");
        let horizon = seq.horizon();
        let mut parts = Vec::new();
        for (channel, cost) in [
            ("cache", out.cache_cost),
            ("transfer", out.transfer_cost + out.move_cost),
        ] {
            if cost != 0.0 {
                parts.push(SolutionPart::Aggregate {
                    phase: "online",
                    subject: Subject::Item(0),
                    channel,
                    t: horizon,
                    cost,
                });
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: out.cost,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// On-line DP_Greedy: incremental Jaccard tracking + package-aware
/// ski-rental serving. Aggregate-only (the policy reports counters, not
/// schedules); the cache channel is the residual after transfers.
pub struct OnlineDpgSolver;

impl CachingSolver for OnlineDpgSolver {
    fn name(&self) -> &'static str {
        "online_dpg"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Online
    }
    fn description(&self) -> &'static str {
        "on-line DP_Greedy: streaming Jaccard packing + package-aware ski-rental"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = ctx.model();
        let mut config = OnlineDpgConfig::new(model);
        config.theta = ctx.theta;
        let out = online_dp_greedy(seq, &config);
        let horizon = seq.horizon();
        let transfer = out.transfers as f64 * model.lambda();
        let package = out.package_transfers as f64 * model.package_delivery_cost();
        let cache = out.cost - transfer - package;
        let mut parts = Vec::new();
        for (channel, cost) in [
            ("cache", cache),
            ("transfer", transfer),
            ("package", package),
        ] {
            if cost != 0.0 {
                parts.push(SolutionPart::Aggregate {
                    phase: "online",
                    subject: Subject::Item(0),
                    channel,
                    t: horizon,
                    cost,
                });
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: out.cost,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

/// Crash-aware ski-rental run under the context's fault plan (ideal
/// fleet when none is set). Aggregate-only per item: `λ`·attempts on the
/// transfer channel, the rent residual on the cache channel.
pub struct ResilientSolver;

impl CachingSolver for ResilientSolver {
    fn name(&self) -> &'static str {
        "resilient"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Online
    }
    fn description(&self) -> &'static str {
        "crash-aware ski-rental under the context's FaultPlan (re-plans on loss)"
    }
    fn solve(&self, seq: &RequestSeq, ctx: &RunContext) -> Solution {
        let model = &ctx.model();
        let none = FaultPlan::none();
        let plan = ctx.fault_plan.as_ref().unwrap_or(&none);
        let mut parts = Vec::new();
        let mut total = 0.0;
        for i in 0..seq.items() {
            let item = ItemId(i);
            let trace = seq.item_trace(item);
            if trace.is_empty() {
                continue;
            }
            let horizon = trace.points.last().map_or(0.0, |p| p.time);
            let out = resilient_ski_rental(&trace, model, plan);
            total += out.cost;
            let transfer = out.attempts as f64 * model.lambda();
            let cache = out.cost - transfer;
            for (channel, cost) in [("cache", cache), ("transfer", transfer)] {
                if cost != 0.0 {
                    parts.push(SolutionPart::Aggregate {
                        phase: "online",
                        subject: Subject::Item(item.0),
                        channel,
                        t: horizon,
                        cost,
                    });
                }
            }
        }
        Solution {
            algo: self.name(),
            kind: self.kind(),
            total_cost: total,
            total_accesses: seq.total_item_accesses(),
            parts,
        }
    }
}

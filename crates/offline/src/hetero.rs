//! Heterogeneous-cost single-item caching — the general problem the paper
//! cites as (believed) NP-complete.
//!
//! With per-server rates `μ_s` and per-link costs `λ_{st}` the covering
//! reduction of [`crate::optimal::optimal`] no longer applies (bridging location
//! matters and transfer sources are no longer interchangeable), so we
//! provide:
//!
//! * [`hetero_exact`] — exact state-space DP over
//!   `(request, copy mask)`, the direct generalisation of
//!   [`crate::statespace`]: exponential in `m`, ground truth for small
//!   instances;
//! * [`hetero_greedy`] — the Fig.-4 greedy generalised: each request takes
//!   the cheaper of a local cache from `r_{p(i)}`
//!   (`μ_{s_i}·(t_i − t_{p(i)})`) or a bridge-and-transfer from `r_{i−1}`
//!   (`μ_{s_{i−1}}·(t_i − t_{i−1}) + λ_{s_{i−1}, s_i}`) — polynomial, no
//!   guarantee (the point of Theorem 1 is that such guarantees exist only
//!   in the homogeneous case);
//! * consistency tests showing both collapse to their homogeneous
//!   counterparts under [`HeteroCostModel::uniform`].

use mcs_model::request::{Predecessor, SingleItemTrace};
use mcs_model::{HeteroCostModel, ModelError, ServerId};

/// Maximum server count for the exact solver.
pub const MAX_SERVERS: u32 = 16;

/// Checks that `model` prices exactly the fleet `trace` runs on.
fn check_servers(trace: &SingleItemTrace, model: &HeteroCostModel) -> Result<(), ModelError> {
    if model.servers() != trace.servers {
        return Err(ModelError::ServerCountMismatch {
            model: model.servers(),
            trace: trace.servers,
        });
    }
    Ok(())
}

/// Exact optimal heterogeneous cost by layered state-space DP.
///
/// # Errors
///
/// [`ModelError::TooManyServers`] when the trace exceeds [`MAX_SERVERS`]
/// (the DP is exponential in `m`), [`ModelError::ServerCountMismatch`]
/// when the model disagrees with the trace on `m` — typed so the CLI can
/// report a usage error instead of aborting.
pub fn hetero_exact(trace: &SingleItemTrace, model: &HeteroCostModel) -> Result<f64, ModelError> {
    let m = trace.servers;
    if m > MAX_SERVERS {
        return Err(ModelError::TooManyServers {
            servers: m,
            max: MAX_SERVERS,
        });
    }
    check_servers(trace, model)?;
    if trace.is_empty() {
        return Ok(0.0);
    }
    let full = 1usize << m;

    // Pre-compute per-mask holding rates Σ_{s∈mask} μ_s.
    let mut mask_rate = vec![0.0f64; full];
    for mask in 1..full {
        let low = mask.trailing_zeros();
        mask_rate[mask] = mask_rate[mask & (mask - 1)] + model.mu(ServerId(low));
    }
    // Cheapest transfer into `to` from any server of `mask`.
    let cheapest_into = |mask: usize, to: ServerId| -> f64 {
        let mut best = f64::INFINITY;
        let mut rem = mask;
        while rem != 0 {
            let s = rem.trailing_zeros();
            rem &= rem - 1;
            best = best.min(model.lambda(ServerId(s), to));
        }
        best
    };

    // Minimum cost to attach every server of `add` to the copy set `base`
    // by a sequence of transfers (new copies may relay): Prim-style
    // repeated cheapest edge, which is optimal since each attached server
    // pays exactly one incoming transfer.
    let prim_attach = |base: usize, add: usize| -> f64 {
        let mut connected = base;
        let mut remaining = add;
        let mut total = 0.0;
        while remaining != 0 {
            let mut best = f64::INFINITY;
            let mut best_bit = 0usize;
            let mut rem = remaining;
            while rem != 0 {
                let t = rem.trailing_zeros();
                rem &= rem - 1;
                let c = cheapest_into(connected, ServerId(t));
                if c < best {
                    best = c;
                    best_bit = 1usize << t;
                }
            }
            total += best;
            connected |= best_bit;
            remaining &= !best_bit;
        }
        total
    };

    let mut dp = vec![f64::INFINITY; full];
    dp[1 << ServerId::ORIGIN.index()] = 0.0;
    let mut prev_time = 0.0_f64;

    for p in &trace.points {
        let dt = p.time - prev_time;
        prev_time = p.time;
        let s_bit = 1usize << p.server.index();

        let mut next = vec![f64::INFINITY; full];
        for (mask, &cost) in dp.iter().enumerate() {
            if !cost.is_finite() {
                continue;
            }
            let mut keep = mask;
            loop {
                if keep != 0 {
                    let hold = cost + mask_rate[keep] * dt;
                    let (new_mask, served) = if keep & s_bit != 0 {
                        (keep, hold)
                    } else {
                        (keep | s_bit, hold + cheapest_into(keep, p.server))
                    };
                    // Unlike the homogeneous case, PRE-POSITIONING can pay
                    // off (parking the copy at a cheap-μ server), so allow
                    // any additional replication at this instant.
                    let absent = (full - 1) & !new_mask;
                    let mut extra = 0usize;
                    loop {
                        let final_mask = new_mask | extra;
                        let c = served + prim_attach(new_mask, extra);
                        if c < next[final_mask] {
                            next[final_mask] = c;
                        }
                        if extra == absent {
                            break;
                        }
                        // Next subset of `absent` in increasing order.
                        extra = extra.wrapping_sub(absent) & absent;
                    }
                }
                if keep == 0 {
                    break;
                }
                keep = (keep - 1) & mask;
            }
        }
        dp = next;
    }
    Ok(dp.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Cost split of one [`hetero_greedy_report`] run, for ledger
/// attribution: `cost` is the legacy per-request `min(arm)` sum, while
/// `cache_cost`/`transfer_cost` re-bucket the same arms by channel —
/// the caching portion of a chosen transfer arm (`μ_prev·Δt` bridging)
/// lands in `cache_cost` and only the link hop `λ` in `transfer_cost`.
/// The channel sums can differ from `cost` by float associativity only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroGreedyReport {
    /// Total cost, accumulated per request exactly as [`hetero_greedy`].
    pub cost: f64,
    /// Caching residence cost (both arms' `μ·Δt` portions).
    pub cache_cost: f64,
    /// Cross-server transfer cost (the `λ` hops of the transfer arms).
    pub transfer_cost: f64,
}

/// The heterogeneous simple greedy (Fig. 4 generalised).
///
/// # Errors
///
/// [`ModelError::ServerCountMismatch`] when the model disagrees with the
/// trace on `m`.
pub fn hetero_greedy(trace: &SingleItemTrace, model: &HeteroCostModel) -> Result<f64, ModelError> {
    hetero_greedy_report(trace, model).map(|r| r.cost)
}

/// [`hetero_greedy`] with the per-channel cost split (see
/// [`HeteroGreedyReport`]).
///
/// # Errors
///
/// [`ModelError::ServerCountMismatch`] when the model disagrees with the
/// trace on `m`.
pub fn hetero_greedy_report(
    trace: &SingleItemTrace,
    model: &HeteroCostModel,
) -> Result<HeteroGreedyReport, ModelError> {
    check_servers(trace, model)?;
    let preds = trace.predecessors();
    let mut cost = 0.0;
    let mut cache_cost = 0.0;
    let mut transfer_cost = 0.0;
    for (i, p) in trace.points.iter().enumerate() {
        let cache_arm = match preds[i] {
            Predecessor::Request(j) => model.mu(p.server) * (p.time - trace.points[j].time),
            Predecessor::Origin => model.mu(p.server) * p.time,
            Predecessor::None => f64::INFINITY,
        };
        let (prev_time, prev_server) = if i == 0 {
            (0.0, ServerId::ORIGIN)
        } else {
            (trace.points[i - 1].time, trace.points[i - 1].server)
        };
        let bridge = model.mu(prev_server) * (p.time - prev_time);
        let hop = model.lambda(prev_server, p.server);
        let transfer_arm = bridge + hop;
        // Ties go to the cache arm, matching `a.min(b)`'s left bias in
        // the pre-split accumulation.
        if cache_arm <= transfer_arm {
            cost += cache_arm;
            cache_cost += cache_arm;
        } else {
            cost += transfer_arm;
            cache_cost += bridge;
            transfer_cost += hop;
        }
    }
    Ok(HeteroGreedyReport {
        cost,
        cache_cost,
        transfer_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy::greedy, statespace::statespace_optimal};
    use mcs_model::{approx_eq, CostModel};

    fn uniform(m: u32, mu: f64, la: f64) -> HeteroCostModel {
        HeteroCostModel::uniform(m, mu, la, 0.8).unwrap()
    }

    #[test]
    fn uniform_exact_matches_homogeneous_statespace() {
        let trace = SingleItemTrace::from_pairs(3, &[(0.5, 1), (0.9, 2), (1.3, 0), (2.0, 1)]);
        let homo = CostModel::new(1.2, 2.3, 0.8).unwrap();
        let het = uniform(3, 1.2, 2.3);
        assert!(approx_eq(
            hetero_exact(&trace, &het).unwrap(),
            statespace_optimal(&trace, &homo)
        ));
    }

    #[test]
    fn uniform_greedy_matches_homogeneous_greedy() {
        let trace = SingleItemTrace::from_pairs(3, &[(0.5, 1), (0.9, 2), (1.3, 0), (2.0, 1)]);
        let homo = CostModel::new(1.2, 2.3, 0.8).unwrap();
        let het = uniform(3, 1.2, 2.3);
        assert!(approx_eq(
            hetero_greedy(&trace, &het).unwrap(),
            greedy(&trace, &homo).cost
        ));
    }

    #[test]
    fn cheap_server_attracts_the_backbone() {
        // Server s3 caches for nearly nothing; the exact solver should
        // park a copy there as backbone rather than pay s1's high rate.
        let model = HeteroCostModel::new(
            vec![10.0, 10.0, 0.01],
            vec![
                0.0, 1.0, 1.0, //
                1.0, 0.0, 1.0, //
                1.0, 1.0, 0.0,
            ],
            0.8,
        )
        .unwrap();
        // Requests far apart, alternating s1/s2.
        let trace = SingleItemTrace::from_pairs(3, &[(5.0, 0), (10.0, 1), (15.0, 0)]);
        let exact = hetero_exact(&trace, &model).unwrap();
        // Backbone at s3 after an initial transfer: hold 15·0.01 = 0.15,
        // initial λ=1 at... the copy starts at s1 (expensive): transfer to
        // s3 at t=5 when serving r1 (s1 holds [0,5] at 10/unit — ouch;
        // cheaper: move to s3 immediately? transfers happen at request
        // times only, so s1 pays [0,5]·10 = 50 regardless); then 3 service
        // transfers ≈ 3, s3 holds [5,15]·0.01.
        // Upper bound on the smart plan:
        let smart = 50.0 + 1.0 + 0.1 + 1.0 + 1.0 + 1.0;
        assert!(exact <= smart + 1e-9, "exact {exact} vs smart {smart}");
        // And the greedy (which never parks at s3) pays strictly more.
        let g = hetero_greedy(&trace, &model).unwrap();
        assert!(
            g > exact + 1.0,
            "greedy {g} should be clearly worse than exact {exact}"
        );
    }

    #[test]
    fn empty_trace_is_free() {
        let trace = SingleItemTrace::from_pairs(2, &[]);
        assert_eq!(hetero_exact(&trace, &uniform(2, 1.0, 1.0)).unwrap(), 0.0);
        assert_eq!(hetero_greedy(&trace, &uniform(2, 1.0, 1.0)).unwrap(), 0.0);
    }

    #[test]
    fn oversized_and_mismatched_instances_are_typed_errors() {
        use mcs_model::ModelError;
        // m > MAX_SERVERS: typed, not a panic (CLI exit-code-2 path).
        let wide = SingleItemTrace::from_pairs(MAX_SERVERS + 1, &[(1.0, 0)]);
        let model = uniform(MAX_SERVERS + 1, 1.0, 1.0);
        assert!(matches!(
            hetero_exact(&wide, &model),
            Err(ModelError::TooManyServers { servers, max })
                if servers == MAX_SERVERS + 1 && max == MAX_SERVERS
        ));
        // Model/trace disagreement, both solvers.
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 0)]);
        let small = uniform(2, 1.0, 1.0);
        assert!(matches!(
            hetero_exact(&trace, &small),
            Err(ModelError::ServerCountMismatch { model: 2, trace: 3 })
        ));
        assert!(matches!(
            hetero_greedy(&trace, &small),
            Err(ModelError::ServerCountMismatch { model: 2, trace: 3 })
        ));
    }

    #[test]
    fn greedy_report_channels_recompose_the_total() {
        let model = HeteroCostModel::new(
            vec![2.0, 0.5, 4.0],
            vec![
                0.0, 1.0, 2.0, //
                1.0, 0.0, 3.0, //
                2.0, 3.0, 0.0,
            ],
            0.8,
        )
        .unwrap();
        let trace =
            SingleItemTrace::from_pairs(3, &[(0.5, 1), (0.9, 2), (1.3, 0), (2.0, 1), (2.2, 2)]);
        let r = hetero_greedy_report(&trace, &model).unwrap();
        assert!((r.cache_cost + r.transfer_cost - r.cost).abs() < 1e-12);
        assert_eq!(r.cost, hetero_greedy(&trace, &model).unwrap());
        // This workload forces at least one transfer arm.
        assert!(r.transfer_cost > 0.0);
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;
        use proptest::strategy::ValueTree;

        fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
            (1u32..=3, 0usize..=8).prop_flat_map(|(m, n)| {
                (
                    Just(m),
                    proptest::collection::vec(1u32..=60, n),
                    proptest::collection::vec(0u32..m, n),
                )
                    .prop_map(|(m, mut ticks, servers)| {
                        ticks.sort_unstable();
                        ticks.dedup();
                        let pairs: Vec<(f64, u32)> = ticks
                            .iter()
                            .zip(servers.iter())
                            .map(|(&t, &s)| (t as f64 / 10.0, s))
                            .collect();
                        SingleItemTrace::from_pairs(m, &pairs)
                    })
            })
        }

        fn hetero_strategy(m: u32) -> impl Strategy<Value = HeteroCostModel> {
            let msize = m as usize;
            (
                proptest::collection::vec(1u32..=40, msize),
                proptest::collection::vec(1u32..=40, msize * msize),
            )
                .prop_map(move |(mu, lam)| {
                    let mu: Vec<f64> = mu.iter().map(|&x| x as f64 / 10.0).collect();
                    let mut l = vec![0.0; msize * msize];
                    for i in 0..msize {
                        for j in (i + 1)..msize {
                            let v = lam[i * msize + j] as f64 / 10.0;
                            l[i * msize + j] = v;
                            l[j * msize + i] = v;
                        }
                    }
                    HeteroCostModel::new(mu, l, 0.8).unwrap()
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            #[test]
            fn greedy_never_beats_exact(trace in trace_strategy()) {
                let m = trace.servers;
                // Pair the trace with a random model of matching size by
                // deriving it from the trace length (deterministic enough).
                let model_strategy = hetero_strategy(m);
                let mut runner = proptest::test_runner::TestRunner::deterministic();
                let model = model_strategy.new_tree(&mut runner).unwrap().current();
                let e = hetero_exact(&trace, &model).unwrap();
                let g = hetero_greedy(&trace, &model).unwrap();
                prop_assert!(e <= g + 1e-9, "exact {e} > greedy {g}");
            }

            #[test]
            fn uniform_models_agree_with_homogeneous_optimal(trace in trace_strategy(), mu in 1u32..=30, la in 1u32..=30) {
                let homo = CostModel::new(mu as f64 / 10.0, la as f64 / 10.0, 0.8).unwrap();
                let het = HeteroCostModel::uniform(trace.servers, homo.mu(), homo.lambda(), 0.8).unwrap();
                let a = hetero_exact(&trace, &het).unwrap();
                let b = crate::optimal(&trace, &homo).cost;
                prop_assert!(approx_eq(a, b), "hetero {a} vs homo {b}");
            }
        }
    }
}

//! # mcs-offline — off-line single-commodity caching algorithms
//!
//! The DP_Greedy paper builds on the optimal off-line algorithm for caching
//! a *single* shared data item across `m` fully-connected homogeneous cache
//! servers (Wang et al., ICPP 2017 — reference \[6\] of the paper). This crate
//! re-derives and implements that substrate from first principles, plus the
//! baselines and exact solvers the reproduction needs:
//!
//! * [`mod@optimal`] — the production solver: a minimum-cost line-covering
//!   dynamic program over the request time line, `O(n²)` worst case, which
//!   computes the optimal off-line cost *and* an explicit, validated
//!   [`mcs_model::Schedule`]. Under package rates (`2αμ`, `2αλ`) it is
//!   exactly the "alg. in \[6\]" invoked by Algorithm 1 of the paper.
//! * [`mod@greedy`] — the simple greedy baseline of Section IV-B (Fig. 4): each
//!   request is served by the cheaper of a local cache from `r_{p(i)}` or a
//!   transfer from `r_{i−1}`; provably within `2×` of optimal after the
//!   paper's cut argument.
//! * [`exhaustive`] — exact solver by exhaustive enumeration of
//!   cache/transfer decisions (exponential; small `n` only).
//! * [`statespace`] — exact solver by layered DP over
//!   `(request, set-of-servers-holding-copies)` states, which embodies *no*
//!   structural insight at all and is therefore the independent ground
//!   truth (exponential in `m`; small instances only).
//!
//! ## How the optimal algorithm is derived
//!
//! Under the homogeneous model an optimal schedule can be normalised so
//! that every request `r_i` is served either by a **local cache interval**
//! `[t_{p(i)}, t_i]` at its own server (cost `μ·(t_i − t_{p(i)})`) or by a
//! **transfer** (cost `λ`) from any copy alive at `t_i`, and so that at
//! every instant of `[0, t_n]` at least one copy is alive (any serving
//! lineage traces continuously back to the origin placement). Fixing the
//! set `X` of cache-served requests therefore fixes the total cost:
//!
//! ```text
//! cost(X) = Σ_{i∈X} μ·(t_i − t_{p(i)})   +   λ·|X̄|   +   μ·|holes(X)|
//! ```
//!
//! where `holes(X)` is the part of `[0, t_n]` covered by no chosen
//! interval and must be *bridged* by keeping the most recent copy alive.
//! Requests with `μ·(t_i − t_{p(i)}) ≤ λ` are always cache-served
//! (dominance); the residual choice over "long" intervals is a shortest
//! path over gap boundaries with interval edges (`μ·len − λ`) and bridge
//! edges (`μ·gap`, free where a short interval already covers). See
//! `DESIGN.md` §2 for the full argument and the validation matrix.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exhaustive;
pub mod greedy;
pub mod hetero;
pub mod ledger;
pub mod optimal;
pub mod optimal_fast;
pub mod single_copy;
pub mod statespace;

pub use greedy::{greedy, GreedyOutcome};
pub use optimal::{optimal, OptimalOutcome, ServeDecision};
pub use optimal_fast::optimal_fast_cost;
pub use single_copy::{single_copy_optimal, SingleCopyOutcome};

#[cfg(all(test, feature = "proptest"))]
mod cross_validation;

#[cfg(test)]
mod cross_validation_det;

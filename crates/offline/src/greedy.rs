//! The simple greedy baseline of Section IV-B (Fig. 4).
//!
//! Each request `r_i` is served, in time order, by the cheaper of:
//!
//! * a **local cache** from the same-server predecessor `r_{p(i)}`
//!   (Definition 1): `μ·(t_i − t_{p(i)})`, or
//! * a **transfer** from the immediately preceding request `r_{i−1}`:
//!   `λ + μ·(t_i − t_{i−1})` — the copy at `r_{i−1}`'s server is kept
//!   alive across the gap and then shipped.
//!
//! The paper's cut argument (Figs. 5/6, Eq. 7–8) shows this greedy is at
//! most `2×` the optimal off-line cost; the bound is exercised by property
//! tests in this crate.

use mcs_model::request::{Predecessor, SingleItemTrace};
use mcs_model::{CostModel, Schedule, ServerId};

/// How the greedy served one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GreedyChoice {
    /// Local cache from `r_{p(i)}`; payload is the paid cost.
    Cache(f64),
    /// Transfer from `r_{i−1}` with bridging; payload is the paid cost.
    Transfer(f64),
}

impl GreedyChoice {
    /// The cost paid for this request.
    pub fn cost(&self) -> f64 {
        match *self {
            GreedyChoice::Cache(c) | GreedyChoice::Transfer(c) => c,
        }
    }
}

/// Result of the simple greedy baseline.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Total cost.
    pub cost: f64,
    /// Per-request choices, aligned with the trace points.
    pub choices: Vec<GreedyChoice>,
    /// Explicit schedule realising exactly `cost`.
    pub schedule: Schedule,
}

/// Runs the simple greedy of Fig. 4 on a single-commodity trace.
pub fn greedy(trace: &SingleItemTrace, model: &CostModel) -> GreedyOutcome {
    let _span = mcs_obs::span("offline.greedy");
    let mu = model.mu();
    let lambda = model.lambda();
    let preds = trace.predecessors();

    let mut cost = 0.0;
    let mut choices = Vec::with_capacity(trace.len());
    let mut schedule = Schedule::new();

    for (i, p) in trace.points.iter().enumerate() {
        // Cache arm: from the same-server predecessor, if any copy was ever
        // there (Definition 1; the origin placement counts for s1).
        let (cache_cost, cache_start) = match preds[i] {
            Predecessor::Request(j) => (mu * (p.time - trace.points[j].time), trace.points[j].time),
            Predecessor::Origin => (mu * p.time, 0.0),
            Predecessor::None => (f64::INFINITY, 0.0),
        };
        // Transfer arm: bridge from the previous request (or origin) and ship.
        let (prev_time, prev_server) = if i == 0 {
            (0.0, ServerId::ORIGIN)
        } else {
            (trace.points[i - 1].time, trace.points[i - 1].server)
        };
        let transfer_cost = lambda + mu * (p.time - prev_time);

        if cache_cost <= transfer_cost {
            cost += cache_cost;
            choices.push(GreedyChoice::Cache(cache_cost));
            schedule.cache(p.server, cache_start, p.time);
        } else {
            cost += transfer_cost;
            choices.push(GreedyChoice::Transfer(transfer_cost));
            schedule.cache(prev_server, prev_time, p.time);
            schedule.transfer(prev_server, p.server, p.time);
        }
    }

    GreedyOutcome {
        cost,
        choices,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, CostModelBuilder};

    fn unit_model() -> CostModel {
        CostModel::new(1.0, 1.0, 0.8).unwrap()
    }

    #[test]
    fn empty_trace_is_free() {
        let trace = SingleItemTrace::from_pairs(2, &[]);
        let out = greedy(&trace, &unit_model());
        assert_eq!(out.cost, 0.0);
        assert!(out.choices.is_empty());
    }

    #[test]
    fn greedy_schedule_is_feasible_and_accounts_exactly() {
        let model = CostModelBuilder::new().mu(2.0).lambda(3.0).build().unwrap();
        let trace =
            SingleItemTrace::from_pairs(4, &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (4.0, 2)]);
        let out = greedy(&trace, &model);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(
            out.schedule.cost(model.mu(), model.lambda()).total,
            out.cost
        ));
        assert!(approx_eq(
            out.choices.iter().map(|c| c.cost()).sum::<f64>(),
            out.cost
        ));
    }

    #[test]
    fn prefers_cache_when_local_gap_is_small() {
        // Two requests on the same server 0.2 apart with λ = 1: cache.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (1.2, 1)]);
        let out = greedy(&trace, &unit_model());
        assert!(matches!(out.choices[1], GreedyChoice::Cache(c) if approx_eq(c, 0.2)));
    }

    #[test]
    fn prefers_transfer_when_local_gap_is_large() {
        // Same server but 5.0 apart, with an interleaved request elsewhere:
        // transfer from the recent copy wins (1 + 0.5 < 5).
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (5.5, 0), (6.0, 1)]);
        let out = greedy(&trace, &unit_model());
        assert!(matches!(out.choices[2], GreedyChoice::Transfer(c) if approx_eq(c, 1.5)));
    }

    #[test]
    fn first_request_costs_bridge_plus_transfer_when_remote() {
        // Matches Tr(0.8) = 0.8μ + λ of the running example (pre-scaling).
        let trace = SingleItemTrace::from_pairs(2, &[(0.8, 1)]);
        let out = greedy(&trace, &unit_model());
        assert!(approx_eq(out.cost, 1.8));
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn first_request_at_origin_is_cached() {
        let trace = SingleItemTrace::from_pairs(2, &[(0.8, 0)]);
        let out = greedy(&trace, &unit_model());
        assert!(approx_eq(out.cost, 0.8));
        assert!(matches!(out.choices[0], GreedyChoice::Cache(_)));
    }

    #[test]
    fn greedy_example_of_fig4_shape() {
        // The paper's Fig. 3/4 contrast: greedy never coordinates copies, so
        // on a ping-pong pattern between two servers it pays a transfer (or a
        // long cache) every time, roughly doubling the optimal cost.
        let model = CostModelBuilder::new().mu(1.0).lambda(1.0).build().unwrap();
        let pattern: Vec<(f64, u32)> = (1..=8).map(|i| (i as f64, (i % 2) as u32)).collect();
        let trace = SingleItemTrace::from_pairs(2, &pattern);
        let g = greedy(&trace, &model);
        let o = crate::optimal(&trace, &model);
        assert!(g.cost >= o.cost);
        // Theorem-level sanity: within the 2× bound.
        assert!(g.cost <= 2.0 * o.cost + 1e-9);
    }
}

//! Property-based cross-validation of the three exact solvers and the
//! greedy baseline on random instances.
//!
//! The validation matrix (DESIGN.md §2 and §8):
//!
//! * `optimal` (covering DP) == `exhaustive` (same semantics, no DP)
//! * `optimal` == `statespace` (independent physics-level ground truth)
//! * `optimal`'s emitted schedule is feasible and re-accounts to its cost
//! * `greedy >= optimal` and `greedy <= 2·optimal` (the paper's Eq. 7–8)

use proptest::prelude::*;

use crate::exhaustive::exhaustive_optimal;
use crate::statespace::statespace_optimal;
use crate::{greedy::greedy, optimal::optimal};
use mcs_model::request::SingleItemTrace;
use mcs_model::{approx_eq, approx_le, CostModel};

/// Strategy: a random trace over `m ∈ 1..=4` servers with `n ∈ 0..=9`
/// requests at strictly increasing tenth-unit times.
fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
    (1u32..=4, 0usize..=9).prop_flat_map(|(m, n)| {
        (
            Just(m),
            proptest::collection::vec(1u32..=60, n),
            proptest::collection::vec(0u32..m, n),
        )
            .prop_map(|(m, mut ticks, servers)| {
                ticks.sort_unstable();
                ticks.dedup();
                let pairs: Vec<(f64, u32)> = ticks
                    .iter()
                    .zip(servers.iter())
                    .map(|(&t, &s)| (t as f64 / 10.0, s))
                    .collect();
                SingleItemTrace::from_pairs(m, &pairs)
            })
    })
}

fn model_strategy() -> impl Strategy<Value = CostModel> {
    (1u32..=50, 1u32..=50, 1u32..=10).prop_map(|(mu, la, a)| {
        CostModel::new(mu as f64 / 10.0, la as f64 / 10.0, a as f64 / 10.0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn optimal_matches_exhaustive(trace in trace_strategy(), model in model_strategy()) {
        let dp = optimal(&trace, &model).cost;
        let ex = exhaustive_optimal(&trace, &model);
        prop_assert!(approx_eq(dp, ex), "dp={dp} exhaustive={ex}");
    }

    #[test]
    fn optimal_matches_statespace(trace in trace_strategy(), model in model_strategy()) {
        let dp = optimal(&trace, &model).cost;
        let ss = statespace_optimal(&trace, &model);
        prop_assert!(approx_eq(dp, ss), "dp={dp} statespace={ss}");
    }

    #[test]
    fn optimal_schedule_is_feasible_and_accounts(trace in trace_strategy(), model in model_strategy()) {
        let out = optimal(&trace, &model);
        prop_assert!(out.schedule.validate(&trace).is_ok(),
            "schedule infeasible: {:?}", out.schedule.validate(&trace));
        let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
        prop_assert!(approx_eq(replayed, out.cost), "replayed={replayed} reported={}", out.cost);
    }

    #[test]
    fn greedy_is_between_one_and_two_times_optimal(trace in trace_strategy(), model in model_strategy()) {
        let o = optimal(&trace, &model).cost;
        let g = greedy(&trace, &model);
        prop_assert!(approx_le(o, g.cost), "greedy {} beat optimal {o}", g.cost);
        prop_assert!(approx_le(g.cost, 2.0 * o), "greedy {} exceeded 2x optimal {o}", g.cost);
    }

    #[test]
    fn greedy_schedule_is_feasible_and_accounts(trace in trace_strategy(), model in model_strategy()) {
        let g = greedy(&trace, &model);
        prop_assert!(g.schedule.validate(&trace).is_ok());
        let replayed = g.schedule.cost(model.mu(), model.lambda()).total;
        prop_assert!(approx_eq(replayed, g.cost));
    }

    #[test]
    fn optimal_cost_is_monotone_in_lambda(trace in trace_strategy(), mu in 1u32..=30) {
        // More expensive transfers can never make the optimum cheaper.
        let lo = CostModel::new(mu as f64 / 10.0, 0.5, 0.8).unwrap();
        let hi = CostModel::new(mu as f64 / 10.0, 2.0, 0.8).unwrap();
        let c_lo = optimal(&trace, &lo).cost;
        let c_hi = optimal(&trace, &hi).cost;
        prop_assert!(approx_le(c_lo, c_hi));
    }

    #[test]
    fn optimal_scales_linearly_with_uniform_rate_scaling(trace in trace_strategy()) {
        // cost(c·μ, c·λ) = c · cost(μ, λ): the basis for the 2α package scaling.
        let base = CostModel::new(1.0, 1.3, 0.8).unwrap();
        let scaled = CostModel::new(1.6, 1.3 * 1.6, 0.8).unwrap();
        let c1 = optimal(&trace, &base).cost;
        let c2 = optimal(&trace, &scaled).cost;
        prop_assert!(approx_eq(c2, 1.6 * c1), "c1={c1} c2={c2}");
    }
}

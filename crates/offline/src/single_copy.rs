//! The single-copy substrate: optimal caching when replication is
//! forbidden.
//!
//! The related work the paper builds on studied this regime first:
//! Veeravalli's network caching \[7\] and the single-copy scenario of Wang
//! et al.'s data staging \[8\] (their `1 + C/S` approximation). Exactly one
//! copy of the item exists at all times; serving a request either finds
//! the copy locally (free), reads it remotely (a transfer that leaves the
//! copy in place), or *migrates* it to the requester (a transfer that
//! moves it). Holding the single copy costs `μ` per unit time wherever it
//! sits, so the holding cost is the constant `μ·t_n` and the optimisation
//! is over transfer count placement — a classic file-migration DP with
//! state = copy location, solved here in `O(nm)`.
//!
//! The gap between this optimum and the multi-copy optimum of
//! [`crate::optimal::optimal`] quantifies the value of replication (exposed in the
//! `replication` experiment and asserted ≥ 0 by property tests).

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId};

/// How a request was served by the single-copy optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingleCopyMove {
    /// The copy was already at the requesting server.
    Local,
    /// Served by a remote read; the copy stayed where it was.
    RemoteRead,
    /// The copy migrated to the requesting server.
    Migrate,
}

/// Result of the single-copy solver.
#[derive(Debug, Clone)]
pub struct SingleCopyOutcome {
    /// Optimal total cost (holding `μ·t_n` + transfer decisions).
    pub cost: f64,
    /// Per-request decisions.
    pub moves: Vec<SingleCopyMove>,
    /// Explicit schedule: one chain of location intervals plus transfers.
    pub schedule: Schedule,
}

/// Computes the optimal single-copy schedule in `O(nm)` time and space.
pub fn single_copy_optimal(trace: &SingleItemTrace, model: &CostModel) -> SingleCopyOutcome {
    let n = trace.len();
    let m = trace.servers as usize;
    let mu = model.mu();
    let lambda = model.lambda();
    if n == 0 {
        return SingleCopyOutcome {
            cost: 0.0,
            moves: Vec::new(),
            schedule: Schedule::new(),
        };
    }

    // dp[s] = min transfer cost so that the copy sits at s after serving
    // the current request; parent pointers reconstruct locations.
    let origin = ServerId::ORIGIN.index();
    let mut dp = vec![f64::INFINITY; m];
    dp[origin] = 0.0;
    // parent[i][s] = copy location before request i, given it is at s after.
    let mut parent = vec![vec![usize::MAX; m]; n];

    for (i, p) in trace.points.iter().enumerate() {
        let q = p.server.index();
        let mut next = vec![f64::INFINITY; m];
        // Over previous locations l:
        for (l, &c) in dp.iter().enumerate() {
            if !c.is_finite() {
                continue;
            }
            if l == q {
                // Local hit; copy stays.
                if c < next[q] {
                    next[q] = c;
                    parent[i][q] = l;
                }
            } else {
                // Remote read: copy stays at l.
                if c + lambda < next[l] {
                    next[l] = c + lambda;
                    parent[i][l] = l;
                }
                // Migration: copy moves to q.
                if c + lambda < next[q] {
                    next[q] = c + lambda;
                    parent[i][q] = l;
                }
            }
        }
        dp = next;
    }

    // Best final location.
    let (mut loc, best) = dp
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("at least one server");
    let horizon = trace.points[n - 1].time;
    let cost = best + mu * horizon;

    // Walk parents backward to recover the location chain.
    let mut locations = vec![0usize; n + 1];
    locations[n] = loc;
    for i in (0..n).rev() {
        loc = parent[i][loc];
        debug_assert_ne!(loc, usize::MAX, "parent chain broken at {i}");
        locations[i] = loc;
    }
    debug_assert_eq!(locations[0], origin);

    // Emit moves and the explicit schedule.
    let mut moves = Vec::with_capacity(n);
    let mut schedule = Schedule::new();
    let mut seg_start = 0.0_f64;
    for (i, p) in trace.points.iter().enumerate() {
        let before = locations[i];
        let after = locations[i + 1];
        let q = p.server.index();
        let mv = if before == q {
            SingleCopyMove::Local
        } else if after == before {
            SingleCopyMove::RemoteRead
        } else {
            SingleCopyMove::Migrate
        };
        match mv {
            SingleCopyMove::Local => {}
            SingleCopyMove::RemoteRead => {
                // Transient serving copy at q; the resident copy stays.
                schedule.transfer(ServerId(before as u32), p.server, p.time);
            }
            SingleCopyMove::Migrate => {
                // Close the segment at `before`, move to q.
                schedule.cache(ServerId(before as u32), seg_start, p.time);
                schedule.transfer(ServerId(before as u32), p.server, p.time);
                seg_start = p.time;
            }
        }
        moves.push(mv);
    }
    schedule.cache(ServerId(locations[n] as u32), seg_start, horizon);

    SingleCopyOutcome {
        cost,
        moves,
        schedule,
    }
}

/// The always-migrate heuristic: the copy chases every request. Cost is
/// `μ·t_n + λ·#(location changes)` — the upper end of \[8\]'s `1 + C/S`
/// analysis shape. Used as the ablation partner of the DP.
pub fn single_copy_always_migrate(trace: &SingleItemTrace, model: &CostModel) -> f64 {
    let mu = model.mu();
    let lambda = model.lambda();
    if trace.is_empty() {
        return 0.0;
    }
    let mut loc = ServerId::ORIGIN;
    let mut transfers = 0usize;
    for p in &trace.points {
        if p.server != loc {
            transfers += 1;
            loc = p.server;
        }
    }
    mu * trace.points[trace.len() - 1].time + lambda * transfers as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, CostModelBuilder};

    #[test]
    fn empty_trace() {
        let out = single_copy_optimal(
            &SingleItemTrace::from_pairs(3, &[]),
            &CostModel::paper_example(),
        );
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn local_chain_needs_no_transfers() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 0), (2.0, 0)]);
        let out = single_copy_optimal(&trace, &CostModel::paper_example());
        assert!(approx_eq(out.cost, 2.0)); // μ·t_n only
        assert!(out.moves.iter().all(|m| *m == SingleCopyMove::Local));
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn ping_pong_prefers_remote_reads_from_a_parked_copy() {
        // Requests alternate s1/s2; parking at either side costs one λ per
        // opposite request; migrating every time costs one λ per request —
        // identical here, but with a final double-request the DP must park
        // smartly.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 0), (3.0, 1), (4.0, 1)]);
        let model = CostModel::paper_example();
        let out = single_copy_optimal(&trace, &model);
        // μ·4 + 2λ: e.g. park at s2 (migrate at t=1), remote-read t=2,
        // serve t=3/t=4 locally — or the symmetric plan; both cost 6 and
        // the tail request is always local.
        assert!(approx_eq(out.cost, 4.0 + 2.0), "got {}", out.cost);
        assert_eq!(out.moves[3], SingleCopyMove::Local);
        assert_eq!(
            out.moves
                .iter()
                .filter(|m| **m != SingleCopyMove::Local)
                .count(),
            2
        );
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn schedule_cost_matches_reported() {
        let model = CostModelBuilder::new().mu(2.0).lambda(3.0).build().unwrap();
        let trace =
            SingleItemTrace::from_pairs(4, &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (4.0, 2)]);
        let out = single_copy_optimal(&trace, &model);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(
            out.schedule.cost(model.mu(), model.lambda()).total,
            out.cost
        ));
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use crate::optimal;
        use proptest::prelude::*;

        fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
            (1u32..=4, 0usize..=12).prop_flat_map(|(m, n)| {
                (
                    Just(m),
                    proptest::collection::vec(1u32..=80, n),
                    proptest::collection::vec(0u32..m, n),
                )
                    .prop_map(|(m, mut ticks, servers)| {
                        ticks.sort_unstable();
                        ticks.dedup();
                        let pairs: Vec<(f64, u32)> = ticks
                            .iter()
                            .zip(servers.iter())
                            .map(|(&t, &s)| (t as f64 / 10.0, s))
                            .collect();
                        SingleItemTrace::from_pairs(m, &pairs)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn replication_never_hurts(trace in trace_strategy(), mu in 1u32..=30, la in 1u32..=30) {
                // Multi-copy optimal ≤ single-copy optimal ≤ always-migrate.
                let model = CostModelBuilder::new()
                    .mu(mu as f64 / 10.0)
                    .lambda(la as f64 / 10.0)
                    .build()
                    .unwrap();
                let multi = optimal(&trace, &model).cost;
                let single = single_copy_optimal(&trace, &model).cost;
                let migrate = single_copy_always_migrate(&trace, &model);
                prop_assert!(multi <= single + 1e-9, "multi {multi} > single {single}");
                prop_assert!(single <= migrate + 1e-9, "single {single} > migrate {migrate}");
            }

            #[test]
            fn single_copy_schedule_is_feasible_and_accounts(trace in trace_strategy()) {
                let model = CostModel::paper_example();
                let out = single_copy_optimal(&trace, &model);
                prop_assert!(out.schedule.validate(&trace).is_ok());
                let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
                prop_assert!(approx_eq(replayed, out.cost), "replayed {replayed} reported {}", out.cost);
            }
        }
    }
}

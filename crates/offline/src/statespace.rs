//! Structurally independent exact solver: layered dynamic programming over
//! `(request index, set of servers currently holding a copy)`.
//!
//! This solver embodies **no** insight about the problem beyond its raw
//! physics — between consecutive requests any subset of the live copies may
//! be kept (each paying `μ·Δt`), at least one copy must survive, and a
//! request at a server without a copy triggers a `λ` transfer. It therefore
//! serves as the ground truth that validates both the covering reduction
//! (`DESIGN.md` §2) and its implementation in [`crate::optimal::optimal`].
//!
//! The only normalisations applied are ones proven in the literature or in
//! `DESIGN.md`: transfers happen at request times (standard form, \[7\]) and
//! copies are never *pre-positioned* at servers that are not currently
//! requesting (a pre-positioned copy costs `λ + μ·(hold time)` and is
//! dominated by a just-in-time transfer at `λ`, since the backbone copy it
//! would be taken from must stay alive anyway).
//!
//! Complexity: `O(n · 3^m)` time, `O(2^m)` space. Keep `m ≤ ~12`.

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, ServerId};

/// Maximum server count accepted by the state-space solver.
pub const MAX_SERVERS: u32 = 16;

/// Exact optimal off-line cost by state-space dynamic programming.
///
/// # Panics
///
/// Panics if the trace has more than [`MAX_SERVERS`] servers.
pub fn statespace_optimal(trace: &SingleItemTrace, model: &CostModel) -> f64 {
    statespace_capacitated(trace, model, u32::MAX)
}

/// Exact optimal off-line cost when at most `max_copies` replicas may be
/// live at any instant — the *capacity-oriented* regime the paper's
/// introduction contrasts with its cost-oriented model ("the storage
/// capacity as a resource in the cloud can be viewed as virtually
/// infinite"). `max_copies = 1` is close to the single-copy regime of
/// [`crate::single_copy`] but still allows just-in-time serving copies at
/// the request instant; `u32::MAX` recovers the unconstrained optimum.
///
/// Returns `f64::INFINITY` when the constraint makes the instance
/// infeasible (never happens for `max_copies ≥ 1`).
///
/// # Panics
///
/// Panics if the trace has more than [`MAX_SERVERS`] servers or
/// `max_copies == 0`.
pub fn statespace_capacitated(trace: &SingleItemTrace, model: &CostModel, max_copies: u32) -> f64 {
    assert!(max_copies >= 1, "at least one copy must be allowed");
    let n = trace.len();
    if n == 0 {
        return 0.0;
    }
    let m = trace.servers;
    assert!(
        m <= MAX_SERVERS,
        "state-space solver limited to {MAX_SERVERS} servers, got {m}"
    );
    let mu = model.mu();
    let lambda = model.lambda();
    let full = 1usize << m;

    // dp[mask] = min cost with `mask` = servers holding a copy right after
    // the most recently processed event. Start: origin copy at s1, t = 0.
    let mut dp = vec![f64::INFINITY; full];
    dp[1 << ServerId::ORIGIN.index()] = 0.0;
    let mut prev_time = 0.0_f64;

    for p in &trace.points {
        let dt = p.time - prev_time;
        prev_time = p.time;
        let s_bit = 1usize << p.server.index();

        let mut next = vec![f64::INFINITY; full];
        for (mask, &cost) in dp.iter().enumerate() {
            if !cost.is_finite() {
                continue;
            }
            // Enumerate every non-empty subset of `mask` to keep alive
            // across the gap.
            let mut keep = mask;
            loop {
                if keep != 0 && keep.count_ones() <= max_copies {
                    let hold = cost + mu * dt * keep.count_ones() as f64;
                    let (new_mask, served) = if keep & s_bit != 0 {
                        (keep, hold)
                    } else {
                        (keep | s_bit, hold + lambda)
                    };
                    if served < next[new_mask] {
                        next[new_mask] = served;
                    }
                }
                if keep == 0 {
                    break;
                }
                keep = (keep - 1) & mask;
            }
        }
        dp = next;
    }

    dp.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, CostModelBuilder};

    #[test]
    fn empty_is_free() {
        let trace = SingleItemTrace::from_pairs(2, &[]);
        assert_eq!(statespace_optimal(&trace, &CostModel::paper_example()), 0.0);
    }

    #[test]
    fn single_local_request() {
        let trace = SingleItemTrace::from_pairs(2, &[(0.5, 0)]);
        let c = statespace_optimal(&trace, &CostModel::paper_example());
        assert!(approx_eq(c, 0.5));
    }

    #[test]
    fn single_remote_request() {
        let trace = SingleItemTrace::from_pairs(2, &[(0.8, 1)]);
        let c = statespace_optimal(&trace, &CostModel::paper_example());
        assert!(approx_eq(c, 1.8));
    }

    #[test]
    fn confirms_paper_package_subproblem() {
        let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
        let pkg = CostModel::paper_example().scaled_for_package();
        let c = statespace_optimal(&trace, &pkg);
        assert!(approx_eq(c, 8.96), "got {c}");
    }

    #[test]
    fn multi_copy_beats_single_copy_when_cheap() {
        // λ huge: replicate once to each server and hold copies everywhere
        // rather than re-transfer. The state-space solver must discover the
        // multi-copy schedule.
        let model = CostModelBuilder::new()
            .mu(0.1)
            .lambda(100.0)
            .build()
            .unwrap();
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 0), (3.0, 1), (4.0, 0)]);
        let c = statespace_optimal(&trace, &model);
        // One transfer to s2 at t=1, then both copies held to their last use:
        // s1 holds [0,4] (0.4), s2 holds [1,3] (0.2), one λ.
        assert!(approx_eq(c, 100.0 + 0.4 + 0.2), "got {c}");
    }

    #[test]
    fn capacity_constraint_monotonically_raises_cost() {
        let model = CostModelBuilder::new()
            .mu(0.1)
            .lambda(100.0)
            .build()
            .unwrap();
        let trace =
            SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 0), (3.0, 1), (4.0, 2), (5.0, 0)]);
        let unconstrained = statespace_optimal(&trace, &model);
        let cap2 = statespace_capacitated(&trace, &model, 2);
        let cap1 = statespace_capacitated(&trace, &model, 1);
        assert!(unconstrained <= cap2 + 1e-9);
        assert!(cap2 <= cap1 + 1e-9);
        // With huge λ, replication is precious: the cap must really bite.
        assert!(cap1 > unconstrained + 1.0, "cap1={cap1} vs {unconstrained}");
    }

    #[test]
    fn capacity_one_matches_single_copy_when_reads_do_not_replicate() {
        // max_copies = 1 still allows just-in-time serving copies, exactly
        // like the single-copy model's remote reads, so the two agree.
        let model = CostModelBuilder::new().mu(1.0).lambda(2.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.5, 0), (3.0, 1), (4.0, 2)]);
        let cap1 = statespace_capacitated(&trace, &model, 1);
        let single = crate::single_copy::single_copy_optimal(&trace, &model).cost;
        assert!(approx_eq(cap1, single), "cap1={cap1} single={single}");
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_capacity_is_rejected() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let _ = statespace_capacitated(&trace, &CostModel::paper_example(), 0);
    }

    #[test]
    fn agrees_with_dp_on_handcrafted_instances() {
        let model = CostModelBuilder::new().mu(2.0).lambda(3.0).build().unwrap();
        for pts in [
            vec![(0.5, 1u32), (0.9, 2), (1.3, 0), (2.0, 1)],
            vec![(1.0, 1), (1.1, 1), (5.0, 2), (5.1, 1)],
            vec![(2.0, 0), (2.5, 1), (3.0, 0), (3.5, 1), (4.0, 2)],
        ] {
            let trace = SingleItemTrace::from_pairs(3, &pts);
            let dp = crate::optimal(&trace, &model).cost;
            let ss = statespace_optimal(&trace, &model);
            assert!(approx_eq(dp, ss), "dp={dp} statespace={ss} pts={pts:?}");
        }
    }
}

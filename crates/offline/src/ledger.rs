//! Derives decision-ledger events from explicit schedules.
//!
//! The off-line solvers already emit explicit [`Schedule`]s whose cost is
//! asserted (and property-tested) to equal the DP cost, so the ledger for
//! an off-line run is *derived* from the schedule rather than logged
//! inline: one `cache` event per cache interval (cost `μ·len`, stamped at
//! the interval end — the point by which the full holding cost has been
//! paid) and one `transfer` event per transfer (cost `λ`). Summing event
//! costs therefore reconciles with `Schedule::cost(μ, λ).total` by
//! construction, which is exactly the reconciliation theorem the
//! workspace-level property test checks.

use mcs_model::Schedule;
use mcs_obs::{LedgerEvent, Subject};

/// Appends one ledger event per cache interval and per transfer of
/// `schedule`, priced at rates `mu`/`lambda` (pass the package-scaled
/// rates for package schedules). Events are emitted in the schedule's
/// own order, so derivation is deterministic for a given schedule.
pub fn schedule_events(
    algo: &'static str,
    phase: &'static str,
    subject: Subject,
    schedule: &Schedule,
    mu: f64,
    lambda: f64,
    out: &mut Vec<LedgerEvent>,
) {
    for iv in &schedule.intervals {
        let cost = mu * iv.span.len();
        out.push(LedgerEvent {
            algo,
            phase,
            subject,
            option_chosen: "cache",
            option_costs: [cost, f64::INFINITY, f64::INFINITY],
            t: iv.span.end,
            cost,
        });
    }
    for tr in &schedule.transfers {
        out.push(LedgerEvent {
            algo,
            phase,
            subject,
            option_chosen: "transfer",
            option_costs: [f64::INFINITY, lambda, f64::INFINITY],
            t: tr.time,
            cost: lambda,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::request::SingleItemTrace;
    use mcs_model::{approx_eq, CostModel};

    #[test]
    fn schedule_events_reconcile_with_schedule_cost() {
        let model = CostModel::new(2.0, 3.0, 0.8).unwrap();
        let trace =
            SingleItemTrace::from_pairs(4, &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (4.0, 2)]);
        let out = crate::optimal(&trace, &model);
        let mut events = Vec::new();
        schedule_events(
            "optimal",
            "offline",
            Subject::Item(7),
            &out.schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
        let total: f64 = events.iter().map(|e| e.cost).sum();
        assert!(approx_eq(total, out.cost));
        assert_eq!(
            events.len(),
            out.schedule.intervals.len() + out.schedule.transfers.len()
        );
    }

    #[test]
    fn greedy_schedule_events_reconcile_too() {
        let model = CostModel::new(1.0, 1.0, 0.8).unwrap();
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (3.0, 1), (4.5, 0)]);
        let out = crate::greedy(&trace, &model);
        let mut events = Vec::new();
        schedule_events(
            "greedy",
            "offline",
            Subject::Item(0),
            &out.schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
        let total: f64 = events.iter().map(|e| e.cost).sum();
        assert!(approx_eq(total, out.cost));
    }
}

//! The optimal off-line single-commodity caching algorithm (the substrate
//! of reference \[6\] of the paper), re-derived as a minimum-cost
//! line-covering dynamic program.
//!
//! See the crate docs and `DESIGN.md` §2 for the derivation. In short:
//! every request is served by a local cache interval from its same-server
//! predecessor (`r_{p(i)}` of Definition 1) or by a `λ` transfer from any
//! live copy, and the whole horizon `[0, t_n]` must be covered by live
//! copies. "Short" intervals (`μ·len ≤ λ`) are always taken; the residual
//! problem — which "long" intervals to take versus bridging uncovered gaps
//! at `μ` per unit time — is a DAG shortest path over gap boundaries.
//!
//! The solver returns both the optimal cost and an explicit
//! [`Schedule`] that passes the independent feasibility validator of
//! `mcs-model` with exactly the same cost.

use mcs_model::request::{Predecessor, SingleItemTrace};
use mcs_model::{approx_eq, approx_le, CostModel, Schedule, ServerId};

/// How a request is served in the optimal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeDecision {
    /// Served by a local cache interval from the same-server predecessor.
    Cache,
    /// Served by a transfer from a live copy.
    Transfer,
}

/// Result of the optimal off-line solver.
#[derive(Debug, Clone)]
pub struct OptimalOutcome {
    /// Optimal total cost under the supplied rates.
    pub cost: f64,
    /// Per-request serving decisions, aligned with the trace points.
    pub decisions: Vec<ServeDecision>,
    /// An explicit schedule achieving `cost`; feasible by construction and
    /// cross-checked against the `mcs-model` validator in tests.
    pub schedule: Schedule,
}

impl OptimalOutcome {
    fn empty() -> Self {
        OptimalOutcome {
            cost: 0.0,
            decisions: Vec::new(),
            schedule: Schedule::new(),
        }
    }
}

/// Shortest-path edge provenance, for schedule reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Edge {
    /// Bridge (or free traversal of a short-covered gap) from the previous node.
    Bridge,
    /// Long cache interval of request `i`, entered from node `from`.
    Long { request: usize, from: usize },
}

/// Computes the optimal off-line cost and schedule for a single commodity.
///
/// For a plain data item pass the base [`CostModel`]; for a two-item
/// package pass [`CostModel::scaled_for_package`] — this reproduces the
/// `2α·(call alg. in \[6\])` of Algorithm 1, line 40.
///
/// Runs in `O(n²)` time and `O(n)` space for `n` trace points (the
/// per-server predecessor scan is `O(n)` with hashing).
///
/// ```
/// use mcs_model::{request::SingleItemTrace, CostModel};
/// use mcs_offline::optimal;
///
/// // The paper's package sub-problem (§V-C): co-requests at
/// // (0.8, s3), (1.4, s1), (4.0, s3) under package rates 2αμ = 2αλ = 1.6.
/// let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
/// let pkg = CostModel::paper_example().scaled_for_package();
/// let out = optimal(&trace, &pkg);
/// assert!((out.cost - 8.96).abs() < 1e-9);
/// out.schedule.validate(&trace).unwrap();
/// ```
pub fn optimal(trace: &SingleItemTrace, model: &CostModel) -> OptimalOutcome {
    let _span = mcs_obs::span("offline.optimal");
    let n = trace.len();
    if n == 0 {
        return OptimalOutcome::empty();
    }
    mcs_obs::counter_add("offline.optimal.requests", n as u64);
    let mu = model.mu();
    let lambda = model.lambda();

    // Node j sits at boundary time T[j]; node 0 is the origin placement,
    // node i+1 is request i. Gap j spans T[j]..T[j+1], j in 0..n.
    let mut boundary = Vec::with_capacity(n + 1);
    boundary.push(0.0_f64);
    boundary.extend(trace.points.iter().map(|p| p.time));

    let preds = trace.predecessors();
    // Predecessor node index of request i (start node of its cache interval).
    let pred_node: Vec<Option<usize>> = preds
        .iter()
        .map(|p| match p {
            Predecessor::Origin => Some(0),
            Predecessor::Request(j) => Some(j + 1),
            Predecessor::None => None,
        })
        .collect();
    let interval_len =
        |i: usize| -> f64 { boundary[i + 1] - boundary[pred_node[i].expect("has pred")] };

    // Classify requests: short cache intervals are always taken.
    let mut is_short = vec![false; n];
    let mut is_long = vec![false; n];
    for (i, pred) in pred_node.iter().enumerate() {
        if pred.is_some() {
            if approx_le(mu * interval_len(i), lambda) {
                is_short[i] = true;
            } else {
                is_long[i] = true;
            }
        }
    }

    // Gaps already covered by an always-taken short interval.
    let mut short_cover = vec![false; n];
    for i in 0..n {
        if is_short[i] {
            let a = pred_node[i].unwrap();
            for flag in short_cover.iter_mut().take(i + 1).skip(a) {
                *flag = true;
            }
        }
    }

    // Base cost: short caches plus one pending transfer per non-short request.
    let mut base = 0.0;
    for (i, &short) in is_short.iter().enumerate() {
        if short {
            base += mu * interval_len(i);
        } else {
            base += lambda;
        }
    }

    // DAG shortest path over nodes 0..=n. Long-interval edges are relaxed
    // before the bridge edge at each node so that, on exact ties, an
    // interval (which refunds its λ) is preferred over a bridge.
    let mut dist = vec![f64::INFINITY; n + 1];
    let mut parent: Vec<Option<Edge>> = vec![None; n + 1];
    dist[0] = 0.0;
    for j in 0..n {
        let dj = dist[j];
        if dj.is_infinite() {
            continue;
        }
        // Long edges available from node j: every long request i whose
        // interval already spans node j (pred_node[i] <= j <= i).
        for i in j..n {
            if is_long[i] && pred_node[i].unwrap() <= j {
                let w = mu * interval_len(i) - lambda;
                let cand = dj + w;
                if cand < dist[i + 1] {
                    dist[i + 1] = cand;
                    parent[i + 1] = Some(Edge::Long {
                        request: i,
                        from: j,
                    });
                }
            }
        }
        // Bridge edge j -> j+1.
        let w = if short_cover[j] {
            0.0
        } else {
            mu * (boundary[j + 1] - boundary[j])
        };
        if dj + w < dist[j + 1] {
            dist[j + 1] = dj + w;
            parent[j + 1] = Some(Edge::Bridge);
        }
    }
    let cost = base + dist[n];

    // ---- Reconstruction -------------------------------------------------
    // Chosen cache-served set X = shorts ∪ longs on the shortest path;
    // bridged gaps = bridge edges over gaps covered by nothing in X.
    let mut in_x = is_short.clone();
    let mut bridge_edge = vec![false; n];
    let mut node = n;
    while node > 0 {
        match parent[node].expect("path reaches every node") {
            Edge::Bridge => {
                bridge_edge[node - 1] = true;
                node -= 1;
            }
            Edge::Long { request, from } => {
                in_x[request] = true;
                node = from;
            }
        }
    }

    // Gap coverage by chosen intervals: interval of request k spans gaps
    // pred_node[k] ..= k.
    let mut covered_by: Vec<Option<usize>> = vec![None; n];
    for k in 0..n {
        if in_x[k] {
            let a = pred_node[k].unwrap();
            for slot in covered_by.iter_mut().take(k + 1).skip(a) {
                slot.get_or_insert(k);
            }
        }
    }

    let server_of_node = |j: usize| -> ServerId {
        if j == 0 {
            ServerId::ORIGIN
        } else {
            trace.points[j - 1].server
        }
    };

    let mut schedule = Schedule::new();
    let mut decisions = Vec::with_capacity(n);

    // Physical bridges: only where a bridge edge crosses a truly uncovered gap.
    let mut bridged = vec![false; n];
    for j in 0..n {
        if bridge_edge[j] && covered_by[j].is_none() && !short_cover[j] {
            bridged[j] = true;
            schedule.cache(server_of_node(j), boundary[j], boundary[j + 1]);
        }
    }

    for i in 0..n {
        let p = trace.points[i];
        if in_x[i] {
            decisions.push(ServeDecision::Cache);
            schedule.cache(p.server, boundary[pred_node[i].unwrap()], p.time);
        } else {
            decisions.push(ServeDecision::Transfer);
            // Source: a chosen interval alive over the gap immediately
            // before t_i, else the bridge copy for that gap, else (i == 0
            // with a covered zero predecessor) the origin.
            let source = if let Some(k) = covered_by[i] {
                trace.points[k].server
            } else if bridged[i] {
                server_of_node(i)
            } else if short_cover[i] {
                // A short interval covers the gap; find it.
                let k = (0..n)
                    .find(|&k| is_short[k] && pred_node[k].unwrap() <= i && k >= i)
                    .expect("short cover implies a covering short interval");
                trace.points[k].server
            } else {
                unreachable!("gap before a transfer-served request must be covered")
            };
            debug_assert_ne!(
                source, p.server,
                "optimal path should never transfer a copy to itself"
            );
            schedule.transfer(source, p.server, p.time);
        }
    }

    debug_assert!(
        approx_eq(schedule.cost(mu, lambda).total, cost),
        "reconstructed schedule cost {} != DP cost {}",
        schedule.cost(mu, lambda).total,
        cost
    );

    OptimalOutcome {
        cost,
        decisions,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::CostModelBuilder;

    fn unit_model() -> CostModel {
        CostModel::new(1.0, 1.0, 0.8).unwrap()
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let trace = SingleItemTrace::from_pairs(3, &[]);
        let out = optimal(&trace, &unit_model());
        assert_eq!(out.cost, 0.0);
        assert!(out.schedule.intervals.is_empty());
        assert!(out.schedule.transfers.is_empty());
    }

    #[test]
    fn single_request_at_origin_is_cached() {
        // Item already at s1; keep it for t units: μ·t beats λ + bridging.
        let trace = SingleItemTrace::from_pairs(2, &[(0.5, 0)]);
        let out = optimal(&trace, &unit_model());
        assert!(approx_eq(out.cost, 0.5));
        assert_eq!(out.decisions, vec![ServeDecision::Cache]);
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn single_remote_request_bridges_then_transfers() {
        // Request at s2 at t=0.8: cache at s1 for 0.8 then transfer — the
        // Tr(0.8) term of the running example (before the 2α scaling).
        let trace = SingleItemTrace::from_pairs(2, &[(0.8, 1)]);
        let out = optimal(&trace, &unit_model());
        assert!(approx_eq(out.cost, 0.8 + 1.0));
        assert_eq!(out.decisions, vec![ServeDecision::Transfer]);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(out.schedule.cost(1.0, 1.0).total, out.cost));
    }

    #[test]
    fn paper_running_example_package_cost() {
        // Section V-C step 4: the package co-requests at (0.8, s3),
        // (1.4, s1), (4.0, s3) under rates (2αμ, 2αλ) = (1.6, 1.6) cost
        // C(4.0) = 8.96: s1 caches [0,1.4] (serving the 1.4 request
        // locally), a transfer at 0.8 serves s3, whose copy is then kept
        // over [0.8, 4.0] to serve the 4.0 request locally.
        let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
        let pkg = CostModel::paper_example().scaled_for_package();
        let out = optimal(&trace, &pkg);
        assert!(
            approx_eq(out.cost, 8.96),
            "expected the paper's 8.96, got {}",
            out.cost
        );
        assert_eq!(
            out.decisions,
            vec![
                ServeDecision::Transfer,
                ServeDecision::Cache,
                ServeDecision::Cache
            ]
        );
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(out.schedule.cost(1.6, 1.6).total, 8.96));
    }

    #[test]
    fn long_interval_doubles_as_backbone() {
        // Two requests at s1 (origin) far apart with a remote request in
        // between: the s1 interval should span the whole horizon and source
        // the remote transfer, beating bridge-per-gap.
        // Requests: (1.0, s2), (10.0, s1). μ=1, λ=2.
        let model = CostModelBuilder::new().mu(1.0).lambda(2.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (10.0, 0)]);
        let out = optimal(&trace, &model);
        // Keep s1 copy [0,10] (10μ, serves the 10.0 request locally) and
        // transfer at 1.0 (λ): 10 + 2 = 12. The alternative — transfer both
        // with bridging — costs 1 + 2 (first) + 9 + 2 = 14.
        assert!(approx_eq(out.cost, 12.0));
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn dense_same_server_chain_prefers_caching() {
        let model = CostModelBuilder::new()
            .mu(1.0)
            .lambda(10.0)
            .build()
            .unwrap();
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 0), (2.0, 0), (3.0, 0), (4.0, 0)]);
        let out = optimal(&trace, &model);
        // All local: cache s1 over [0,4].
        assert!(approx_eq(out.cost, 4.0));
        assert!(out.decisions.iter().all(|d| *d == ServeDecision::Cache));
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn high_mu_prefers_transfers() {
        // μ huge relative to λ: every request should be transfer-served with
        // minimal bridging — but bridging is still μ-priced, so the optimum
        // is λ per request plus the unavoidable μ·t_n backbone.
        let model = CostModelBuilder::new().mu(5.0).lambda(1.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (3.0, 1)]);
        let out = optimal(&trace, &model);
        // Bridging everything would cost μ·3 + 3λ = 18, but holding the s2
        // copy over [1,3] both serves the t=3 request locally AND covers the
        // backbone: bridge [0,1] (5) + 2 transfers (2) + interval (10) = 17.
        assert!(approx_eq(out.cost, 17.0));
        assert_eq!(
            out.decisions,
            vec![
                ServeDecision::Transfer,
                ServeDecision::Transfer,
                ServeDecision::Cache
            ]
        );
        out.schedule.validate(&trace).unwrap();
    }

    #[test]
    fn schedule_cost_always_matches_reported_cost() {
        let model = CostModelBuilder::new().mu(2.0).lambda(3.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(
            4,
            &[
                (0.5, 1),
                (0.8, 2),
                (1.1, 3),
                (1.4, 0),
                (2.6, 1),
                (3.2, 1),
                (4.0, 2),
            ],
        );
        let out = optimal(&trace, &model);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(
            out.schedule.cost(model.mu(), model.lambda()).total,
            out.cost
        ));
    }

    #[test]
    fn equal_boundary_short_interval_ties_choose_cache() {
        // μ·len == λ exactly: short by the tolerant comparison.
        let model = CostModelBuilder::new().mu(1.0).lambda(1.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(1, &[(1.0, 0), (2.0, 0)]);
        let out = optimal(&trace, &model);
        assert!(approx_eq(out.cost, 2.0));
        assert!(out.decisions.iter().all(|d| *d == ServeDecision::Cache));
    }
}

//! Exact optimal cost by exhaustive enumeration of cache/transfer decisions.
//!
//! This solver shares the *cost semantics* of the covering reduction (see
//! crate docs) but none of its algorithmics: it simply tries every subset
//! `X` of cache-served requests and evaluates
//! `cost(X) = Σ_{i∈X} μ·len_i + λ·|X̄| + μ·|holes(X)|` directly. It exists
//! to test the shortest-path implementation in [`crate::optimal::optimal`];
//! the structurally independent ground truth is [`crate::statespace`].
//!
//! Exponential in the number of requests that *have* a same-server
//! predecessor; callers should keep `n ≤ ~20`.

use mcs_model::request::{Predecessor, SingleItemTrace};
use mcs_model::CostModel;

/// Maximum number of cacheable requests this solver will enumerate (2^24
/// subsets ≈ 16.8M evaluations).
pub const MAX_CACHEABLE: usize = 24;

/// Exhaustively computes the optimal off-line cost for a single commodity.
///
/// # Panics
///
/// Panics if more than [`MAX_CACHEABLE`] requests have a same-server
/// predecessor — the enumeration would be intractable.
pub fn exhaustive_optimal(trace: &SingleItemTrace, model: &CostModel) -> f64 {
    let n = trace.len();
    if n == 0 {
        return 0.0;
    }
    let mu = model.mu();
    let lambda = model.lambda();

    let mut boundary = Vec::with_capacity(n + 1);
    boundary.push(0.0_f64);
    boundary.extend(trace.points.iter().map(|p| p.time));

    let preds = trace.predecessors();
    // Requests that can be cache-served, with (predecessor node, own node).
    let cacheable: Vec<(usize, usize)> = preds
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predecessor::Origin => Some((0, i + 1)),
            Predecessor::Request(j) => Some((j + 1, i + 1)),
            Predecessor::None => None,
        })
        .collect();
    assert!(
        cacheable.len() <= MAX_CACHEABLE,
        "exhaustive solver limited to {MAX_CACHEABLE} cacheable requests, got {}",
        cacheable.len()
    );

    let gap_len: Vec<f64> = (0..n).map(|j| boundary[j + 1] - boundary[j]).collect();

    let mut best = f64::INFINITY;
    for mask in 0u64..(1u64 << cacheable.len()) {
        // Cache cost for chosen intervals; coverage of gaps.
        let mut covered = vec![false; n];
        let mut cost = 0.0;
        let mut chosen = 0usize;
        for (bit, &(a, b)) in cacheable.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                chosen += 1;
                cost += mu * (boundary[b] - boundary[a]);
                for c in covered.iter_mut().take(b).skip(a) {
                    *c = true;
                }
            }
        }
        // One transfer per non-cache-served request.
        cost += lambda * (n - chosen) as f64;
        // Bridge every uncovered gap.
        for j in 0..n {
            if !covered[j] {
                cost += mu * gap_len[j];
            }
        }
        if cost < best {
            best = cost;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, CostModelBuilder};

    #[test]
    fn empty_is_free() {
        let trace = SingleItemTrace::from_pairs(2, &[]);
        assert_eq!(exhaustive_optimal(&trace, &CostModel::paper_example()), 0.0);
    }

    #[test]
    fn single_remote_request() {
        let trace = SingleItemTrace::from_pairs(2, &[(0.8, 1)]);
        let c = exhaustive_optimal(&trace, &CostModel::paper_example());
        assert!(approx_eq(c, 1.8));
    }

    #[test]
    fn matches_paper_package_subproblem() {
        let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
        let pkg = CostModel::paper_example().scaled_for_package();
        let c = exhaustive_optimal(&trace, &pkg);
        assert!(approx_eq(c, 8.96), "got {c}");
    }

    #[test]
    fn agrees_with_dp_on_a_handcrafted_instance() {
        let model = CostModelBuilder::new().mu(2.0).lambda(3.0).build().unwrap();
        let trace = SingleItemTrace::from_pairs(
            3,
            &[(0.5, 1), (0.9, 2), (1.3, 0), (2.0, 1), (2.2, 2), (3.5, 0)],
        );
        let dp = crate::optimal(&trace, &model).cost;
        let ex = exhaustive_optimal(&trace, &model);
        assert!(approx_eq(dp, ex), "dp={dp} exhaustive={ex}");
    }
}

//! Deterministic, always-on cross-validation of the exact solvers.
//!
//! The full property suite lives in `cross_validation` behind the
//! off-by-default `proptest` feature (the no-network build carries no
//! proptest). This module keeps a seeded slice of the same validation
//! matrix in the default `cargo test` run, fanned out over the instance
//! grid with the shared [`mcs_model::par`] helper:
//!
//! * `optimal` (covering DP) == `exhaustive` == `statespace`
//! * emitted schedules are feasible and re-account to their costs
//! * `optimal <= greedy <= 2·optimal` (the paper's Eq. 7–8)

use crate::exhaustive::exhaustive_optimal;
use crate::statespace::statespace_optimal;
use crate::{greedy::greedy, optimal::optimal};
use mcs_model::par::par_map;
use mcs_model::request::SingleItemTrace;
use mcs_model::rng::Rng;
use mcs_model::{approx_eq, approx_le, CostModel};

fn random_trace(rng: &mut Rng) -> SingleItemTrace {
    let m = rng.gen_range(1u32..=4);
    let n = rng.gen_range(0usize..=9);
    let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..=60)).collect();
    ticks.sort_unstable();
    ticks.dedup();
    let pairs: Vec<(f64, u32)> = ticks
        .iter()
        .map(|&t| (t as f64 / 10.0, rng.gen_range(0u32..m)))
        .collect();
    SingleItemTrace::from_pairs(m, &pairs)
}

fn random_model(rng: &mut Rng) -> CostModel {
    CostModel::new(
        rng.gen_range(1u32..=50) as f64 / 10.0,
        rng.gen_range(1u32..=50) as f64 / 10.0,
        rng.gen_range(1u32..=10) as f64 / 10.0,
    )
    .expect("grid model is valid")
}

#[test]
fn exact_solvers_agree_and_greedy_is_2_competitive() {
    let cases: Vec<u64> = (0..96).collect();
    let failures: Vec<String> = par_map(&cases, |&case| {
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ (case << 8));
        let trace = random_trace(&mut rng);
        let model = random_model(&mut rng);

        let out = optimal(&trace, &model);
        let ex = exhaustive_optimal(&trace, &model);
        let ss = statespace_optimal(&trace, &model);
        let g = greedy(&trace, &model);

        let mut errs = Vec::new();
        if !approx_eq(out.cost, ex) {
            errs.push(format!("case {case}: dp {} != exhaustive {ex}", out.cost));
        }
        if !approx_eq(out.cost, ss) {
            errs.push(format!("case {case}: dp {} != statespace {ss}", out.cost));
        }
        if out.schedule.validate(&trace).is_err() {
            errs.push(format!("case {case}: optimal schedule infeasible"));
        }
        let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
        if !approx_eq(replayed, out.cost) {
            errs.push(format!(
                "case {case}: replayed {replayed} != reported {}",
                out.cost
            ));
        }
        if !approx_le(out.cost, g.cost) || !approx_le(g.cost, 2.0 * out.cost) {
            errs.push(format!(
                "case {case}: greedy {} outside [1, 2]x optimal {}",
                g.cost, out.cost
            ));
        }
        errs.join("; ")
    })
    .into_iter()
    .filter(|e| !e.is_empty())
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

//! An `O(n log n)` variant of the optimal covering DP.
//!
//! [`crate::optimal::optimal`] relaxes every long-interval edge from every node it
//! spans — `O(n²)` worst case, comfortably inside the paper's `O(mn²)`
//! budget but wasteful: the edge cost `μ·len_i − λ` does not depend on the
//! entry node `j`, only on `dist[j]` for `j ∈ [a_i, i]`. So
//!
//! ```text
//! dist[i+1] = min( bridge(dist[i]),  min_{a_i ≤ j ≤ i} dist[j] + μ·len_i − λ )
//! ```
//!
//! and the inner `min` is a *range-minimum query* over the prefix of
//! `dist` already finalised (all of `[a_i, i]` is finalised when node
//! `i+1` is relaxed, since edges only go forward). A point-update/range-min
//! segment tree gives `O(log n)` per request.
//!
//! This module exists both as a faster production path for very long
//! traces and as redundancy: property tests assert exact cost equality
//! with the quadratic solver.

use mcs_model::request::{Predecessor, SingleItemTrace};
use mcs_model::{approx_le, CostModel};

/// A minimal point-update / range-min segment tree over `f64`.
#[derive(Debug, Clone)]
struct MinTree {
    size: usize,
    heap: Vec<f64>,
}

impl MinTree {
    fn new(len: usize) -> Self {
        let size = len.next_power_of_two().max(1);
        MinTree {
            size,
            heap: vec![f64::INFINITY; 2 * size],
        }
    }

    fn set(&mut self, mut i: usize, value: f64) {
        i += self.size;
        self.heap[i] = value;
        while i > 1 {
            i /= 2;
            self.heap[i] = self.heap[2 * i].min(self.heap[2 * i + 1]);
        }
    }

    /// Minimum over the inclusive index range `[lo, hi]`.
    fn min(&self, mut lo: usize, mut hi: usize) -> f64 {
        let mut best = f64::INFINITY;
        lo += self.size;
        hi += self.size + 1;
        while lo < hi {
            if lo & 1 == 1 {
                best = best.min(self.heap[lo]);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                best = best.min(self.heap[hi]);
            }
            lo /= 2;
            hi /= 2;
        }
        best
    }
}

/// Computes the optimal off-line cost in `O(n log n)`.
///
/// Produces the same value as [`crate::optimal::optimal`] (property-tested); does
/// not reconstruct a schedule — use the quadratic solver when the explicit
/// schedule is needed.
pub fn optimal_fast_cost(trace: &SingleItemTrace, model: &CostModel) -> f64 {
    let _span = mcs_obs::span("offline.optimal_fast");
    let n = trace.len();
    if n == 0 {
        return 0.0;
    }
    let mu = model.mu();
    let lambda = model.lambda();

    let mut boundary = Vec::with_capacity(n + 1);
    boundary.push(0.0_f64);
    boundary.extend(trace.points.iter().map(|p| p.time));

    let preds = trace.predecessors();
    let pred_node: Vec<Option<usize>> = preds
        .iter()
        .map(|p| match p {
            Predecessor::Origin => Some(0),
            Predecessor::Request(j) => Some(j + 1),
            Predecessor::None => None,
        })
        .collect();
    let interval_len = |i: usize| boundary[i + 1] - boundary[pred_node[i].expect("has pred")];

    // Classification and short coverage via a difference array (O(n)).
    let mut is_short = vec![false; n];
    let mut cover_diff = vec![0i32; n + 1];
    let mut base = 0.0;
    for i in 0..n {
        match pred_node[i] {
            Some(a) if approx_le(mu * interval_len(i), lambda) => {
                is_short[i] = true;
                base += mu * interval_len(i);
                cover_diff[a] += 1;
                cover_diff[i + 1] -= 1;
            }
            _ => base += lambda,
        }
    }
    let mut short_cover = vec![false; n];
    let mut acc = 0;
    for (j, cov) in short_cover.iter_mut().enumerate() {
        acc += cover_diff[j];
        *cov = acc > 0;
    }

    // Forward sweep with RMQ over finalised dist values.
    let mut tree = MinTree::new(n + 1);
    let mut dist = vec![f64::INFINITY; n + 1];
    dist[0] = 0.0;
    tree.set(0, 0.0);
    for j in 0..n {
        // Long edge into node j+1: request j's interval, entered anywhere
        // in [pred_node[j], j].
        let mut best = f64::INFINITY;
        if let Some(a) = pred_node[j] {
            if !is_short[j] {
                best = tree.min(a, j) + mu * interval_len(j) - lambda;
            }
        }
        // Bridge edge from node j.
        let w = if short_cover[j] {
            0.0
        } else {
            mu * (boundary[j + 1] - boundary[j])
        };
        best = best.min(dist[j] + w);
        dist[j + 1] = best;
        tree.set(j + 1, best);
    }

    base + dist[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;

    #[test]
    fn min_tree_basics() {
        let mut t = MinTree::new(6);
        for (i, v) in [5.0, 3.0, 8.0, 1.0, 9.0, 4.0].iter().enumerate() {
            t.set(i, *v);
        }
        assert_eq!(t.min(0, 5), 1.0);
        assert_eq!(t.min(0, 2), 3.0);
        assert_eq!(t.min(4, 5), 4.0);
        assert_eq!(t.min(2, 2), 8.0);
        t.set(2, 0.5);
        assert_eq!(t.min(0, 5), 0.5);
    }

    #[test]
    fn matches_quadratic_on_the_paper_subproblem() {
        let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
        let pkg = CostModel::paper_example().scaled_for_package();
        assert!(approx_eq(optimal_fast_cost(&trace, &pkg), 8.96));
    }

    #[test]
    fn empty_and_single() {
        let model = CostModel::paper_example();
        assert_eq!(
            optimal_fast_cost(&SingleItemTrace::from_pairs(2, &[]), &model),
            0.0
        );
        assert!(approx_eq(
            optimal_fast_cost(&SingleItemTrace::from_pairs(2, &[(0.8, 1)]), &model),
            1.8
        ));
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use crate::optimal;
        use mcs_model::CostModelBuilder;
        use proptest::prelude::*;

        fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
            (1u32..=6, 0usize..=40).prop_flat_map(|(m, n)| {
                (
                    Just(m),
                    proptest::collection::vec(1u32..=400, n),
                    proptest::collection::vec(0u32..m, n),
                )
                    .prop_map(|(m, mut ticks, servers)| {
                        ticks.sort_unstable();
                        ticks.dedup();
                        let pairs: Vec<(f64, u32)> = ticks
                            .iter()
                            .zip(servers.iter())
                            .map(|(&t, &s)| (t as f64 / 10.0, s))
                            .collect();
                        SingleItemTrace::from_pairs(m, &pairs)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn agrees_with_quadratic_solver(trace in trace_strategy(), mu in 1u32..=40, la in 1u32..=40) {
                let model = CostModelBuilder::new()
                    .mu(mu as f64 / 10.0)
                    .lambda(la as f64 / 10.0)
                    .build()
                    .unwrap();
                let fast = optimal_fast_cost(&trace, &model);
                let slow = optimal(&trace, &model).cost;
                prop_assert!(approx_eq(fast, slow), "fast={fast} slow={slow}");
            }
        }
    }
}

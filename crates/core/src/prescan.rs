//! The efficient-implementation data structures of Section V.
//!
//! A pre-scan pass over the request points builds:
//!
//! * a per-server doubly linked list `Q_j` of the requests made on `s_j`
//!   (initialised with a dummy boundary node — here, the origin placement
//!   on `s_1` plays that role for the origin server and an implicit empty
//!   head elsewhere);
//! * the global index `A[n]` mapping request order to nodes;
//! * the rolling `pLast[m]` array holding, per server, the most recent
//!   request made at or before the current scan position — snapshotted
//!   into every request's own `m`-size pointer array.
//!
//! With these, the service pass can identify for any request `r_i`:
//! its same-server predecessor `r_{p(i)}` (Definition 1) in `O(1)`, and the
//! cache interval candidates that cover `r_i` on every server in `O(m)` —
//! the `{[0, 1.4], [0.5, 2.6], ∅, ∅}` example of Fig. 8.
//!
//! Building takes `O(mn)` time and space, exactly as analysed in
//! Section V-B.

use mcs_model::request::SingleItemTrace;
use mcs_model::{ServerId, TimePoint};

/// Index of a node inside the pre-scan arena. `usize::MAX` is the null link.
type Link = usize;
const NIL: Link = usize::MAX;

/// One request node in the per-server doubly linked lists.
#[derive(Debug, Clone)]
struct Node {
    /// Position in the global request order (`A` index).
    order: usize,
    /// Backward link within this server's list `Q_j`.
    prev_same_server: Link,
    /// Forward link within this server's list `Q_j`.
    next_same_server: Link,
    /// Snapshot of `pLast[m]` when this request was processed: per server,
    /// the most recent request made strictly before this one (by order).
    recent: Vec<Link>,
}

/// The pre-scan structure of Section V-A.
#[derive(Debug, Clone)]
pub struct PreScan {
    servers: u32,
    times: Vec<TimePoint>,
    server_of: Vec<ServerId>,
    nodes: Vec<Node>,
    /// Head (first request) of each server's list.
    heads: Vec<Link>,
    /// `pLast[m]` after the full scan: last request on each server.
    plast: Vec<Link>,
}

impl PreScan {
    /// Builds the structure in one `O(mn)` pass.
    pub fn build(trace: &SingleItemTrace) -> Self {
        let m = trace.servers as usize;
        let n = trace.len();
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        let mut heads = vec![NIL; m];
        let mut plast = vec![NIL; m];
        let mut times = Vec::with_capacity(n);
        let mut server_of = Vec::with_capacity(n);

        for (i, p) in trace.points.iter().enumerate() {
            let s = p.server.index();
            // Snapshot pLast before inserting r_i: "storing the immediate
            // request ahead of the request for each server".
            let recent = plast.clone();
            let prev = plast[s];
            nodes.push(Node {
                order: i,
                prev_same_server: prev,
                next_same_server: NIL,
                recent,
            });
            if prev == NIL {
                heads[s] = i;
            } else {
                nodes[prev].next_same_server = i;
            }
            plast[s] = i;
            times.push(p.time);
            server_of.push(p.server);
        }

        PreScan {
            servers: trace.servers,
            times,
            server_of,
            nodes,
            heads,
            plast,
        }
    }

    /// Number of request nodes `n`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no requests were scanned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `r_{p(i)}` — the most recent request *before* `i` on the same server
    /// (Definition 1), in `O(1)`.
    pub fn prev_same_server(&self, i: usize) -> Option<usize> {
        match self.nodes[i].prev_same_server {
            NIL => None,
            j => Some(self.nodes[j].order),
        }
    }

    /// The most recent request made strictly before `i` on server `q`, in
    /// `O(1)` via request `i`'s pointer array.
    pub fn recent_on(&self, i: usize, q: ServerId) -> Option<usize> {
        match self.nodes[i].recent[q.index()] {
            NIL => None,
            j => Some(j),
        }
    }

    /// Last request on server `q` over the whole scanned sequence
    /// (`pLast[m]` after the scan).
    pub fn last_on(&self, q: ServerId) -> Option<usize> {
        match self.plast[q.index()] {
            NIL => None,
            j => Some(j),
        }
    }

    /// First request on server `q`.
    pub fn first_on(&self, q: ServerId) -> Option<usize> {
        match self.heads[q.index()] {
            NIL => None,
            j => Some(j),
        }
    }

    /// The candidate cache intervals covering request `i`, one per server —
    /// the Fig. 8 query. For each server `q`, the interval runs from the
    /// most recent request on `q` at or before `r_{p(i)}` (the node whose
    /// pointer array is followed) to the next request on `q` after it;
    /// `None` where `q` has no usable copy epoch. For the origin server the
    /// placement at `t = 0` starts the first interval.
    ///
    /// Runs in `O(m)` per request; across the service pass this yields the
    /// paper's `O(mn²)` total with `O(mn)` space.
    pub fn covering_intervals(&self, i: usize) -> Vec<Option<(TimePoint, TimePoint)>> {
        let m = self.servers as usize;
        let mut out = vec![None; m];
        // Anchor node: p(i) if it exists, else r_i itself (its own pointer
        // array still identifies per-server epochs).
        let anchor = self.nodes[i].prev_same_server;
        let recent = if anchor == NIL {
            &self.nodes[i].recent
        } else {
            &self.nodes[anchor].recent
        };
        for q in 0..m {
            let start_node = recent[q];
            let (start, next) = if start_node == NIL {
                if q == ServerId::ORIGIN.index() {
                    // Origin placement epoch: [0, first request on s_1).
                    (0.0, self.heads[q])
                } else {
                    continue;
                }
            } else {
                (
                    self.times[start_node],
                    self.nodes[start_node].next_same_server,
                )
            };
            let end = match next {
                NIL => self.times[i],
                j => self.times[j],
            };
            if end >= start {
                out[q] = Some((start, end));
            }
        }
        out
    }

    /// Naive `O(n)` reference for [`Self::prev_same_server`], used by tests.
    #[doc(hidden)]
    pub fn prev_same_server_naive(&self, i: usize) -> Option<usize> {
        let s = self.server_of[i];
        (0..i).rev().find(|&j| self.server_of[j] == s)
    }

    /// Naive `O(n)` reference for [`Self::recent_on`], used by tests.
    #[doc(hidden)]
    pub fn recent_on_naive(&self, i: usize, q: ServerId) -> Option<usize> {
        (0..i).rev().find(|&j| self.server_of[j] == q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8-event layout of Fig. 8 (the full running-example sequence).
    fn fig8_trace() -> SingleItemTrace {
        SingleItemTrace::from_pairs(
            4,
            &[
                (0.5, 1),
                (0.8, 2),
                (1.1, 3),
                (1.4, 0),
                (2.6, 1),
                (3.2, 1),
                (4.0, 2),
            ],
        )
    }

    #[test]
    fn linked_lists_chain_same_server_requests() {
        let ps = PreScan::build(&fig8_trace());
        assert_eq!(ps.len(), 7);
        // s2 requests: 0.5 (idx 0), 2.6 (idx 4), 3.2 (idx 5).
        assert_eq!(ps.first_on(ServerId(1)), Some(0));
        assert_eq!(ps.last_on(ServerId(1)), Some(5));
        assert_eq!(ps.prev_same_server(5), Some(4));
        assert_eq!(ps.prev_same_server(4), Some(0));
        assert_eq!(ps.prev_same_server(0), None);
        // s3: 0.8 (idx 1), 4.0 (idx 6) — the Fig. 8 walk from A[7] back to 0.8.
        assert_eq!(ps.prev_same_server(6), Some(1));
    }

    #[test]
    fn pointer_arrays_snapshot_most_recent_requests() {
        let ps = PreScan::build(&fig8_trace());
        // At request 4.0 (idx 6): most recent on s1 is 1.4 (idx 3), on s2 is
        // 3.2 (idx 5), on s3 is 0.8 (idx 1), on s4 is 1.1 (idx 2).
        assert_eq!(ps.recent_on(6, ServerId(0)), Some(3));
        assert_eq!(ps.recent_on(6, ServerId(1)), Some(5));
        assert_eq!(ps.recent_on(6, ServerId(2)), Some(1));
        assert_eq!(ps.recent_on(6, ServerId(3)), Some(2));
        // At the first request nothing precedes.
        for q in 0..4u32 {
            assert_eq!(ps.recent_on(0, ServerId(q)), None);
        }
    }

    #[test]
    fn fig8_covering_intervals_for_request_4_0() {
        // The paper's example: for request 4.0 the identified intervals are
        // {[0, 1.4], [0.5, 2.6], ∅, ∅} — anchored at p(i) = 0.8, whose
        // pointer array sees only the 0.5 request on s2 and nothing on
        // s3/s4; the origin epoch [0, 1.4] stands in on s1.
        let ps = PreScan::build(&fig8_trace());
        let iv = ps.covering_intervals(6);
        assert_eq!(iv[0], Some((0.0, 1.4)));
        assert_eq!(iv[1], Some((0.5, 2.6)));
        assert_eq!(iv[2], None);
        assert_eq!(iv[3], None);
    }

    #[test]
    fn matches_naive_reference_on_a_larger_layout() {
        let pts: Vec<(f64, u32)> = (1..=40)
            .map(|i| (i as f64 / 4.0, (i * 7 % 5) as u32))
            .collect();
        let trace = SingleItemTrace::from_pairs(5, &pts);
        let ps = PreScan::build(&trace);
        for i in 0..trace.len() {
            assert_eq!(
                ps.prev_same_server(i),
                ps.prev_same_server_naive(i),
                "p({i})"
            );
            for q in 0..5u32 {
                assert_eq!(
                    ps.recent_on(i, ServerId(q)),
                    ps.recent_on_naive(i, ServerId(q)),
                    "recent({i}, s{q})"
                );
            }
        }
    }

    #[test]
    fn empty_trace() {
        let ps = PreScan::build(&SingleItemTrace::from_pairs(3, &[]));
        assert!(ps.is_empty());
        assert_eq!(ps.last_on(ServerId(0)), None);
        assert_eq!(ps.first_on(ServerId(2)), None);
    }
}

//! The comparison algorithms of the paper's evaluation (Section VI).
//!
//! * **Optimal** (non-packing): every item is served individually by the
//!   optimal off-line algorithm of \[6\] — "this algorithm has the best
//!   results, and can be used as a yardstick". One extreme of Fig. 13
//!   (no packing ability at all).
//! * **Package_Served**: requests containing `d_i`, `d_j` or both are
//!   *always* served by shipping the package, i.e. the optimal off-line
//!   algorithm runs over the union of the pair's requests at package rates
//!   (`2αμ`, `2αλ`). The other extreme of Fig. 13 (maximal packing).
//! * **Greedy** (non-packing): every item served by the simple greedy of
//!   Fig. 4 — the ablation baseline quantifying what the DP contributes.

use mcs_correlation::{greedy_matching, JaccardMatrix};
use mcs_model::{CostModel, ItemId, RequestSeq};
use mcs_offline::{greedy::greedy, optimal};

/// Summary of a baseline run over a full request sequence.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Baseline name (for experiment tables).
    pub name: &'static str,
    /// Total cost across all items.
    pub total_cost: f64,
    /// `Σ|d_i|` — the `ave_cost` denominator.
    pub total_accesses: usize,
    /// Per-item (or per-commodity) cost contributions.
    pub per_item: Vec<(ItemId, f64)>,
}

impl BaselineReport {
    /// Cost per item access.
    pub fn ave_cost(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_cost / self.total_accesses as f64
        }
    }
}

/// The non-packing Optimal baseline: per-item optimal off-line caching.
pub fn optimal_non_packing(seq: &RequestSeq, model: &CostModel) -> BaselineReport {
    let mut per_item = Vec::with_capacity(seq.items() as usize);
    let mut total = 0.0;
    for i in 0..seq.items() {
        let item = ItemId(i);
        let c = optimal(&seq.item_trace(item), model).cost;
        total += c;
        per_item.push((item, c));
    }
    BaselineReport {
        name: "Optimal",
        total_cost: total,
        total_accesses: seq.total_item_accesses(),
        per_item,
    }
}

/// The non-packing simple-greedy baseline (ablation): per-item Fig.-4
/// greedy.
pub fn greedy_non_packing(seq: &RequestSeq, model: &CostModel) -> BaselineReport {
    let mut per_item = Vec::with_capacity(seq.items() as usize);
    let mut total = 0.0;
    for i in 0..seq.items() {
        let item = ItemId(i);
        let c = greedy(&seq.item_trace(item), model).cost;
        total += c;
        per_item.push((item, c));
    }
    BaselineReport {
        name: "Greedy",
        total_cost: total,
        total_accesses: seq.total_item_accesses(),
        per_item,
    }
}

/// Package_Served cost for one pair: the optimal off-line algorithm over
/// the *union* of the pair's requests at package rates.
pub fn package_served_pair(seq: &RequestSeq, a: ItemId, b: ItemId, model: &CostModel) -> f64 {
    let union = seq.union_trace(a, b);
    optimal(&union, &model.scaled_for_package()).cost
}

/// Per-item optimal cost of one pair served individually (the Optimal
/// yardstick restricted to the pair) — `C_1opt + C_2opt`.
pub fn optimal_pair(seq: &RequestSeq, a: ItemId, b: ItemId, model: &CostModel) -> f64 {
    optimal(&seq.item_trace(a), model).cost + optimal(&seq.item_trace(b), model).cost
}

/// The Package_Served baseline over a full sequence: Phase-1 matching at
/// `theta`, then every matched pair is always-packed; leftovers are served
/// individually by the optimal off-line algorithm.
pub fn package_served(seq: &RequestSeq, model: &CostModel, theta: f64) -> BaselineReport {
    let matrix = JaccardMatrix::from_sequence(seq);
    let packing = greedy_matching(&matrix, theta);

    let mut per_item = Vec::new();
    let mut total = 0.0;
    for &(a, b) in &packing.pairs {
        let c = package_served_pair(seq, a, b, model);
        total += c;
        // Attribute the joint cost to the lower item id for reporting.
        per_item.push((a, c));
        per_item.push((b, 0.0));
    }
    for &item in &packing.singletons {
        let c = optimal(&seq.item_trace(item), model).cost;
        total += c;
        per_item.push((item, c));
    }
    per_item.sort_by_key(|&(i, _)| i);
    BaselineReport {
        name: "Package_Served",
        total_cost: total,
        total_accesses: seq.total_item_accesses(),
        per_item,
    }
}

mcs_model::impl_to_json!(BaselineReport {
    name,
    total_cost,
    total_accesses,
    per_item
});

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_baseline_sums_per_item_optima() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let r = optimal_non_packing(&seq, &model);
        assert_eq!(r.per_item.len(), 2);
        assert!(approx_eq(
            r.total_cost,
            r.per_item.iter().map(|&(_, c)| c).sum::<f64>()
        ));
        assert!(approx_eq(
            r.total_cost,
            optimal_pair(&seq, ItemId(0), ItemId(1), &model)
        ));
        assert_eq!(r.total_accesses, 10);
    }

    #[test]
    fn greedy_baseline_is_at_least_optimal() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let o = optimal_non_packing(&seq, &model);
        let g = greedy_non_packing(&seq, &model);
        assert!(g.total_cost >= o.total_cost - 1e-9);
        assert!(g.total_cost <= 2.0 * o.total_cost + 1e-9);
    }

    #[test]
    fn package_served_pair_scales_with_alpha() {
        let seq = paper_sequence();
        // Package_Served cost is linear in 2α (uniform rate scaling).
        let lo = CostModel::new(1.0, 1.0, 0.4).unwrap();
        let hi = CostModel::new(1.0, 1.0, 0.8).unwrap();
        let c_lo = package_served_pair(&seq, ItemId(0), ItemId(1), &lo);
        let c_hi = package_served_pair(&seq, ItemId(0), ItemId(1), &hi);
        assert!(approx_eq(c_hi, 2.0 * c_lo));
    }

    #[test]
    fn tiny_alpha_makes_package_served_win() {
        // With α → small the always-pack extreme must beat per-item optimal
        // (Fig. 13, α = 0.2 panel).
        let seq = paper_sequence();
        let model = CostModel::new(1.0, 1.0, 0.2).unwrap();
        let ps = package_served(&seq, &model, 0.3);
        let opt = optimal_non_packing(&seq, &model);
        assert!(ps.total_cost < opt.total_cost);
    }

    #[test]
    fn large_alpha_makes_package_served_lose() {
        // With α = 1 there is no discount: always-packing pays double rates
        // on the union trace and must lose (Fig. 13, α = 0.8 trend).
        let seq = paper_sequence();
        let model = CostModel::new(1.0, 1.0, 1.0).unwrap();
        let ps = package_served(&seq, &model, 0.3);
        let opt = optimal_non_packing(&seq, &model);
        assert!(ps.total_cost > opt.total_cost);
    }

    #[test]
    fn package_served_with_prohibitive_theta_equals_optimal() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let ps = package_served(&seq, &model, 0.99);
        let opt = optimal_non_packing(&seq, &model);
        assert!(approx_eq(ps.total_cost, opt.total_cost));
    }

    #[test]
    fn reports_expose_ave_cost() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let r = optimal_non_packing(&seq, &model);
        assert!(approx_eq(r.ave_cost(), r.total_cost / 10.0));
    }
}

//! The DP_Greedy two-phase algorithm (Algorithm 1 of the paper).
//!
//! * **Phase 1**: build the Jaccard similarity matrix of the request
//!   sequence (Eq. 4/5) and greedily pack disjoint item pairs whose
//!   similarity strictly exceeds the threshold `θ`.
//! * **Phase 2**: for each packed pair, serve the co-requests with the
//!   optimal off-line algorithm of \[6\] under package rates (`2αμ`, `2αλ`),
//!   and each single-item request with the three-arm greedy of
//!   Observation 2. Unpacked items are served individually by the optimal
//!   off-line algorithm.
//!
//! The headline metric is the paper's `ave_cost` (Algorithm 1, line 50):
//! total cost divided by the total number of item accesses `Σ|d_i|`.

use mcs_correlation::{greedy_matching, JaccardMatrix, Packing};
use mcs_model::{CostModel, ItemId, RequestSeq, Schedule};
use mcs_offline::optimal;

use crate::singleton_greedy::{singleton_greedy, PairItemEvent, SingletonGreedyOutcome};

/// Availability policy of the package-delivery arm (Observation 2's `2αλ`
/// option) in the singleton greedy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackageAvailability {
    /// The paper's Observation 1: the package is available at any time
    /// instance (default, faithful to the paper).
    #[default]
    Always,
    /// Only while the package copy provably exists under our optimal
    /// package schedule — up to the last co-request.
    UntilLastCoRequest,
    /// Never — ablation mode degenerating the three-arm greedy to the
    /// simple two-arm greedy of Fig. 4.
    Never,
}

/// Configuration of a DP_Greedy run.
#[derive(Debug, Clone, Copy)]
pub struct DpGreedyConfig {
    /// The homogeneous cost model `(μ, λ, α)`.
    pub model: CostModel,
    /// Correlation threshold `θ` (the paper's experiments use 0.3).
    pub theta: f64,
    /// Package-arm availability policy.
    pub package_availability: PackageAvailability,
}

impl DpGreedyConfig {
    /// Paper defaults: `θ = 0.3`, faithful package availability.
    pub fn new(model: CostModel) -> Self {
        DpGreedyConfig {
            model,
            theta: 0.3,
            package_availability: PackageAvailability::Always,
        }
    }

    /// Sets the correlation threshold.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Restricts the package arm to the window where the package copy
    /// provably exists.
    pub fn strict(mut self) -> Self {
        self.package_availability = PackageAvailability::UntilLastCoRequest;
        self
    }

    /// Disables the package arm entirely (ablation).
    pub fn without_package_arm(mut self) -> Self {
        self.package_availability = PackageAvailability::Never;
        self
    }
}

/// Cost report for one packed pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// First item (lower id).
    pub a: ItemId,
    /// Second item.
    pub b: ItemId,
    /// Jaccard similarity of the pair over the input sequence.
    pub jaccard: f64,
    /// `C_12` — package DP cost over the co-requests (already includes the
    /// `2α` scaling).
    pub package_cost: f64,
    /// `C_1'` — three-arm greedy cost over `a`-only requests.
    pub a_singleton_cost: f64,
    /// `C_2'` — three-arm greedy cost over `b`-only requests.
    pub b_singleton_cost: f64,
    /// Number of item accesses attributed to this pair: `|d_a| + |d_b|`.
    pub accesses: usize,
    /// The package DP's explicit schedule over the co-requests (validated
    /// against the co-request trace in tests).
    pub package_schedule: Schedule,
    /// Arm-level detail for item `a`.
    pub a_greedy: SingletonGreedyOutcome,
    /// Arm-level detail for item `b`.
    pub b_greedy: SingletonGreedyOutcome,
}

impl PairReport {
    /// `C_12 + C_1' + C_2'`.
    pub fn total(&self) -> f64 {
        self.package_cost + self.a_singleton_cost + self.b_singleton_cost
    }

    /// Per-access cost of this pair — the y-axis of Figs. 11–13.
    pub fn ave_cost(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total() / self.accesses as f64
        }
    }
}

/// Cost report for an unpacked item (served by the optimal off-line
/// algorithm individually).
#[derive(Debug, Clone)]
pub struct SingletonReport {
    /// The item.
    pub item: ItemId,
    /// Optimal off-line cost over the item's requests.
    pub cost: f64,
    /// `|d_i]` — requests containing the item.
    pub accesses: usize,
    /// The optimal schedule (validated in tests).
    pub schedule: Schedule,
}

/// Full DP_Greedy output.
#[derive(Debug, Clone)]
pub struct DpGreedyReport {
    /// Phase 1 outcome.
    pub packing: Packing,
    /// Per-pair Phase 2 reports.
    pub pairs: Vec<PairReport>,
    /// Per-unpacked-item reports.
    pub singletons: Vec<SingletonReport>,
    /// Total cost across all items.
    pub total_cost: f64,
    /// `Σ|d_i|` — the `ave_cost` denominator.
    pub total_accesses: usize,
}

impl DpGreedyReport {
    /// The paper's `ave_cost` metric (Algorithm 1, line 50).
    pub fn ave_cost(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_cost / self.total_accesses as f64
        }
    }
}

/// Builds the merged per-item event list of a packed pair: every request
/// containing `item`, flagged by partner co-occurrence.
fn pair_item_events(seq: &RequestSeq, item: ItemId, partner: ItemId) -> Vec<PairItemEvent> {
    seq.requests()
        .iter()
        .filter(|r| r.contains(item))
        .map(|r| PairItemEvent {
            time: r.time,
            server: r.server,
            is_co: r.contains(partner),
        })
        .collect()
}

/// Runs Phase 2 for one packed pair, independent of Phase 1 (used directly
/// by the per-pair experiments of Figs. 11–13).
pub fn dp_greedy_pair(
    seq: &RequestSeq,
    a: ItemId,
    b: ItemId,
    config: &DpGreedyConfig,
) -> PairReport {
    let pv = seq.pair_view(a, b);
    let co_trace = seq.package_trace(a, b);

    // Package DP over co-requests at package rates — Algorithm 1 line 40.
    let pkg_model = config.model.scaled_for_package();
    let pkg = optimal(&co_trace, &pkg_model);

    // Package availability horizon for the greedy's third arm.
    let horizon = match config.package_availability {
        PackageAvailability::Never => Some(f64::NEG_INFINITY),
        _ if co_trace.is_empty() => {
            // No co-requests → no package exists; the arm is never
            // available even in faithful mode.
            Some(f64::NEG_INFINITY)
        }
        PackageAvailability::UntilLastCoRequest => {
            Some(co_trace.points.last().map_or(f64::NEG_INFINITY, |p| p.time))
        }
        PackageAvailability::Always => None,
    };

    let a_events = pair_item_events(seq, a, b);
    let b_events = pair_item_events(seq, b, a);
    let a_greedy = singleton_greedy(&a_events, &config.model, horizon);
    let b_greedy = singleton_greedy(&b_events, &config.model, horizon);

    PairReport {
        a,
        b,
        jaccard: pv.jaccard(),
        package_cost: pkg.cost,
        a_singleton_cost: a_greedy.cost,
        b_singleton_cost: b_greedy.cost,
        accesses: pv.count_a() + pv.count_b(),
        package_schedule: pkg.schedule,
        a_greedy,
        b_greedy,
    }
}

/// Runs the complete DP_Greedy algorithm (both phases) on a request
/// sequence.
///
/// ```
/// use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
/// use dp_greedy::paper_example::{paper_model, paper_sequence};
///
/// let report = dp_greedy(&paper_sequence(), &DpGreedyConfig::new(paper_model()).with_theta(0.4));
/// assert!((report.total_cost - 14.96).abs() < 1e-9); // the paper's §V-C total
/// assert_eq!(report.total_accesses, 10);
/// ```
pub fn dp_greedy(seq: &RequestSeq, config: &DpGreedyConfig) -> DpGreedyReport {
    // Phase 1.
    let matrix = mcs_obs::time_phase("dpg.phase1.jaccard", || JaccardMatrix::from_sequence(seq));
    let packing = mcs_obs::time_phase("dpg.phase1.match", || {
        greedy_matching(&matrix, config.theta)
    });
    mcs_obs::counter_add("dpg.pairs_packed", packing.pairs.len() as u64);
    mcs_obs::counter_add("dpg.items_unpacked", packing.singletons.len() as u64);

    // Phase 2. Every packed pair's subsequence and every unpacked item's
    // trace is independent, so both loops fan out over worker threads
    // (`mcs_model::par::par_map`; `MCS_THREADS=1` forces serial).
    // par_map preserves input order and the cost totals are summed in
    // that same order afterwards, so the report — schedules, ledger
    // events, and float totals — is bit-identical to a serial run.
    let pairs = {
        let _span = mcs_obs::span("dpg.phase2.pairs");
        mcs_model::par::par_map(&packing.pairs, |&(a, b)| dp_greedy_pair(seq, a, b, config))
    };
    let singletons = {
        let _span = mcs_obs::span("dpg.phase2.singletons");
        mcs_model::par::par_map(&packing.singletons, |&item| {
            let trace = seq.item_trace(item);
            let out = optimal(&trace, &config.model);
            SingletonReport {
                item,
                cost: out.cost,
                accesses: trace.len(),
                schedule: out.schedule,
            }
        })
    };
    let mut total_cost = 0.0;
    for report in &pairs {
        total_cost += report.total();
    }
    for s in &singletons {
        total_cost += s.cost;
    }

    DpGreedyReport {
        packing,
        pairs,
        singletons,
        total_cost,
        total_accesses: seq.total_item_accesses(),
    }
}

mcs_model::impl_to_json!(PairReport {
    a,
    b,
    jaccard,
    package_cost,
    a_singleton_cost,
    b_singleton_cost,
    accesses,
    package_schedule,
    a_greedy,
    b_greedy
});
mcs_model::impl_to_json!(SingletonReport {
    item,
    cost,
    accesses,
    schedule
});
mcs_model::impl_to_json!(DpGreedyReport {
    packing,
    pairs,
    singletons,
    total_cost,
    total_accesses
});

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    fn paper_config() -> DpGreedyConfig {
        DpGreedyConfig::new(CostModel::paper_example()).with_theta(0.4)
    }

    /// The headline check: Section V-C's schedule total of
    /// 8.96 + 3.1 + 2.9 = 14.96.
    #[test]
    fn reproduces_the_running_example_total() {
        let report = dp_greedy(&paper_sequence(), &paper_config());
        assert_eq!(report.packing.pairs, vec![(ItemId(0), ItemId(1))]);
        let pair = &report.pairs[0];
        assert!(approx_eq(pair.jaccard, 3.0 / 7.0));
        assert!(
            approx_eq(pair.package_cost, 8.96),
            "C12 = {}",
            pair.package_cost
        );
        assert!(
            approx_eq(pair.a_singleton_cost, 3.1),
            "C1' = {}",
            pair.a_singleton_cost
        );
        assert!(
            approx_eq(pair.b_singleton_cost, 2.9),
            "C2' = {}",
            pair.b_singleton_cost
        );
        assert!(
            approx_eq(report.total_cost, 14.96),
            "total = {}",
            report.total_cost
        );
        assert_eq!(report.total_accesses, 10);
        assert!(approx_eq(report.ave_cost(), 1.496));
    }

    #[test]
    fn package_schedule_is_feasible() {
        let report = dp_greedy(&paper_sequence(), &paper_config());
        let co = paper_sequence().package_trace(ItemId(0), ItemId(1));
        report.pairs[0].package_schedule.validate(&co).unwrap();
        let pkg_model = CostModel::paper_example().scaled_for_package();
        let replayed = report.pairs[0]
            .package_schedule
            .cost(pkg_model.mu(), pkg_model.lambda())
            .total;
        assert!(approx_eq(replayed, report.pairs[0].package_cost));
    }

    #[test]
    fn high_theta_degenerates_to_per_item_optimal() {
        let seq = paper_sequence();
        let config = paper_config().with_theta(0.99);
        let report = dp_greedy(&seq, &config);
        assert!(report.pairs.is_empty());
        assert_eq!(report.singletons.len(), 2);
        let o0 = optimal(&seq.item_trace(ItemId(0)), &CostModel::paper_example()).cost;
        let o1 = optimal(&seq.item_trace(ItemId(1)), &CostModel::paper_example()).cost;
        assert!(approx_eq(report.total_cost, o0 + o1));
    }

    #[test]
    fn singleton_schedules_are_feasible() {
        let seq = paper_sequence();
        let config = paper_config().with_theta(0.99);
        let report = dp_greedy(&seq, &config);
        for s in &report.singletons {
            let trace = seq.item_trace(s.item);
            s.schedule.validate(&trace).unwrap();
        }
    }

    #[test]
    fn strict_mode_never_cheapens_the_result() {
        let seq = paper_sequence();
        let faithful = dp_greedy(&seq, &paper_config());
        let strict = dp_greedy(&seq, &paper_config().strict());
        assert!(strict.total_cost >= faithful.total_cost - 1e-9);
        // On the running example the last co-request is at 4.0, after every
        // singleton, so strict mode changes nothing.
        assert!(approx_eq(strict.total_cost, faithful.total_cost));
    }

    #[test]
    fn pair_without_corequests_disables_the_package_arm() {
        // d1 and d2 never co-occur; force Phase 2 on them directly.
        let seq = RequestSeqBuilder::new(2, 2)
            .push(1u32, 1.0, [0])
            .push(1u32, 2.0, [1])
            .build()
            .unwrap();
        let report = dp_greedy_pair(
            &seq,
            ItemId(0),
            ItemId(1),
            &DpGreedyConfig::new(CostModel::paper_example()),
        );
        assert_eq!(report.package_cost, 0.0);
        assert!(report
            .a_greedy
            .choices
            .iter()
            .chain(report.b_greedy.choices.iter())
            .all(|c| c.arm != crate::singleton_greedy::Arm::Package));
    }

    #[test]
    fn three_item_sequence_mixes_pairs_and_singletons() {
        // d1,d2 highly correlated; d3 independent.
        let seq = RequestSeqBuilder::new(3, 3)
            .push(0u32, 1.0, [0, 1])
            .push(1u32, 2.0, [0, 1])
            .push(2u32, 3.0, [2])
            .push(0u32, 4.0, [0, 1])
            .push(2u32, 5.0, [2])
            .build()
            .unwrap();
        let config = DpGreedyConfig::new(CostModel::paper_example()).with_theta(0.3);
        let report = dp_greedy(&seq, &config);
        assert_eq!(report.pairs.len(), 1);
        assert_eq!(report.singletons.len(), 1);
        assert_eq!(report.singletons[0].item, ItemId(2));
        assert_eq!(report.total_accesses, 8);
        assert!(report.total_cost > 0.0);
        // Pair accesses + singleton accesses == total.
        assert_eq!(
            report.pairs[0].accesses + report.singletons[0].accesses,
            report.total_accesses
        );
    }

    #[test]
    fn ave_cost_of_empty_sequence_is_zero() {
        let seq = RequestSeqBuilder::new(2, 2).build().unwrap();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(CostModel::paper_example()));
        assert_eq!(report.total_cost, 0.0);
        assert_eq!(report.ave_cost(), 0.0);
    }
}

//! Per-pair decision-ledger derivation for DP_Greedy's Phase 2.
//!
//! The ledger is derived from algorithm *outputs* — the explicit package
//! schedules plus the recorded three-arm choices — rather than logged
//! inline, so the emission is deterministic and the reconciliation
//! `Σ event.cost == total` is a theorem about the outputs, not a logging
//! convention.
//!
//! Whole-sequence ledgers are derived generically by the engine layer
//! (`mcs_engine::Solution::ledger`), which replaced the per-algorithm
//! builders that used to live here (`dp_greedy_ledger` /
//! `optimal_ledger` / `greedy_ledger`). This module keeps only the
//! *per-pair* derivations that the pairwise experiments of Figs. 11 and
//! 13 need — those examine one packed pair in isolation, which no
//! whole-sequence solver run can express.
//!
//! Event taxonomy for a packed pair:
//!
//! * `phase2.package` — the package DP's schedule over the pair's
//!   co-requests, priced at the scaled rates (`2αμ`, `2αλ`); subject is
//!   the pair.
//! * `phase2.serve` — each three-arm greedy decision of Observation 2,
//!   carrying the *real* costs of all three arms at decision time in
//!   `option_costs` (infeasible arms are `∞`).

use mcs_model::{CostModel, ItemId, RequestSeq};
use mcs_obs::{Ledger, LedgerEvent, Subject};
use mcs_offline::ledger::schedule_events;
use mcs_offline::optimal;

use crate::singleton_greedy::{Arm, SingletonGreedyOutcome};
use crate::two_phase::PairReport;

/// The ledger spelling of a three-arm choice (`"cache"` / `"transfer"` /
/// `"package"`, matching `mcs_obs::ledger::OPTION_NAMES`).
pub fn arm_name(arm: Arm) -> &'static str {
    match arm {
        Arm::Cache => "cache",
        Arm::Transfer => "transfer",
        Arm::Package => "package",
    }
}

/// Appends one `phase2.serve` event per recorded three-arm choice.
pub fn serve_events(
    algo: &'static str,
    item: ItemId,
    greedy_out: &SingletonGreedyOutcome,
    out: &mut Vec<LedgerEvent>,
) {
    for c in &greedy_out.choices {
        out.push(LedgerEvent {
            algo,
            phase: "phase2.serve",
            subject: Subject::Item(item.0),
            option_chosen: arm_name(c.arm),
            option_costs: c.option_costs,
            t: c.time,
            cost: c.cost,
        });
    }
}

fn pair_events(pair: &PairReport, model: &CostModel, events: &mut Vec<LedgerEvent>) {
    let pkg = model.scaled_for_package();
    schedule_events(
        "dp_greedy",
        "phase2.package",
        Subject::Pair(pair.a.0, pair.b.0),
        &pair.package_schedule,
        pkg.mu(),
        pkg.lambda(),
        events,
    );
    serve_events("dp_greedy", pair.a, &pair.a_greedy, events);
    serve_events("dp_greedy", pair.b, &pair.b_greedy, events);
}

/// Derives the ledger of one packed pair's Phase-2 run in isolation
/// (used by the per-pair experiments of Figs. 11 and 13). Reconciles
/// with [`PairReport::total`].
pub fn pair_ledger(pair: &PairReport, model: &CostModel) -> Ledger {
    let mut events = Vec::new();
    pair_events(pair, model, &mut events);
    Ledger { events }
}

/// Derives the ledger of the Optimal yardstick restricted to one pair:
/// both items served individually by the per-item optimal solver.
/// Reconciles with [`crate::baselines::optimal_pair`].
pub fn optimal_pair_ledger(seq: &RequestSeq, a: ItemId, b: ItemId, model: &CostModel) -> Ledger {
    let mut events = Vec::new();
    for item in [a, b] {
        schedule_events(
            "optimal",
            "offline",
            Subject::Item(item.0),
            &optimal(&seq.item_trace(item), model).schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
    }
    Ledger { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{paper_model, paper_sequence};
    use crate::two_phase::{dp_greedy, DpGreedyConfig};

    #[test]
    fn pair_ledgers_reconcile_with_pair_reports() {
        let seq = paper_sequence();
        let model = paper_model();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let pair = &report.pairs[0];
        let lp = pair_ledger(pair, &model);
        assert!((lp.total_cost() - pair.total()).abs() < 1e-9);
        let lo = optimal_pair_ledger(&seq, pair.a, pair.b, &model);
        let opt = crate::baselines::optimal_pair(&seq, pair.a, pair.b, &model);
        assert!((lo.total_cost() - opt).abs() < 1e-9);
    }

    #[test]
    fn serve_events_carry_all_three_option_costs() {
        let seq = paper_sequence();
        let model = paper_model();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let ledger = pair_ledger(&report.pairs[0], &model);
        let serves: Vec<_> = ledger
            .events
            .iter()
            .filter(|e| e.phase == "phase2.serve")
            .collect();
        assert!(!serves.is_empty());
        for e in serves {
            // The chosen option's cost must equal the paid cost.
            let idx = mcs_obs::ledger::OPTION_NAMES
                .iter()
                .position(|&n| n == e.option_chosen)
                .unwrap();
            assert!((e.option_costs[idx] - e.cost).abs() < 1e-12);
            // And it must be the minimum of the offered options.
            let min = e.option_costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((min - e.cost).abs() < 1e-12);
        }
    }
}

//! Decision-ledger derivation for DP_Greedy and its baselines.
//!
//! The ledger is derived from algorithm *outputs* — the explicit package
//! and singleton schedules plus the recorded three-arm choices — rather
//! than logged inline, so the emission is deterministic and the
//! reconciliation `Σ event.cost == report.total_cost` is a theorem about
//! the outputs (property-tested at the workspace root in
//! `tests/ledger_reconciliation.rs`), not a logging convention.
//!
//! Event taxonomy for a DP_Greedy run:
//!
//! * `phase2.package` — the package DP's schedule over a pair's
//!   co-requests, priced at the scaled rates (`2αμ`, `2αλ`); subject is
//!   the pair.
//! * `phase2.serve` — each three-arm greedy decision of Observation 2,
//!   carrying the *real* costs of all three arms at decision time in
//!   `option_costs` (infeasible arms are `∞`).
//! * `phase2.unpacked` — the per-item optimal schedules of unpacked
//!   items, at base rates.
//!
//! The `optimal` and `greedy` non-packing baselines re-run their per-item
//! solvers (their [`BaselineReport`]s do not retain schedules) and derive
//! one `offline`-phase event stream per item.

use mcs_model::{CostModel, ItemId, RequestSeq};
use mcs_obs::{Ledger, LedgerEvent, Subject};
use mcs_offline::ledger::schedule_events;
use mcs_offline::{greedy::greedy, optimal};

use crate::baselines::BaselineReport;
use crate::singleton_greedy::{Arm, SingletonGreedyOutcome};
use crate::two_phase::{DpGreedyReport, PairReport};

fn arm_name(arm: Arm) -> &'static str {
    match arm {
        Arm::Cache => "cache",
        Arm::Transfer => "transfer",
        Arm::Package => "package",
    }
}

fn serve_events(
    algo: &'static str,
    item: ItemId,
    greedy_out: &SingletonGreedyOutcome,
    out: &mut Vec<LedgerEvent>,
) {
    for c in &greedy_out.choices {
        out.push(LedgerEvent {
            algo,
            phase: "phase2.serve",
            subject: Subject::Item(item.0),
            option_chosen: arm_name(c.arm),
            option_costs: c.option_costs,
            t: c.time,
            cost: c.cost,
        });
    }
}

/// Derives the full decision ledger of a DP_Greedy run. The summed event
/// cost reconciles with `report.total_cost` within floating-point
/// associativity (≤ 1e-9 on the tested workloads).
pub fn dp_greedy_ledger(report: &DpGreedyReport, model: &CostModel) -> Ledger {
    let mut events = Vec::new();
    for pair in &report.pairs {
        pair_events(pair, model, &mut events);
    }
    for s in &report.singletons {
        schedule_events(
            "dp_greedy",
            "phase2.unpacked",
            Subject::Item(s.item.0),
            &s.schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
    }
    Ledger { events }
}

fn pair_events(pair: &PairReport, model: &CostModel, events: &mut Vec<LedgerEvent>) {
    let pkg = model.scaled_for_package();
    schedule_events(
        "dp_greedy",
        "phase2.package",
        Subject::Pair(pair.a.0, pair.b.0),
        &pair.package_schedule,
        pkg.mu(),
        pkg.lambda(),
        events,
    );
    serve_events("dp_greedy", pair.a, &pair.a_greedy, events);
    serve_events("dp_greedy", pair.b, &pair.b_greedy, events);
}

/// Derives the ledger of one packed pair's Phase-2 run in isolation
/// (used by the per-pair experiments of Figs. 11 and 13). Reconciles
/// with [`PairReport::total`].
pub fn pair_ledger(pair: &PairReport, model: &CostModel) -> Ledger {
    let mut events = Vec::new();
    pair_events(pair, model, &mut events);
    Ledger { events }
}

/// Derives the ledger of the Optimal yardstick restricted to one pair:
/// both items served individually by the per-item optimal solver.
/// Reconciles with [`crate::baselines::optimal_pair`].
pub fn optimal_pair_ledger(seq: &RequestSeq, a: ItemId, b: ItemId, model: &CostModel) -> Ledger {
    let mut events = Vec::new();
    for item in [a, b] {
        schedule_events(
            "optimal",
            "offline",
            Subject::Item(item.0),
            &optimal(&seq.item_trace(item), model).schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
    }
    Ledger { events }
}

/// Derives the ledger of the non-packing `Optimal` baseline by re-running
/// the per-item optimal solver (baseline reports do not retain
/// schedules). Reconciles with [`crate::baselines::optimal_non_packing`].
pub fn optimal_ledger(seq: &RequestSeq, model: &CostModel) -> Ledger {
    per_item_ledger(seq, model, "optimal", |trace, model| {
        optimal(trace, model).schedule
    })
}

/// Derives the ledger of the non-packing simple-greedy baseline by
/// re-running the per-item Fig.-4 greedy. Reconciles with
/// [`crate::baselines::greedy_non_packing`].
pub fn greedy_ledger(seq: &RequestSeq, model: &CostModel) -> Ledger {
    per_item_ledger(seq, model, "greedy", |trace, model| {
        greedy(trace, model).schedule
    })
}

fn per_item_ledger(
    seq: &RequestSeq,
    model: &CostModel,
    algo: &'static str,
    solve: impl Fn(&mcs_model::request::SingleItemTrace, &CostModel) -> mcs_model::Schedule,
) -> Ledger {
    let mut events = Vec::new();
    for i in 0..seq.items() {
        let item = ItemId(i);
        let schedule = solve(&seq.item_trace(item), model);
        schedule_events(
            algo,
            "offline",
            Subject::Item(item.0),
            &schedule,
            model.mu(),
            model.lambda(),
            &mut events,
        );
    }
    Ledger { events }
}

/// Convenience: asserts (within `tol`) that a ledger reconciles with a
/// baseline report's total cost, returning the absolute difference.
pub fn reconcile_baseline(ledger: &Ledger, report: &BaselineReport) -> f64 {
    (ledger.total_cost() - report.total_cost).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{greedy_non_packing, optimal_non_packing};
    use crate::paper_example::{paper_model, paper_sequence};
    use crate::two_phase::{dp_greedy, DpGreedyConfig};

    #[test]
    fn dp_greedy_ledger_reconciles_on_the_paper_example() {
        let seq = paper_sequence();
        let model = paper_model();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let ledger = dp_greedy_ledger(&report, &model);
        assert!(
            (ledger.total_cost() - report.total_cost).abs() < 1e-9,
            "ledger {} vs report {}",
            ledger.total_cost(),
            report.total_cost
        );
        // The paper's 14.96 splits into the three channels completely.
        let b = ledger.breakdown();
        assert!((b.total() - 14.96).abs() < 1e-9);
        assert!(b.package_delivery > 0.0, "running example uses the P arm");
    }

    #[test]
    fn baseline_ledgers_reconcile_on_the_paper_example() {
        let seq = paper_sequence();
        let model = paper_model();
        let o = optimal_non_packing(&seq, &model);
        assert!(reconcile_baseline(&optimal_ledger(&seq, &model), &o) < 1e-9);
        let g = greedy_non_packing(&seq, &model);
        assert!(reconcile_baseline(&greedy_ledger(&seq, &model), &g) < 1e-9);
    }

    #[test]
    fn pair_ledgers_reconcile_with_pair_reports() {
        let seq = paper_sequence();
        let model = paper_model();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let pair = &report.pairs[0];
        let lp = pair_ledger(pair, &model);
        assert!((lp.total_cost() - pair.total()).abs() < 1e-9);
        let lo = optimal_pair_ledger(&seq, pair.a, pair.b, &model);
        let opt = crate::baselines::optimal_pair(&seq, pair.a, pair.b, &model);
        assert!((lo.total_cost() - opt).abs() < 1e-9);
    }

    #[test]
    fn serve_events_carry_all_three_option_costs() {
        let seq = paper_sequence();
        let model = paper_model();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let ledger = dp_greedy_ledger(&report, &model);
        let serves: Vec<_> = ledger
            .events
            .iter()
            .filter(|e| e.phase == "phase2.serve")
            .collect();
        assert!(!serves.is_empty());
        for e in serves {
            // The chosen option's cost must equal the paid cost.
            let idx = mcs_obs::ledger::OPTION_NAMES
                .iter()
                .position(|&n| n == e.option_chosen)
                .unwrap();
            assert!((e.option_costs[idx] - e.cost).abs() < 1e-12);
            // And it must be the minimum of the offered options.
            let min = e.option_costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((min - e.cost).abs() < 1e-12);
        }
    }
}

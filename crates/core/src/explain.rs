//! Human-readable decision traces: *why* DP_Greedy served each request the
//! way it did.
//!
//! Operators debugging a cost regression need more than a total — they
//! need the per-request story: which arm won, what the alternatives would
//! have cost, where the package DP placed cache intervals. This module
//! renders that narrative for a packed pair, line by line, in time order.

use std::fmt::Write as _;

use mcs_model::{ItemId, RequestSeq};
use mcs_offline::optimal;

use crate::singleton_greedy::Arm;
use crate::two_phase::{dp_greedy_pair, DpGreedyConfig, PairReport};

/// One explained serving decision.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Request time.
    pub time: f64,
    /// Human-readable line.
    pub line: String,
}

/// Explains every serving decision Phase 2 makes for the pair `(a, b)`.
///
/// Returns the pair report together with the time-ordered explanation
/// lines (one per request touching the pair).
pub fn explain_pair(
    seq: &RequestSeq,
    a: ItemId,
    b: ItemId,
    config: &DpGreedyConfig,
) -> (PairReport, Vec<Explanation>) {
    let report = dp_greedy_pair(seq, a, b, config);
    let mut lines = Vec::new();

    // Package DP decisions over co-requests.
    let co_trace = seq.package_trace(a, b);
    let pkg_model = config.model.scaled_for_package();
    let pkg = optimal(&co_trace, &pkg_model);
    for (p, d) in co_trace.points.iter().zip(&pkg.decisions) {
        let how = match d {
            mcs_offline::ServeDecision::Cache => "extends the package cache interval",
            mcs_offline::ServeDecision::Transfer => "receives a package transfer",
        };
        lines.push(Explanation {
            time: p.time,
            line: format!(
                "t={:>6.2}  co-request ({}, {}) at {}: {how} (package rates 2αμ={:.2}, 2αλ={:.2})",
                p.time,
                a,
                b,
                p.server,
                pkg_model.mu(),
                pkg_model.lambda(),
            ),
        });
    }

    // Singleton greedy arms for each item.
    for (item, greedy) in [(a, &report.a_greedy), (b, &report.b_greedy)] {
        let singles: Vec<&mcs_model::Request> = seq
            .requests()
            .iter()
            .filter(|r| r.contains(item) && !(r.contains(a) && r.contains(b)))
            .collect();
        for choice in &greedy.choices {
            // choice.event_index indexes the merged event list (singles +
            // co-requests); map back via position among the item's events.
            let ev_requests: Vec<&mcs_model::Request> =
                seq.requests().iter().filter(|r| r.contains(item)).collect();
            let r = ev_requests[choice.event_index];
            debug_assert!(singles.iter().any(|s| std::ptr::eq(*s, r)));
            let how = match choice.arm {
                Arm::Cache => format!(
                    "cached locally from the previous {item} copy at {} (D arm)",
                    r.server
                ),
                Arm::Transfer => "transferred from the most recent copy (Tr arm)".into(),
                Arm::Package => format!(
                    "served by shipping the whole package at 2αλ={:.2} (P arm)",
                    config.model.package_delivery_cost()
                ),
            };
            lines.push(Explanation {
                time: r.time,
                line: format!(
                    "t={:>6.2}  singleton {item} at {}: {how}, paid {:.2}",
                    r.time, r.server, choice.cost
                ),
            });
        }
    }

    lines.sort_by(|x, y| x.time.partial_cmp(&y.time).expect("finite times"));
    (report, lines)
}

/// Renders the full explanation as one string (header + lines + totals).
pub fn explain_pair_text(
    seq: &RequestSeq,
    a: ItemId,
    b: ItemId,
    config: &DpGreedyConfig,
) -> String {
    let (report, lines) = explain_pair(seq, a, b, config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DP_Greedy decisions for pair ({a}, {b}) — J = {:.4}, θ = {}, α = {}",
        report.jaccard,
        config.theta,
        config.model.alpha()
    );
    for l in &lines {
        let _ = writeln!(out, "{}", l.line);
    }
    let _ = writeln!(
        out,
        "totals: C12 = {:.2}, C1' = {:.2}, C2' = {:.2} → {:.2} over {} accesses (ave {:.4})",
        report.package_cost,
        report.a_singleton_cost,
        report.b_singleton_cost,
        report.total(),
        report.accesses,
        report.ave_cost()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{paper_model, paper_sequence};

    fn config() -> DpGreedyConfig {
        DpGreedyConfig::new(paper_model()).with_theta(0.4)
    }

    #[test]
    fn explains_every_request_of_the_running_example() {
        let seq = paper_sequence();
        let (report, lines) = explain_pair(&seq, ItemId(0), ItemId(1), &config());
        // 3 co-requests + 2 d1 singles + 2 d2 singles = 7 lines.
        assert_eq!(lines.len(), 7);
        // Time-ordered.
        for w in lines.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!((report.total() - 14.96).abs() < 1e-9);
    }

    #[test]
    fn narrative_matches_the_papers_arms() {
        let seq = paper_sequence();
        let text = explain_pair_text(&seq, ItemId(0), ItemId(1), &config());
        // The 0.5 singleton transfers; the 2.6 and 3.2 singletons use the
        // package arm (Section V-C steps 5–6).
        assert!(text.contains("t=  0.50"), "{text}");
        let package_lines = text.matches("P arm").count();
        assert_eq!(package_lines, 2, "{text}");
        let transfer_lines = text.matches("Tr arm").count();
        assert_eq!(transfer_lines, 2, "{text}");
        assert!(text.contains("totals: C12 = 8.96"), "{text}");
    }

    #[test]
    fn co_request_lines_name_the_package_rates() {
        let seq = paper_sequence();
        let text = explain_pair_text(&seq, ItemId(0), ItemId(1), &config());
        assert!(text.contains("2αμ=1.60"));
        assert_eq!(text.matches("co-request").count(), 3);
    }
}

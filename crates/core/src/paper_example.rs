//! The complete running example of Section V-C, as executable constants.
//!
//! The request sequence is reconstructed from the paper's worked
//! arithmetic and the Fig. 8 walk-through (the `A[7]` pointer chase puts
//! the `0.8` and `4.0` requests on the same server; the `D(1.4)` term
//! anchors the `1.4` package request on the origin server; the `D(2.6)`
//! term puts both `d_1` singletons on one server; `D(3.2) = +∞` puts the
//! second `d_2` singleton on a server with no prior `d_2` copy):
//!
//! | t    | server | items        |
//! |------|--------|--------------|
//! | 0.5  | s2     | d1           |
//! | 0.8  | s3     | d1, d2 (pkg) |
//! | 1.1  | s4     | d2           |
//! | 1.4  | s1     | d1, d2 (pkg) |
//! | 2.6  | s2     | d1           |
//! | 3.2  | s2     | d2           |
//! | 4.0  | s3     | d1, d2 (pkg) |
//!
//! With `θ = 0.4`, `μ = λ = 1`, `α = 0.8` the paper derives
//! `J(d1, d2) = 3/7 > θ`, package cost `C(4.0) = 8.96`, greedy costs
//! `3.1` (d1) and `2.9` (d2), total **14.96**. All of these — including
//! the intermediate prefix costs `C(0.8) = 2.88` and `C(1.4) = 3.84` of
//! the paper's printed recurrence — are reproduced exactly by this crate
//! and asserted in the tests below.

use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

use crate::two_phase::{dp_greedy, DpGreedyConfig, DpGreedyReport};

/// The paper's threshold for the running example.
pub const THETA: f64 = 0.4;

/// The paper's expected package-DP cost (`C(4.0)`).
pub const EXPECTED_PACKAGE_COST: f64 = 8.96;

/// The paper's expected greedy cost for `d_1`.
pub const EXPECTED_D1_COST: f64 = 3.1;

/// The paper's expected greedy cost for `d_2`.
pub const EXPECTED_D2_COST: f64 = 2.9;

/// The paper's expected schedule total.
pub const EXPECTED_TOTAL: f64 = 14.96;

/// Prefix costs of the paper's printed package recurrence:
/// `C(0.8) = 2.88`, `C(1.4) = 3.84`, `C(4.0) = 8.96`.
pub const EXPECTED_PACKAGE_PREFIXES: [f64; 3] = [2.88, 3.84, 8.96];

/// Builds the running example's request sequence.
pub fn paper_sequence() -> RequestSeq {
    RequestSeqBuilder::new(4, 2)
        .push(1u32, 0.5, [0])
        .push(2u32, 0.8, [0, 1])
        .push(3u32, 1.1, [1])
        .push(0u32, 1.4, [0, 1])
        .push(1u32, 2.6, [0])
        .push(1u32, 3.2, [1])
        .push(2u32, 4.0, [0, 1])
        .build()
        .expect("the paper sequence is valid")
}

/// The running example's cost model (`μ = 1`, `λ = 1`, `α = 0.8`).
pub fn paper_model() -> CostModel {
    CostModel::paper_example()
}

/// Runs DP_Greedy exactly as Section V-C does and returns the full report.
pub fn paper_report() -> DpGreedyReport {
    let config = DpGreedyConfig::new(paper_model()).with_theta(THETA);
    dp_greedy(&paper_sequence(), &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;
    use mcs_model::request::SingleItemTrace;
    use mcs_offline::optimal;

    #[test]
    fn full_example_total_is_14_96() {
        let r = paper_report();
        assert!(
            approx_eq(r.total_cost, EXPECTED_TOTAL),
            "total={}",
            r.total_cost
        );
        let pair = &r.pairs[0];
        assert!(approx_eq(pair.package_cost, EXPECTED_PACKAGE_COST));
        assert!(approx_eq(pair.a_singleton_cost, EXPECTED_D1_COST));
        assert!(approx_eq(pair.b_singleton_cost, EXPECTED_D2_COST));
    }

    #[test]
    fn printed_recurrence_prefixes_match_prefix_optima() {
        // The paper prints cumulative package costs C(0.8), C(1.4), C(4.0);
        // each equals the optimal cost of the corresponding co-request
        // prefix under package rates.
        let pkg_model = paper_model().scaled_for_package();
        let co_points = [(0.8, 2u32), (1.4, 0u32), (4.0, 2u32)];
        for (len, expected) in EXPECTED_PACKAGE_PREFIXES.iter().enumerate() {
            let trace = SingleItemTrace::from_pairs(4, &co_points[..=len]);
            let c = optimal(&trace, &pkg_model).cost;
            assert!(
                approx_eq(c, *expected),
                "prefix {} expected {expected}, got {c}",
                len + 1
            );
        }
    }

    #[test]
    fn ave_cost_matches_algorithm_1_line_50() {
        let r = paper_report();
        assert_eq!(r.total_accesses, 10);
        assert!(approx_eq(r.ave_cost(), EXPECTED_TOTAL / 10.0));
    }
}

//! Multi-item packages — the extension the paper sketches as future work
//! ("it can be naturally extended to the case where multiple data items
//! could be packed").
//!
//! Phase 1 generalises to agglomerative grouping
//! ([`mcs_correlation::grouping`]); Phase 2 generalises per group `G` of
//! size `g ≥ 2` with the Table-II rates `α·g·μ` / `α·g·λ`:
//!
//! * requests containing **all** of `G` are served by the optimal off-line
//!   DP at group rates (the direct analogue of Algorithm 1 line 40);
//! * a request containing a proper non-empty subset `S ⊂ G` is served by
//!   the cheaper of (a) each item individually via its two greedy arms
//!   (cache from `r_{p(i)}` / transfer from `r_{i−1}`), or (b) **one**
//!   shared group delivery at `α·g·λ` that drops the whole package at the
//!   server and serves every item of `S` at once — the generalisation of
//!   Observation 2's third arm (for `|S| = 1` and `g = 2` this reduces
//!   exactly to the paper's three-arm greedy, which the tests assert).
//!
//! Groups of size 1 are served by the optimal off-line algorithm
//! individually, as in the pairwise algorithm.

use std::collections::HashMap;

use mcs_correlation::{agglomerative_grouping, JaccardMatrix, PackageSet};
use mcs_model::par::par_map;
use mcs_model::{CostModel, ItemId, RequestSeq, Schedule, ServerId, TimePoint};
use mcs_offline::optimal;

/// Configuration of a multi-item DP_Greedy run.
#[derive(Debug, Clone, Copy)]
pub struct MultiItemConfig {
    /// Cost model `(μ, λ, α)`.
    pub model: CostModel,
    /// Grouping threshold (average-linkage Jaccard).
    pub theta: f64,
    /// Maximum package size (`2` recovers the paper's algorithm shape;
    /// `usize::MAX` for unbounded).
    pub max_group: usize,
}

impl MultiItemConfig {
    /// Defaults: `θ = 0.3`, unbounded group size.
    pub fn new(model: CostModel) -> Self {
        MultiItemConfig {
            model,
            theta: 0.3,
            max_group: usize::MAX,
        }
    }

    /// Caps the package size.
    pub fn with_max_group(mut self, max_group: usize) -> Self {
        self.max_group = max_group;
        self
    }

    /// Sets the grouping threshold.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }
}

/// Cost report for one multi-item group.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Group members, ascending.
    pub items: Vec<ItemId>,
    /// DP cost over full-group co-requests at `α·g` rates.
    pub package_cost: f64,
    /// Greedy cost over partial-subset requests.
    pub partial_cost: f64,
    /// Number of group deliveries chosen by the greedy.
    pub group_deliveries: usize,
    /// Item accesses attributed to this group.
    pub accesses: usize,
    /// The group DP's schedule over full co-requests.
    pub package_schedule: Schedule,
}

impl GroupReport {
    /// Total group cost.
    pub fn total(&self) -> f64 {
        self.package_cost + self.partial_cost
    }
}

/// Full multi-item report.
#[derive(Debug, Clone)]
pub struct MultiItemReport {
    /// The unified Phase-1 outcome the costs were computed under.
    pub packages: PackageSet,
    /// Reports for packages of size ≥ 2.
    pub groups: Vec<GroupReport>,
    /// Per-unpacked-item optimal costs.
    pub singletons: Vec<(ItemId, f64)>,
    /// Total cost.
    pub total_cost: f64,
    /// `Σ|d_i|`.
    pub total_accesses: usize,
}

impl MultiItemReport {
    /// The `ave_cost` metric.
    pub fn ave_cost(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_cost / self.total_accesses as f64
        }
    }
}

/// Serves one group's requests (Phase 2, group-generalised).
fn serve_group(seq: &RequestSeq, group: &[ItemId], model: &CostModel) -> GroupReport {
    let g = group.len() as u32;
    let group_model = model.scaled_for_package_k(g);
    let delivery = group_model.lambda(); // α·g·λ per shipment
    let mu = model.mu();
    let lambda = model.lambda();

    // Full-group co-requests → DP at group rates.
    let co_points: Vec<(TimePoint, ServerId)> = seq
        .requests()
        .iter()
        .filter(|r| group.iter().all(|&d| r.contains(d)))
        .map(|r| (r.time, r.server))
        .collect();
    let co_trace = mcs_model::request::SingleItemTrace {
        servers: seq.servers(),
        points: co_points
            .iter()
            .map(|&(time, server)| mcs_model::request::TracePoint { time, server })
            .collect(),
    };
    let pkg = optimal(&co_trace, &group_model);
    let package_available = !co_trace.is_empty();

    // Partial-subset requests → request-level greedy.
    let mut last_at: HashMap<(ItemId, ServerId), TimePoint> = HashMap::new();
    let mut last_any: HashMap<ItemId, TimePoint> = HashMap::new();
    for &d in group {
        last_at.insert((d, ServerId::ORIGIN), 0.0);
        last_any.insert(d, 0.0);
    }

    let mut partial_cost = 0.0;
    let mut group_deliveries = 0usize;
    let mut accesses = 0usize;

    for r in seq.requests() {
        let in_group: Vec<ItemId> = group.iter().copied().filter(|&d| r.contains(d)).collect();
        if in_group.is_empty() {
            continue;
        }
        accesses += in_group.len();
        let full = in_group.len() == group.len();
        if !full {
            // Individual arms per item of S.
            let individual: f64 = in_group
                .iter()
                .map(|&d| {
                    let d_arm = last_at
                        .get(&(d, r.server))
                        .map_or(f64::INFINITY, |&tp| mu * (r.time - tp));
                    let tr_arm = lambda + mu * (r.time - last_any[&d]);
                    d_arm.min(tr_arm)
                })
                .sum();
            // One shared group delivery serves every item of S.
            if package_available && delivery < individual {
                partial_cost += delivery;
                group_deliveries += 1;
            } else {
                partial_cost += individual;
            }
        }
        // Either way, every requested group item now has a copy here.
        for &d in &in_group {
            last_at.insert((d, r.server), r.time);
            last_any.insert(d, r.time);
        }
    }

    GroupReport {
        items: group.to_vec(),
        package_cost: pkg.cost,
        partial_cost,
        group_deliveries,
        accesses,
        package_schedule: pkg.schedule,
    }
}

/// Phase 2 over an already-computed [`PackageSet`] — the package-generic
/// serving core shared by [`dp_greedy_multi`] and the engine's `dpg_k`
/// solver. Packages and singletons are each served independently across
/// worker threads via [`par_map`] (order-preserving, so reports and the
/// in-order cost sums are deterministic for any `MCS_THREADS`).
pub fn dp_greedy_packages(
    seq: &RequestSeq,
    packages: &PackageSet,
    model: &CostModel,
) -> MultiItemReport {
    let groups: Vec<GroupReport> = par_map(&packages.packages, |g| serve_group(seq, g, model));
    let singletons: Vec<(ItemId, f64)> = par_map(&packages.singletons, |&item| {
        (item, optimal(&seq.item_trace(item), model).cost)
    });
    let total_cost = groups.iter().map(GroupReport::total).sum::<f64>()
        + singletons.iter().map(|&(_, c)| c).sum::<f64>();
    MultiItemReport {
        packages: packages.clone(),
        groups,
        singletons,
        total_cost,
        total_accesses: seq.total_item_accesses(),
    }
}

/// Runs the multi-item DP_Greedy: dense agglomerative Phase 1 followed by
/// the package-generic Phase 2.
pub fn dp_greedy_multi(seq: &RequestSeq, config: &MultiItemConfig) -> MultiItemReport {
    let matrix = JaccardMatrix::from_sequence(seq);
    let packages = agglomerative_grouping(&matrix, config.theta, config.max_group);
    dp_greedy_packages(seq, &packages, &config.model)
}

mcs_model::impl_to_json!(GroupReport {
    items,
    package_cost,
    partial_cost,
    group_deliveries,
    accesses,
    package_schedule
});
mcs_model::impl_to_json!(MultiItemReport {
    packages,
    groups,
    singletons,
    total_cost,
    total_accesses
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_phase::{dp_greedy, DpGreedyConfig};
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    /// A bundle workload: items {0,1,2} always together, item 3 alone.
    fn bundle_sequence() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(4, 4);
        let mut t = 0.0;
        for &srv in &[1u32, 2, 3, 1, 2, 0, 3, 2] {
            t += 0.5;
            b = b.push(srv, t, [0, 1, 2]);
        }
        for &srv in &[3u32, 1] {
            t += 0.9;
            b = b.push(srv, t, [3]);
        }
        // A few partial accesses of the bundle.
        for &(srv, it) in &[(2u32, 0u32), (3, 1), (1, 2)] {
            t += 0.4;
            b = b.push(srv, t, [it]);
        }
        b.build().unwrap()
    }

    #[test]
    fn max_group_two_matches_pairwise_dp_greedy_on_the_paper_example() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let multi = dp_greedy_multi(
            &seq,
            &MultiItemConfig::new(model)
                .with_theta(0.4)
                .with_max_group(2),
        );
        let pair = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        assert!(
            approx_eq(multi.total_cost, pair.total_cost),
            "multi {} vs pairwise {}",
            multi.total_cost,
            pair.total_cost
        );
        assert!(approx_eq(multi.total_cost, 14.96));
    }

    #[test]
    fn bundle_is_grouped_as_a_trio() {
        let seq = bundle_sequence();
        let model = CostModel::new(1.0, 1.0, 0.6).unwrap();
        let report = dp_greedy_multi(&seq, &MultiItemConfig::new(model));
        assert_eq!(report.groups.len(), 1);
        assert_eq!(
            report.groups[0].items,
            vec![ItemId(0), ItemId(1), ItemId(2)]
        );
        assert_eq!(report.singletons.len(), 1);
        assert_eq!(report.singletons[0].0, ItemId(3));
    }

    #[test]
    fn trio_package_beats_pairwise_on_low_alpha_bundles() {
        // With a strong discount, shipping the trio as one package must
        // beat the best the pairwise algorithm can do (it can pack at most
        // two of the three correlated items).
        let seq = bundle_sequence();
        let model = CostModel::new(1.0, 1.0, 0.4).unwrap();
        let multi = dp_greedy_multi(&seq, &MultiItemConfig::new(model));
        let pair = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
        assert!(
            multi.total_cost < pair.total_cost + 1e-9,
            "multi {} should beat pairwise {}",
            multi.total_cost,
            pair.total_cost
        );
    }

    #[test]
    fn group_schedule_is_feasible() {
        let seq = bundle_sequence();
        let model = CostModel::new(1.0, 1.0, 0.6).unwrap();
        let report = dp_greedy_multi(&seq, &MultiItemConfig::new(model));
        let group = &report.groups[0];
        // Rebuild the co-trace and validate.
        let co: Vec<(f64, u32)> = seq
            .requests()
            .iter()
            .filter(|r| group.items.iter().all(|&d| r.contains(d)))
            .map(|r| (r.time, r.server.0))
            .collect();
        let trace = mcs_model::request::SingleItemTrace::from_pairs(seq.servers(), &co);
        group.package_schedule.validate(&trace).unwrap();
    }

    #[test]
    fn shared_delivery_is_charged_once_for_multi_item_partials() {
        // A request for two of three bundle items far from any copy: one
        // α·g·λ delivery must beat two individual transfers when α is low.
        let mut b = RequestSeqBuilder::new(3, 3);
        b = b.push(1u32, 1.0, [0, 1, 2]); // establish the package at s2
        b = b.push(2u32, 10.0, [0, 1]); // partial far away
        let seq = b.build().unwrap();
        let model = CostModel::new(1.0, 1.0, 0.3).unwrap();
        let report = dp_greedy_multi(&seq, &MultiItemConfig::new(model).with_theta(0.2));
        let group = &report.groups[0];
        assert_eq!(group.group_deliveries, 1);
        // Delivery cost α·3·λ = 0.9 vs 2 transfers (2·(9μ... the transfer
        // arm is λ + μ·Δt each, far larger).
        assert!(approx_eq(group.partial_cost, 0.9));
    }

    #[test]
    fn accesses_are_conserved() {
        let seq = bundle_sequence();
        let model = CostModel::new(1.0, 1.0, 0.6).unwrap();
        let report = dp_greedy_multi(&seq, &MultiItemConfig::new(model));
        let attributed: usize = report.groups.iter().map(|g| g.accesses).sum::<usize>()
            + report
                .singletons
                .iter()
                .map(|&(d, _)| seq.count_containing(d))
                .sum::<usize>();
        assert_eq!(attributed, report.total_accesses);
    }
}

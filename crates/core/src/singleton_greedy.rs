//! The three-arm greedy of Observation 2 — Phase 2's treatment of requests
//! that access exactly **one** item of a packed pair.
//!
//! For such a request `r_i` (item `d` of package `(d, d')`), three serving
//! options compete (Algorithm 1, line 42):
//!
//! * **Cache** from `r_{p(i)}` — the most recent request containing `d` at
//!   the same server (or the origin placement for `s_1`): `μ·(t_i − t_{p(i)})`.
//! * **Transfer** from `r_{i−1}` — the most recent request containing `d`
//!   anywhere (package requests count; unpacking is free):
//!   `λ + μ·(t_i − t_{i−1})`.
//! * **Package delivery** — ship the whole package from its (always
//!   available, per Observation 1) live copy: a constant `2αλ`.
//!
//! The paper treats the package as available at *any* time instance. Our
//! optimal package schedule only keeps a copy alive until the last
//! co-request, so a `strict` mode is provided that disables the package arm
//! beyond that horizon; the default is faithful to the paper. See
//! `EXPERIMENTS.md` (E1 notes).

use std::collections::HashMap;

use mcs_model::{CostModel, ServerId, TimePoint};

/// One event in the merged per-item view of a packed pair: every request
/// containing the item, flagged by whether the partner item co-occurs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairItemEvent {
    /// Request time.
    pub time: TimePoint,
    /// Requesting server.
    pub server: ServerId,
    /// True if this is a co-request (both pair items) — served by the
    /// package DP, but still advancing `r_{p(i)}` / `r_{i−1}` trackers.
    pub is_co: bool,
}

/// Which arm served a singleton request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Local cache from `r_{p(i)}`.
    Cache,
    /// Transfer from `r_{i−1}` with bridging.
    Transfer,
    /// Package delivery at `2αλ`.
    Package,
}

/// The serving record of one singleton request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmChoice {
    /// Index into the event list.
    pub event_index: usize,
    /// Request time of the served event.
    pub time: TimePoint,
    /// Winning arm.
    pub arm: Arm,
    /// Cost paid.
    pub cost: f64,
    /// Cost of each arm at decision time, `[Cache, Transfer, Package]`;
    /// `f64::INFINITY` marks an infeasible arm. Feeds the decision
    /// ledger's `option_costs`.
    pub option_costs: [f64; 3],
}

/// Outcome of the singleton greedy over one item of a packed pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SingletonGreedyOutcome {
    /// Total cost over the singleton requests (co-requests cost nothing
    /// here; they are billed by the package DP).
    pub cost: f64,
    /// Per-singleton choices in time order.
    pub choices: Vec<ArmChoice>,
    /// Counts of `[Cache, Transfer, Package]` wins.
    pub arm_counts: [usize; 3],
}

/// Runs the three-arm greedy over the merged event list of one pair item.
///
/// `package_horizon`: `None` reproduces the paper exactly (the package arm
/// is always available); `Some(t)` restricts package deliveries to
/// `time ≤ t` — the strict mode where the package copy provably exists.
pub fn singleton_greedy(
    events: &[PairItemEvent],
    model: &CostModel,
    package_horizon: Option<TimePoint>,
) -> SingletonGreedyOutcome {
    let mu = model.mu();
    let lambda = model.lambda();
    let package_arm_base = model.package_delivery_cost();

    // Item copy history: the origin placement seeds both trackers.
    let mut last_at: HashMap<ServerId, TimePoint> = HashMap::new();
    last_at.insert(ServerId::ORIGIN, 0.0);
    let mut last_any: TimePoint = 0.0;

    let mut cost = 0.0;
    let mut choices = Vec::new();
    let mut arm_counts = [0usize; 3];

    for (i, ev) in events.iter().enumerate() {
        if !ev.is_co {
            let d_arm = last_at
                .get(&ev.server)
                .map_or(f64::INFINITY, |&tp| mu * (ev.time - tp));
            let tr_arm = lambda + mu * (ev.time - last_any);
            let p_arm = match package_horizon {
                Some(h) if ev.time > h => f64::INFINITY,
                _ => package_arm_base,
            };

            // Tie order D, Tr, P: prefer the arms in the order the paper
            // lists them.
            let (arm, paid) = if d_arm <= tr_arm && d_arm <= p_arm {
                (Arm::Cache, d_arm)
            } else if tr_arm <= p_arm {
                (Arm::Transfer, tr_arm)
            } else {
                (Arm::Package, p_arm)
            };
            debug_assert!(paid.is_finite(), "no feasible arm for event {i}");
            cost += paid;
            arm_counts[match arm {
                Arm::Cache => 0,
                Arm::Transfer => 1,
                Arm::Package => 2,
            }] += 1;
            choices.push(ArmChoice {
                event_index: i,
                time: ev.time,
                arm,
                cost: paid,
                option_costs: [d_arm, tr_arm, p_arm],
            });
        }
        // Every request containing the item (single or co) leaves a copy at
        // its server and becomes the new r_{i−1}.
        last_at.insert(ev.server, ev.time);
        last_any = ev.time;
    }

    SingletonGreedyOutcome {
        cost,
        choices,
        arm_counts,
    }
}

impl mcs_model::json::ToJson for Arm {
    fn to_json(&self) -> mcs_model::json::Json {
        mcs_model::json::Json::Str(
            match self {
                Arm::Cache => "Cache",
                Arm::Transfer => "Transfer",
                Arm::Package => "Package",
            }
            .to_string(),
        )
    }
}

mcs_model::impl_to_json!(ArmChoice {
    event_index,
    time,
    arm,
    cost,
    option_costs
});
mcs_model::impl_to_json!(SingletonGreedyOutcome {
    cost,
    choices,
    arm_counts
});

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;

    fn ev(time: f64, server: u32, is_co: bool) -> PairItemEvent {
        PairItemEvent {
            time,
            server: ServerId(server),
            is_co,
        }
    }

    /// Section V-C step 5: item d1 events — singles at (0.5, s2), (2.6, s2);
    /// co-requests at (0.8, s3), (1.4, s1), (4.0, s3). Expected cost 3.1.
    #[test]
    fn paper_example_d1_greedy_costs_3_1() {
        let events = [
            ev(0.5, 1, false),
            ev(0.8, 2, true),
            ev(1.4, 0, true),
            ev(2.6, 1, false),
            ev(4.0, 2, true),
        ];
        let out = singleton_greedy(&events, &CostModel::paper_example(), None);
        assert!(approx_eq(out.cost, 3.1), "got {}", out.cost);
        // 0.5: Tr = 0.5 + 1 = 1.5 beats P = 1.6 (D infeasible).
        assert_eq!(out.choices[0].arm, Arm::Transfer);
        assert!(approx_eq(out.choices[0].cost, 1.5));
        // 2.6: P = 1.6 beats D = 2.1 and Tr = 1.2 + 1 = 2.2.
        assert_eq!(out.choices[1].arm, Arm::Package);
        assert!(approx_eq(out.choices[1].cost, 1.6));
        assert_eq!(out.arm_counts, [0, 1, 1]);
    }

    /// Section V-C step 6: item d2 — singles at (1.1, s4), (3.2, s2);
    /// same co-requests. Expected cost 2.9.
    #[test]
    fn paper_example_d2_greedy_costs_2_9() {
        let events = [
            ev(0.8, 2, true),
            ev(1.1, 3, false),
            ev(1.4, 0, true),
            ev(3.2, 1, false),
            ev(4.0, 2, true),
        ];
        let out = singleton_greedy(&events, &CostModel::paper_example(), None);
        assert!(approx_eq(out.cost, 2.9), "got {}", out.cost);
        // 1.1: Tr from the 0.8 package = 0.3 + 1 = 1.3 beats P = 1.6.
        assert_eq!(out.choices[0].arm, Arm::Transfer);
        assert!(approx_eq(out.choices[0].cost, 1.3));
        // 3.2: Tr from 1.4 package = 1.8 + 1 = 2.8; P = 1.6 wins.
        assert_eq!(out.choices[1].arm, Arm::Package);
        assert!(approx_eq(out.choices[1].cost, 1.6));
    }

    #[test]
    fn cache_arm_wins_on_tight_local_chains() {
        let events = [ev(1.0, 1, false), ev(1.1, 1, false)];
        let out = singleton_greedy(&events, &CostModel::paper_example(), None);
        assert_eq!(out.choices[1].arm, Arm::Cache);
        assert!(approx_eq(out.choices[1].cost, 0.1));
    }

    #[test]
    fn origin_seed_enables_cache_arm_at_s1() {
        let events = [ev(0.5, 0, false)];
        let out = singleton_greedy(&events, &CostModel::paper_example(), None);
        assert_eq!(out.choices[0].arm, Arm::Cache);
        assert!(approx_eq(out.cost, 0.5));
    }

    #[test]
    fn strict_horizon_disables_late_package_arm() {
        // A lone singleton long after the last co-request: with the faithful
        // mode the package arm (1.6) wins; in strict mode it is unavailable
        // and the transfer arm (10 − 4 + 1 = 7... from the co at 4.0) wins.
        let events = [ev(4.0, 2, true), ev(10.0, 3, false)];
        let faithful = singleton_greedy(&events, &CostModel::paper_example(), None);
        assert_eq!(faithful.choices[0].arm, Arm::Package);
        let strict = singleton_greedy(&events, &CostModel::paper_example(), Some(4.0));
        assert_eq!(strict.choices[0].arm, Arm::Transfer);
        assert!(approx_eq(strict.choices[0].cost, 7.0));
        assert!(strict.cost >= faithful.cost);
    }

    #[test]
    fn co_requests_cost_nothing_here_but_update_trackers() {
        let events = [ev(1.0, 2, true), ev(1.2, 2, false)];
        let out = singleton_greedy(&events, &CostModel::paper_example(), None);
        // Cache from the co-request's unpacked copy at s3: 0.2μ.
        assert_eq!(out.choices.len(), 1);
        assert_eq!(out.choices[0].arm, Arm::Cache);
        assert!(approx_eq(out.cost, 0.2));
    }

    #[test]
    fn empty_and_all_co_lists() {
        let out = singleton_greedy(&[], &CostModel::paper_example(), None);
        assert_eq!(out.cost, 0.0);
        let out = singleton_greedy(
            &[ev(1.0, 1, true), ev(2.0, 2, true)],
            &CostModel::paper_example(),
            None,
        );
        assert_eq!(out.cost, 0.0);
        assert!(out.choices.is_empty());
    }

    #[test]
    fn alpha_controls_package_arm_competitiveness() {
        // Same geometry, two alphas: small α should flip Transfer → Package.
        let events = [ev(5.0, 2, true), ev(5.4, 3, false)];
        let high = CostModel::new(1.0, 1.0, 0.9).unwrap();
        let low = CostModel::new(1.0, 1.0, 0.3).unwrap();
        // Tr = 0.4 + 1 = 1.4; P(0.9) = 1.8; P(0.3) = 0.6.
        let o_high = singleton_greedy(&events, &high, None);
        assert_eq!(o_high.choices[0].arm, Arm::Transfer);
        let o_low = singleton_greedy(&events, &low, None);
        assert_eq!(o_low.choices[0].arm, Arm::Package);
    }
}

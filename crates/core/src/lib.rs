//! # dp-greedy — the two-phase caching algorithm of Huang et al. (CLUSTER 2019)
//!
//! This crate implements the paper's primary contribution:
//!
//! * **Phase 1** (via `mcs-correlation`): Jaccard-similarity analysis of the
//!   request sequence and greedy threshold matching of item pairs.
//! * **Phase 2** ([`two_phase`]): for each packed pair, the co-requests are
//!   served by the optimal off-line algorithm of \[6\] at package rates
//!   (`2αμ`, `2αλ`); requests for a *single* item of the pair are served by
//!   the three-arm greedy of Observation 2 (cache from `r_{p(i)}`, transfer
//!   from `r_{i−1}`, or package delivery at `2αλ`); unpacked items are
//!   served by the optimal off-line algorithm individually.
//!
//! Plus everything needed to evaluate it:
//!
//! * [`baselines`] — the paper's comparison algorithms: `Optimal`
//!   (non-packing, per-item optimal off-line — the yardstick of Fig. 11/12)
//!   and `Package_Served` (always pack — the other extreme of Fig. 13),
//!   plus an all-greedy baseline for ablation.
//! * [`prescan`] — the Section V data structures (per-server doubly linked
//!   lists `Q_j`, the `A[n]` index, the `pLast[m]` array and per-request
//!   `m`-size pointer arrays) giving `O(1)` interval identification.
//! * [`ratio`] — an exact solver for the *packed* cost model on small
//!   instances, used to verify the `2/α` bound of Theorem 1 empirically.
//! * [`paper_example`] — the complete Section V-C running example,
//!   reproducing the paper's total of 14.96 exactly.
//! * [`ledger`] — derives the `mcs-obs` decision ledger (per-decision cost
//!   attribution events) from DP_Greedy and baseline outputs; the summed
//!   event cost reconciles with each report's `total_cost`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod explain;
pub mod ledger;
pub mod multi_item;
pub mod paper_example;
pub mod prescan;
pub mod ratio;
pub mod singleton_greedy;
pub mod two_phase;
pub mod windowed;

pub use baselines::{optimal_non_packing, package_served, BaselineReport};
pub use two_phase::{dp_greedy, DpGreedyConfig, DpGreedyReport, PairReport, SingletonReport};

//! Windowed DP_Greedy: re-evaluating correlations over time.
//!
//! The paper computes one Jaccard matrix over the whole (predicted)
//! sequence. Real correlations drift — taxi pairs separate, news bundles
//! go stale — and a packing decided on day one can be wrong by day three.
//! This module slices the sequence into consecutive time windows and runs
//! both phases per window, so the packing adapts to the current
//! correlation structure.
//!
//! Windows are served independently (each window's items restart from the
//! origin server, the standing assumption of the off-line model applied
//! per window); the reported cost is therefore an *upper bound* on a
//! stateful implementation that carries copies across windows. The drift
//! experiment (`mcs-experiments::drift_exp`) shows when adaptation beats
//! a single global packing despite that overhead.

use mcs_model::{CostModel, Request, RequestSeq, RequestSeqBuilder};

use crate::two_phase::{dp_greedy, DpGreedyConfig, DpGreedyReport};

/// Configuration of a windowed run.
#[derive(Debug, Clone, Copy)]
pub struct WindowedConfig {
    /// Inner per-window configuration.
    pub inner: DpGreedyConfig,
    /// Window length in time units (> 0).
    pub window: f64,
}

/// Report for one window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window start time (inclusive).
    pub start: f64,
    /// Window end time (exclusive).
    pub end: f64,
    /// Requests inside the window.
    pub requests: usize,
    /// The packed pairs chosen for this window.
    pub pairs: Vec<(u32, u32)>,
    /// Window cost.
    pub cost: f64,
}

/// Aggregate windowed report.
#[derive(Debug, Clone)]
pub struct WindowedReport {
    /// Per-window details.
    pub windows: Vec<WindowReport>,
    /// Total cost across windows.
    pub total_cost: f64,
    /// Total item accesses.
    pub total_accesses: usize,
}

impl WindowedReport {
    /// The `ave_cost` metric.
    pub fn ave_cost(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_cost / self.total_accesses as f64
        }
    }

    /// True if any two consecutive windows chose different packings —
    /// i.e. the algorithm actually adapted.
    pub fn adapted(&self) -> bool {
        self.windows.windows(2).any(|w| w[0].pairs != w[1].pairs)
    }
}

/// Slices a sequence into windows of `window` time units, rebasing each
/// window's times to start at the window boundary (times stay positive
/// relative to the window's origin placement). Returns
/// `(window_start, window_end, rebased_slice)` triples; empty windows
/// are skipped.
pub fn slice_windows(seq: &RequestSeq, window: f64) -> Vec<(f64, f64, RequestSeq)> {
    assert!(window > 0.0, "window must be positive");
    let mut out = Vec::new();
    let horizon = seq.horizon();
    let mut start = 0.0;
    while start < horizon {
        let end = start + window;
        let in_window: Vec<&Request> = seq
            .requests()
            .iter()
            .filter(|r| r.time > start && r.time <= end)
            .collect();
        if !in_window.is_empty() {
            let mut b = RequestSeqBuilder::new(seq.servers(), seq.items());
            for r in &in_window {
                b = b.push(r.server, r.time - start, r.items.iter().map(|i| i.0));
            }
            out.push((
                start,
                end,
                b.build().expect("window slice inherits validity"),
            ));
        }
        start = end;
    }
    out
}

/// Runs DP_Greedy independently per window.
pub fn dp_greedy_windowed(seq: &RequestSeq, config: &WindowedConfig) -> WindowedReport {
    let mut windows = Vec::new();
    let mut total_cost = 0.0;
    for (start, end, slice) in slice_windows(seq, config.window) {
        let report: DpGreedyReport = dp_greedy(&slice, &config.inner);
        total_cost += report.total_cost;
        windows.push(WindowReport {
            start,
            end,
            requests: slice.len(),
            pairs: report
                .packing
                .pairs
                .iter()
                .map(|&(a, b)| (a.0, b.0))
                .collect(),
            cost: report.total_cost,
        });
    }
    WindowedReport {
        windows,
        total_cost,
        total_accesses: seq.total_item_accesses(),
    }
}

/// Adaptive θ selection: evaluates DP_Greedy over a θ grid and returns the
/// best threshold with its report — automating the Fig. 11 methodology the
/// paper uses to justify θ = 0.3.
pub fn auto_theta(seq: &RequestSeq, model: &CostModel, grid: &[f64]) -> (f64, DpGreedyReport) {
    assert!(!grid.is_empty(), "θ grid must be non-empty");
    let mut best: Option<(f64, DpGreedyReport)> = None;
    for &theta in grid {
        let report = dp_greedy(seq, &DpGreedyConfig::new(*model).with_theta(theta));
        let better = match &best {
            None => true,
            Some((_, b)) => report.total_cost < b.total_cost,
        };
        if better {
            best = Some((theta, report));
        }
    }
    best.expect("grid non-empty")
}

mcs_model::impl_to_json!(WindowReport {
    start,
    end,
    requests,
    pairs,
    cost
});
mcs_model::impl_to_json!(WindowedReport {
    windows,
    total_cost,
    total_accesses
});

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::ItemId;

    /// Two phases: items (0,1) correlated early, items (0,2) correlated
    /// late — a drifting workload a single global packing cannot fit.
    fn drifting_sequence() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(3, 3);
        let mut t = 0.0;
        for i in 0..12 {
            t += 0.4;
            b = b.push((i % 3) as u32, t, [0, 1]);
        }
        for i in 0..12 {
            t += 0.4;
            b = b.push((i % 3) as u32, t, [0, 2]);
        }
        b.build().unwrap()
    }

    #[test]
    fn windows_adapt_their_packing() {
        let seq = drifting_sequence();
        let model = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let cfg = WindowedConfig {
            inner: DpGreedyConfig::new(model).with_theta(0.3),
            window: 4.9, // splits the two phases into separate windows
        };
        let report = dp_greedy_windowed(&seq, &cfg);
        assert!(report.windows.len() >= 2);
        assert!(report.adapted(), "packing should change across windows");
        assert_eq!(report.windows[0].pairs, vec![(0, 1)]);
        assert!(report.windows.last().unwrap().pairs.contains(&(0, 2)));
    }

    #[test]
    fn windowed_can_beat_global_packing_on_drift() {
        // The global Phase 1 sees J(0,1) == J(0,2) == 0.5 and can pack only
        // one of them (they share item 0), mis-serving one phase entirely;
        // windowed packs each phase right. With a strong discount the
        // adaptive run must win despite per-window origin restarts... the
        // restart overhead is small here (copies re-ship once per window).
        let seq = drifting_sequence();
        let model = CostModel::new(0.2, 1.0, 0.3).unwrap();
        let global = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
        let windowed = dp_greedy_windowed(
            &seq,
            &WindowedConfig {
                inner: DpGreedyConfig::new(model).with_theta(0.3),
                window: 4.9,
            },
        );
        assert!(
            windowed.total_cost < global.total_cost,
            "windowed {} should beat global {}",
            windowed.total_cost,
            global.total_cost
        );
    }

    #[test]
    fn single_giant_window_matches_global() {
        let seq = drifting_sequence();
        let model = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let global = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
        let windowed = dp_greedy_windowed(
            &seq,
            &WindowedConfig {
                inner: DpGreedyConfig::new(model).with_theta(0.3),
                window: 1e6,
            },
        );
        assert!((windowed.total_cost - global.total_cost).abs() < 1e-9);
        assert_eq!(windowed.windows.len(), 1);
    }

    #[test]
    fn auto_theta_finds_a_no_worse_threshold() {
        let seq = drifting_sequence();
        let model = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let grid = [0.1, 0.3, 0.5, 0.7, 0.9];
        let (theta, best) = auto_theta(&seq, &model, &grid);
        assert!(grid.contains(&theta));
        for &other in &grid {
            let r = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(other));
            assert!(best.total_cost <= r.total_cost + 1e-9);
        }
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut b = RequestSeqBuilder::new(2, 2);
        b = b.push(0u32, 0.5, [0]);
        b = b.push(1u32, 10.5, [1]);
        let seq = b.build().unwrap();
        let model = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let report = dp_greedy_windowed(
            &seq,
            &WindowedConfig {
                inner: DpGreedyConfig::new(model),
                window: 1.0,
            },
        );
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.windows[0].requests, 1);
        assert_eq!(report.windows[1].requests, 1);
    }

    #[test]
    fn accesses_survive_slicing() {
        let seq = drifting_sequence();
        let model = CostModel::new(1.0, 1.0, 0.5).unwrap();
        let report = dp_greedy_windowed(
            &seq,
            &WindowedConfig {
                inner: DpGreedyConfig::new(model),
                window: 3.0,
            },
        );
        let sliced: usize = report.windows.iter().map(|w| w.requests).sum();
        assert_eq!(sliced, seq.len());
        assert_eq!(report.total_accesses, seq.total_item_accesses());
        // ItemId sanity for the serialised pairs.
        for w in &report.windows {
            for &(a, b) in &w.pairs {
                assert!(ItemId(a) < ItemId(b));
            }
        }
    }
}

//! Empirical verification of Theorem 1: `C_DPG / C* ≤ 2/α`.
//!
//! `C*` is the optimum of the paper's *packed* cost model (Section III):
//! copies of the two packed items that are co-located cache at the package
//! rate `2αμ` (vs `2μ` apart), and a joint transfer of both items costs
//! `2αλ` (vs `λ` each). This module computes `C*` exactly on small
//! instances by a layered dynamic program over
//! `(servers holding d_1, servers holding d_2)` states — the two-item
//! generalisation of [`mcs_offline::statespace`] — and compares it against
//! the DP_Greedy pair cost.
//!
//! Exponential in `m` (`O(n · 9^m)`); keep `m ≤ 6`.

use mcs_model::{CostModel, ItemId, RequestSeq, ServerId};

use crate::two_phase::{dp_greedy_pair, DpGreedyConfig};

/// Maximum server count accepted by the packed exact solver.
pub const MAX_SERVERS: u32 = 8;

/// Result of one ratio check.
#[derive(Debug, Clone, Copy)]
pub struct RatioCheck {
    /// DP_Greedy cost for the pair (`C_12 + C_1' + C_2'`).
    pub dpg: f64,
    /// Exact packed-model optimum `C*`.
    pub exact: f64,
    /// `dpg / exact` (`1.0` when both are zero).
    pub ratio: f64,
    /// Theorem 1's bound `2/α`.
    pub bound: f64,
}

/// Exact optimal cost of serving every request containing `a` or `b` under
/// the packed cost model.
///
/// # Panics
///
/// Panics if the sequence uses more than [`MAX_SERVERS`] servers.
pub fn packed_exact_optimal(seq: &RequestSeq, a: ItemId, b: ItemId, model: &CostModel) -> f64 {
    let m = seq.servers();
    assert!(
        m <= MAX_SERVERS,
        "packed exact solver limited to {MAX_SERVERS} servers, got {m}"
    );
    let mu = model.mu();
    let lambda = model.lambda();
    let alpha = model.alpha();
    let full = 1usize << m;
    let origin_bit = 1usize << ServerId::ORIGIN.index();

    // Relevant events: every request touching a or b, with need flags.
    let events: Vec<(f64, usize, bool, bool)> = seq
        .requests()
        .iter()
        .filter(|r| r.contains(a) || r.contains(b))
        .map(|r| {
            (
                r.time,
                1usize << r.server.index(),
                r.contains(a),
                r.contains(b),
            )
        })
        .collect();
    if events.is_empty() {
        return 0.0;
    }

    // dp[(mask_a << m) | mask_b] = min cost; start with both at the origin.
    let size = full * full;
    let idx = |ma: usize, mb: usize| (ma << m) | mb;
    let mut dp = vec![f64::INFINITY; size];
    dp[idx(origin_bit, origin_bit)] = 0.0;
    let mut prev_time = 0.0_f64;

    for &(time, s_bit, need_a, need_b) in &events {
        let dt = time - prev_time;
        prev_time = time;
        let mut next = vec![f64::INFINITY; size];

        for ma in 0..full {
            for mb in 0..full {
                let cost = dp[idx(ma, mb)];
                if !cost.is_finite() {
                    continue;
                }
                // Keep any subsets across the gap; co-located copies enjoy
                // the package caching rate (2αμ per co-located pair).
                let mut ka = ma;
                'ka: loop {
                    let mut kb = mb;
                    loop {
                        let singles = (ka | kb).count_ones() - (ka & kb).count_ones();
                        let pairs = (ka & kb).count_ones();
                        let hold =
                            cost + mu * dt * singles as f64 + 2.0 * alpha * mu * dt * pairs as f64;

                        serve(
                            &mut next, m, ka, kb, s_bit, need_a, need_b, hold, lambda, alpha,
                        );

                        if kb == 0 {
                            break;
                        }
                        kb = (kb - 1) & mb;
                    }
                    if ka == 0 {
                        break 'ka;
                    }
                    ka = (ka - 1) & ma;
                }
            }
        }
        dp = next;
    }

    dp.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Applies every way of satisfying the request's needs from kept masks
/// `(ka, kb)` and relaxes the successor states.
#[allow(clippy::too_many_arguments)]
fn serve(
    next: &mut [f64],
    m: u32,
    ka: usize,
    kb: usize,
    s_bit: usize,
    need_a: bool,
    need_b: bool,
    hold: f64,
    lambda: f64,
    alpha: f64,
) {
    let idx = |ma: usize, mb: usize| (ma << m) | mb;
    let missing_a = need_a && ka & s_bit == 0;
    let missing_b = need_b && kb & s_bit == 0;
    let has_joint_source = ka & kb != 0;
    let pkg = 2.0 * alpha * lambda;

    let mut relax = |ma: usize, mb: usize, c: f64| {
        let slot = &mut next[idx(ma, mb)];
        if c < *slot {
            *slot = c;
        }
    };

    match (missing_a, missing_b) {
        (false, false) => relax(ka, kb, hold),
        (true, false) => {
            if ka != 0 {
                // Individual transfer of a.
                relax(ka | s_bit, kb, hold + lambda);
            }
            if has_joint_source {
                // Package delivery also drops a copy of b at s.
                relax(ka | s_bit, kb | s_bit, hold + pkg);
            }
        }
        (false, true) => {
            if kb != 0 {
                relax(ka, kb | s_bit, hold + lambda);
            }
            if has_joint_source {
                relax(ka | s_bit, kb | s_bit, hold + pkg);
            }
        }
        (true, true) => {
            if ka != 0 && kb != 0 {
                // Two individual transfers.
                relax(ka | s_bit, kb | s_bit, hold + 2.0 * lambda);
            }
            if has_joint_source {
                relax(ka | s_bit, kb | s_bit, hold + pkg);
            }
        }
    }
}

/// Runs DP_Greedy on the pair and compares against the exact packed
/// optimum.
pub fn ratio_check(seq: &RequestSeq, a: ItemId, b: ItemId, config: &DpGreedyConfig) -> RatioCheck {
    let dpg = dp_greedy_pair(seq, a, b, config).total();
    let exact = packed_exact_optimal(seq, a, b, &config.model);
    let ratio = if exact == 0.0 { 1.0 } else { dpg / exact };
    RatioCheck {
        dpg,
        exact,
        ratio,
        bound: config.model.approximation_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, RequestSeq, RequestSeqBuilder};
    use mcs_offline::optimal;

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn exact_packed_reduces_to_single_item_when_b_absent() {
        // No requests for b: the packed model degenerates to single-item
        // optimal for a (b's copy dies immediately at zero cost).
        let seq = RequestSeqBuilder::new(3, 2)
            .push(1u32, 1.0, [0])
            .push(2u32, 2.0, [0])
            .push(1u32, 3.0, [0])
            .build()
            .unwrap();
        let model = CostModel::paper_example();
        let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
        let single = optimal(&seq.item_trace(ItemId(0)), &model).cost;
        assert!(approx_eq(exact, single), "exact={exact} single={single}");
    }

    #[test]
    fn exact_packed_is_at_most_package_dp_on_pure_co_sequences() {
        // All requests are co-requests: DP_Greedy's package DP is one
        // feasible strategy of the packed model, so C* ≤ C_12.
        let seq = RequestSeqBuilder::new(4, 2)
            .push(2u32, 0.8, [0, 1])
            .push(0u32, 1.4, [0, 1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap();
        let model = CostModel::paper_example();
        let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
        let pkg = optimal(
            &seq.package_trace(ItemId(0), ItemId(1)),
            &model.scaled_for_package(),
        )
        .cost;
        assert!(exact <= pkg + 1e-9, "exact={exact} pkg={pkg}");
    }

    #[test]
    fn theorem_1_holds_on_the_running_example() {
        let seq = paper_sequence();
        let config = DpGreedyConfig::new(CostModel::paper_example()).with_theta(0.4);
        let check = ratio_check(&seq, ItemId(0), ItemId(1), &config);
        assert!(approx_eq(check.dpg, 14.96));
        assert!(check.exact > 0.0);
        assert!(
            check.ratio <= check.bound + 1e-9,
            "ratio {} exceeds bound {}",
            check.ratio,
            check.bound
        );
    }

    #[test]
    fn lemma_1_lower_bound_holds_on_the_running_example() {
        // C* ≥ α (C_1opt + C_2opt).
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
        let opt_pair = crate::baselines::optimal_pair(&seq, ItemId(0), ItemId(1), &model);
        assert!(
            exact >= model.alpha() * opt_pair - 1e-9,
            "C*={exact} < α(C1opt+C2opt)={}",
            model.alpha() * opt_pair
        );
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random small instances: strictly-increasing times, 2 items, m ≤ 3.
        fn small_seq_strategy() -> impl Strategy<Value = RequestSeq> {
            (1usize..=7, 2u32..=3).prop_flat_map(|(n, m)| {
                (
                    proptest::collection::vec(1u32..=40, n),
                    proptest::collection::vec(0u32..m, n),
                    proptest::collection::vec(0u32..3, n),
                    Just(m),
                )
                    .prop_map(|(mut ticks, servers, kinds, m)| {
                        ticks.sort_unstable();
                        ticks.dedup();
                        let mut b = RequestSeqBuilder::new(m, 2);
                        for ((&t, &s), &kind) in ticks.iter().zip(&servers).zip(&kinds) {
                            let items: Vec<u32> = match kind {
                                0 => vec![0],
                                1 => vec![1],
                                _ => vec![0, 1],
                            };
                            b = b.push(s, t as f64 / 10.0, items);
                        }
                        b.build().unwrap()
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn theorem_1_bound_on_random_instances(
                seq in small_seq_strategy(),
                alpha_ticks in 2u32..=10,
                mu_ticks in 1u32..=30,
                la_ticks in 1u32..=30,
            ) {
                let model = CostModel::new(
                    mu_ticks as f64 / 10.0,
                    la_ticks as f64 / 10.0,
                    alpha_ticks as f64 / 10.0,
                ).unwrap();
                let config = DpGreedyConfig::new(model);
                let check = ratio_check(&seq, ItemId(0), ItemId(1), &config);
                prop_assert!(check.exact.is_finite());
                prop_assert!(
                    check.dpg <= check.bound * check.exact + 1e-9,
                    "C_DPG={} > (2/α)·C*={}·{}",
                    check.dpg, check.bound, check.exact
                );
            }

            #[test]
            fn strict_mode_is_realizable_hence_at_least_exact(
                seq in small_seq_strategy(),
            ) {
                let model = CostModel::paper_example();
                let config = DpGreedyConfig::new(model).strict();
                let dpg = dp_greedy_pair(&seq, ItemId(0), ItemId(1), &config).total();
                let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
                prop_assert!(
                    dpg >= exact - 1e-9,
                    "strict DP_Greedy {dpg} beat the exact packed optimum {exact}"
                );
            }

            #[test]
            fn lemma_1_on_random_instances(seq in small_seq_strategy()) {
                let model = CostModel::paper_example();
                let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
                let opt_pair = crate::baselines::optimal_pair(&seq, ItemId(0), ItemId(1), &model);
                prop_assert!(exact >= model.alpha() * opt_pair - 1e-9);
            }
        }
    }
}

//! Occupancy and traffic metrics accumulated during replay.

use mcs_model::ServerId;

/// Metrics of one replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayMetrics {
    /// Maximum concurrent live copies observed.
    pub peak_copies: u32,
    /// Time-weighted mean copy count (total copy-time / horizon swept).
    pub mean_copies: f64,
    /// Transfers received per server.
    pub transfers_in: Vec<usize>,
    /// Transfers sourced per server.
    pub transfers_out: Vec<usize>,
    total_copy_time: f64,
    total_time: f64,
}

impl ReplayMetrics {
    /// Fresh metrics for `m` servers.
    pub fn new(servers: u32) -> Self {
        ReplayMetrics {
            peak_copies: 0,
            mean_copies: 0.0,
            transfers_in: vec![0; servers as usize],
            transfers_out: vec![0; servers as usize],
            total_copy_time: 0.0,
            total_time: 0.0,
        }
    }

    /// Records a swept gap with a constant copy count. The copy count
    /// contributes to `peak_copies` even when `dt == 0`: a zero-length
    /// gap at peak occupancy is still peak occupancy (only the
    /// time-weighted mean ignores it).
    pub fn observe_gap(&mut self, copies: u32, dt: f64) {
        self.peak_copies = self.peak_copies.max(copies);
        if dt <= 0.0 {
            return;
        }
        self.total_copy_time += copies as f64 * dt;
        self.total_time += dt;
        self.mean_copies = if self.total_time > 0.0 {
            self.total_copy_time / self.total_time
        } else {
            0.0
        };
    }

    /// Records one transfer.
    pub fn observe_transfer(&mut self, from: ServerId, to: ServerId) {
        self.transfers_out[from.index()] += 1;
        self.transfers_in[to.index()] += 1;
    }

    /// Total transfers observed.
    pub fn total_transfers(&self) -> usize {
        self.transfers_in.iter().sum()
    }
}

mcs_model::impl_to_json!(ReplayMetrics {
    peak_copies,
    mean_copies,
    transfers_in,
    transfers_out,
    total_copy_time,
    total_time
});

/// Recovery metrics of one degraded replay (see [`crate::faults`]).
///
/// All counters are zero — and `cost_inflation` is exactly `1.0` — when
/// the fault plan is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Requests in the trace.
    pub requests_total: usize,
    /// Requests that missed their planned copy and were served by a
    /// repair or fallback path instead.
    pub requests_degraded: usize,
    /// Failed transfer attempts that triggered another try.
    pub retries: usize,
    /// Transfers rerouted to the origin after their planned source was
    /// unavailable or the retry budget ran out.
    pub origin_fallbacks: usize,
    /// Live copies destroyed by crash-window openings.
    pub copies_lost: usize,
    /// Planned cache intervals that never opened (server down).
    pub intervals_skipped: usize,
    /// Planned transfers dropped because their target was down.
    pub transfers_skipped: usize,
    /// Lost copies re-established on their planned interval by a repair.
    pub recaches: usize,
    /// Repairs with a known loss time (the re-cache events).
    pub repairs: usize,
    /// Mean time from copy loss to successful re-cache, including
    /// per-attempt transfer latency. Zero when nothing was repaired.
    pub mean_time_to_repair: f64,
    /// Degraded cost over fault-free cost. [`crate::faults::degraded_replay`]
    /// leaves this at `1.0`; [`crate::faults::chaos_replay`] fills it in.
    pub cost_inflation: f64,
}

impl FaultReport {
    /// A clean report for a trace of `requests_total` requests.
    pub fn new(requests_total: usize) -> Self {
        FaultReport {
            requests_total,
            requests_degraded: 0,
            retries: 0,
            origin_fallbacks: 0,
            copies_lost: 0,
            intervals_skipped: 0,
            transfers_skipped: 0,
            recaches: 0,
            repairs: 0,
            mean_time_to_repair: 0.0,
            cost_inflation: 1.0,
        }
    }

    /// Fraction of requests that were degraded.
    pub fn degraded_fraction(&self) -> f64 {
        if self.requests_total == 0 {
            0.0
        } else {
            self.requests_degraded as f64 / self.requests_total as f64
        }
    }

    /// Folds another report into this one (fleet-level aggregation):
    /// counters add, `mean_time_to_repair` is repair-weighted, and
    /// `cost_inflation` is left untouched for the caller to recompute
    /// from the aggregate costs.
    pub fn absorb(&mut self, other: &FaultReport) {
        let repairs = self.repairs + other.repairs;
        if repairs > 0 {
            self.mean_time_to_repair = (self.mean_time_to_repair * self.repairs as f64
                + other.mean_time_to_repair * other.repairs as f64)
                / repairs as f64;
        }
        self.repairs = repairs;
        self.requests_total += other.requests_total;
        self.requests_degraded += other.requests_degraded;
        self.retries += other.retries;
        self.origin_fallbacks += other.origin_fallbacks;
        self.copies_lost += other.copies_lost;
        self.intervals_skipped += other.intervals_skipped;
        self.transfers_skipped += other.transfers_skipped;
        self.recaches += other.recaches;
    }
}

mcs_model::impl_to_json!(FaultReport {
    requests_total,
    requests_degraded,
    retries,
    origin_fallbacks,
    copies_lost,
    intervals_skipped,
    transfers_skipped,
    recaches,
    repairs,
    mean_time_to_repair,
    cost_inflation
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_observation_tracks_peak_and_mean() {
        let mut m = ReplayMetrics::new(2);
        m.observe_gap(1, 1.0);
        m.observe_gap(3, 1.0);
        assert_eq!(m.peak_copies, 3);
        assert!((m.mean_copies - 2.0).abs() < 1e-12);
        // Zero-length gaps don't move the time-weighted mean…
        m.observe_gap(100, 0.0);
        assert!((m.mean_copies - 2.0).abs() < 1e-12);
        // …but they do count toward the peak: momentary occupancy at a
        // gap boundary is still occupancy.
        assert_eq!(m.peak_copies, 100);
    }

    #[test]
    fn transfer_counting() {
        let mut m = ReplayMetrics::new(3);
        m.observe_transfer(ServerId(0), ServerId(1));
        m.observe_transfer(ServerId(0), ServerId(2));
        m.observe_transfer(ServerId(2), ServerId(1));
        assert_eq!(m.transfers_out, vec![2, 0, 1]);
        assert_eq!(m.transfers_in, vec![0, 2, 1]);
        assert_eq!(m.total_transfers(), 3);
    }
}

//! Occupancy and traffic metrics accumulated during replay.

use serde::{Deserialize, Serialize};

use mcs_model::ServerId;

/// Metrics of one replay run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayMetrics {
    /// Maximum concurrent live copies observed.
    pub peak_copies: u32,
    /// Time-weighted mean copy count (total copy-time / horizon swept).
    pub mean_copies: f64,
    /// Transfers received per server.
    pub transfers_in: Vec<usize>,
    /// Transfers sourced per server.
    pub transfers_out: Vec<usize>,
    total_copy_time: f64,
    total_time: f64,
}

impl ReplayMetrics {
    /// Fresh metrics for `m` servers.
    pub fn new(servers: u32) -> Self {
        ReplayMetrics {
            peak_copies: 0,
            mean_copies: 0.0,
            transfers_in: vec![0; servers as usize],
            transfers_out: vec![0; servers as usize],
            total_copy_time: 0.0,
            total_time: 0.0,
        }
    }

    /// Records a swept gap with a constant copy count.
    pub fn observe_gap(&mut self, copies: u32, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        self.peak_copies = self.peak_copies.max(copies);
        self.total_copy_time += copies as f64 * dt;
        self.total_time += dt;
        self.mean_copies = if self.total_time > 0.0 {
            self.total_copy_time / self.total_time
        } else {
            0.0
        };
    }

    /// Records one transfer.
    pub fn observe_transfer(&mut self, from: ServerId, to: ServerId) {
        self.transfers_out[from.index()] += 1;
        self.transfers_in[to.index()] += 1;
    }

    /// Total transfers observed.
    pub fn total_transfers(&self) -> usize {
        self.transfers_in.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_observation_tracks_peak_and_mean() {
        let mut m = ReplayMetrics::new(2);
        m.observe_gap(1, 1.0);
        m.observe_gap(3, 1.0);
        assert_eq!(m.peak_copies, 3);
        assert!((m.mean_copies - 2.0).abs() < 1e-12);
        // Zero-length gaps are ignored.
        m.observe_gap(100, 0.0);
        assert_eq!(m.peak_copies, 3);
    }

    #[test]
    fn transfer_counting() {
        let mut m = ReplayMetrics::new(3);
        m.observe_transfer(ServerId(0), ServerId(1));
        m.observe_transfer(ServerId(0), ServerId(2));
        m.observe_transfer(ServerId(2), ServerId(1));
        assert_eq!(m.transfers_out, vec![2, 0, 1]);
        assert_eq!(m.transfers_in, vec![0, 2, 1]);
        assert_eq!(m.total_transfers(), 3);
    }
}

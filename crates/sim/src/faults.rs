//! Degraded replay: executes a planned schedule on a *faulty* fleet.
//!
//! [`crate::replay::replay`] verifies a schedule against the idealized
//! physics of the paper and rejects anything infeasible. This module
//! answers the complementary robustness question: what does the planned
//! schedule actually *cost* when servers crash and transfers fail
//! underneath it? [`degraded_replay`] never rejects — it repairs on the
//! fly, accruing the real cost of every repair, and reports recovery
//! metrics in a [`FaultReport`].
//!
//! Repair policy, in order:
//!
//! 1. **Retry** — a failed transfer attempt is retried against the same
//!    source up to [`FaultPlan::max_retries`] times; every attempt
//!    (failed or not) pays the transfer rate `λ`, because the bytes moved
//!    before the connection died are real traffic.
//! 2. **Origin fallback** — once the budget is exhausted, or when the
//!    planned source has no live copy, the fetch is rerouted to the
//!    origin `s1`, which fronts the durable backing store and never
//!    fails (one more `λ`).
//! 3. **Re-cache** — when a repair serves a request whose planned cache
//!    interval lost its copy to a crash, the fetched copy is parked back
//!    on that interval for its remaining span, so later requests hit
//!    again; the extra cache time is billed at `μ` like any other copy.
//!
//! Copies die the instant a crash window opens and do not resurrect on
//! recovery; repair is lazy, at the next request that needs the copy.
//! Under [`FaultPlan::none`] every branch above is dead code and the
//! sweep is the same float-by-float accumulation as `replay`, so the
//! degraded cost equals the plain replayed cost *exactly* — the property
//! the acceptance tests pin down.

use mcs_model::fault::FaultPlan;
use mcs_model::request::SingleItemTrace;
use mcs_model::time::total_cmp;
use mcs_model::{approx_eq, CostModel, Schedule, ServerId, TimePoint, EPSILON};

use crate::engine::timeline;
use crate::metrics::{FaultReport, ReplayMetrics};

/// Per-interval execution state during the degraded sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
enum IvState {
    /// Not reached yet.
    Pending,
    /// Open with a live copy.
    Open,
    /// Copy destroyed by a crash at the given instant.
    Killed { lost_at: TimePoint },
    /// Never opened: the server was down at the planned open instant.
    Skipped { planned_open: TimePoint },
    /// Past its end.
    Closed,
}

/// The outcome of a degraded replay. Never an error: broken physics is
/// repaired (and billed), not rejected.
#[derive(Debug, Clone)]
pub struct DegradedReport {
    /// Copy-time actually accrued (planned minus lost plus re-cached).
    pub cache_time: f64,
    /// Successful transfer deliveries (planned reroutes and repairs
    /// included).
    pub transfers: usize,
    /// Total transfer attempts, *including* failed ones — each pays `λ`.
    pub attempts: usize,
    /// Requests served (always the whole trace; service degrades, it
    /// never drops).
    pub served: usize,
    /// Recovery metrics.
    pub fault: FaultReport,
    /// Occupancy and traffic metrics of the degraded run.
    pub metrics: ReplayMetrics,
}

impl DegradedReport {
    /// Total cost under `(rate_cache, cost_transfer)`: cache time at `μ`
    /// plus *every attempt* at `λ`.
    pub fn cost(&self, rate_cache: f64, cost_transfer: f64) -> f64 {
        rate_cache * self.cache_time + cost_transfer * self.attempts as f64
    }
}

/// A degraded run paired with its fault-free baseline.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Cost of the same schedule replayed with no faults.
    pub fault_free_cost: f64,
    /// Cost actually accrued under the plan.
    pub degraded_cost: f64,
    /// `degraded_cost / fault_free_cost` (1.0 for an empty plan or a
    /// zero-cost baseline).
    pub degradation_ratio: f64,
    /// The degraded run, with `fault.cost_inflation` filled in.
    pub report: DegradedReport,
}

/// Runs [`degraded_replay`] twice — once under `plan`, once fault-free —
/// and reports the degradation ratio (cost inflation) under `model`.
pub fn chaos_replay(
    schedule: &Schedule,
    trace: &SingleItemTrace,
    plan: &FaultPlan,
    model: &CostModel,
) -> ChaosOutcome {
    let baseline = degraded_replay(schedule, trace, &FaultPlan::none());
    let mut report = degraded_replay(schedule, trace, plan);
    let fault_free_cost = baseline.cost(model.mu(), model.lambda());
    let degraded_cost = report.cost(model.mu(), model.lambda());
    let degradation_ratio = if fault_free_cost > 0.0 {
        degraded_cost / fault_free_cost
    } else {
        1.0
    };
    report.fault.cost_inflation = degradation_ratio;
    ChaosOutcome {
        fault_free_cost,
        degraded_cost,
        degradation_ratio,
        report,
    }
}

/// Executes `schedule` against `trace` under `plan`, repairing every
/// fault-induced (or schedule-induced) infeasibility at real cost.
pub fn degraded_replay(
    schedule: &Schedule,
    trace: &SingleItemTrace,
    plan: &FaultPlan,
) -> DegradedReport {
    let tl = timeline(schedule, trace);
    let servers = trace.servers as usize;
    let mut count = vec![0u32; servers];
    let mut iv_state = vec![IvState::Pending; schedule.intervals.len()];
    let mut metrics = ReplayMetrics::new(trace.servers);
    let mut fault = FaultReport::new(trace.len());

    // Crash-window openings, time-sorted: each is an integration
    // breakpoint at which the crashed server's copies die.
    let mut kills: Vec<(TimePoint, ServerId)> = plan
        .crashes
        .iter()
        .map(|c| (c.span.start, c.server))
        .collect();
    kills.sort_by(|a, b| total_cmp(a.0, b.0));
    let mut next_kill = 0usize;

    let mut cache_time = 0.0_f64;
    let mut transfers_done = 0usize;
    let mut attempts = 0usize;
    let mut served = 0usize;
    let mut repair_time_total = 0.0_f64;
    let mut prev_time = tl.first().map_or(0.0, |i| i.time.min(0.0));

    let apply_kill = |at: TimePoint,
                      server: ServerId,
                      count: &mut Vec<u32>,
                      iv_state: &mut Vec<IvState>,
                      fault: &mut FaultReport| {
        for (i, st) in iv_state.iter_mut().enumerate() {
            if *st == IvState::Open && schedule.intervals[i].server == server {
                *st = IvState::Killed { lost_at: at };
                fault.copies_lost += 1;
            }
        }
        count[server.index()] = 0;
    };

    for instant in &tl {
        let t = instant.time;

        // Integrate occupancy up to each crash that opens strictly before
        // this instant, killing copies at the breakpoint.
        while next_kill < kills.len() && kills[next_kill].0 < t - EPSILON {
            let (kt, ks) = kills[next_kill];
            next_kill += 1;
            if kt > prev_time {
                cache_time += total(&count) as f64 * (kt - prev_time);
                metrics.observe_gap(total(&count), kt - prev_time);
                prev_time = kt;
            }
            apply_kill(kt, ks, &mut count, &mut iv_state, &mut fault);
        }

        // Integrate the remaining gap up to this instant. (The empty plan
        // reaches here directly with the exact accumulation `replay` does.)
        cache_time += total(&count) as f64 * (t - prev_time);
        metrics.observe_gap(total(&count), t - prev_time);
        prev_time = t;

        // Crashes coinciding with this instant strike before its events:
        // the down-window is half-open `[start, end)`, so at `t` the
        // server is already down.
        while next_kill < kills.len() && kills[next_kill].0 <= t + EPSILON {
            let (kt, ks) = kills[next_kill];
            next_kill += 1;
            apply_kill(kt, ks, &mut count, &mut iv_state, &mut fault);
        }

        let alive_now = |count: &Vec<u32>, s: ServerId| {
            count[s.index()] > 0 || (s == ServerId::ORIGIN && approx_eq(t, 0.0))
        };

        // Resolve planned transfers, allowing same-instant chains. Where
        // `replay` rejects a stalled chain, we reroute from the origin.
        let mut arrived: Vec<ServerId> = Vec::new();
        let mut pending: Vec<usize> = instant.transfers.clone();
        let mut stalled = false;
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&ti| {
                let tr = &schedule.transfers[ti];
                if plan.is_down(tr.to, t) {
                    // Target unreachable; the copy would die on arrival
                    // anyway. Drop the transfer, repair lazily later.
                    fault.transfers_skipped += 1;
                    return false;
                }
                let source_live = alive_now(&count, tr.from) || arrived.contains(&tr.from);
                if !source_live && !stalled {
                    return true; // wait for a same-instant chain to feed it
                }
                let src = if source_live {
                    tr.from
                } else {
                    fault.origin_fallbacks += 1;
                    ServerId::ORIGIN
                };
                let delivered_from = deliver(plan, src, tr.to, t, &mut attempts, &mut fault);
                transfers_done += 1;
                metrics.observe_transfer(delivered_from, tr.to);
                arrived.push(tr.to);
                false
            });
            if pending.len() == before {
                stalled = true; // no progress: reroute the rest via origin
            }
        }

        // Open intervals.
        for &ii in &instant.starts {
            let iv = &schedule.intervals[ii];
            if plan.is_down(iv.server, t) {
                iv_state[ii] = IvState::Skipped { planned_open: t };
                fault.intervals_skipped += 1;
                continue;
            }
            let anchored = alive_now(&count, iv.server) || arrived.contains(&iv.server);
            if !anchored {
                // The planned anchor is gone (fault upstream or broken
                // schedule): fetch a fresh copy before opening.
                let src = best_source(plan, &count, iv.server, t);
                if src == ServerId::ORIGIN {
                    fault.origin_fallbacks += 1;
                }
                let attempts_before = attempts;
                let from = deliver(plan, src, iv.server, t, &mut attempts, &mut fault);
                transfers_done += 1;
                metrics.observe_transfer(from, iv.server);
                // If the missing anchor is a fault casualty (a lost copy
                // whose interval ran into this instant), this fetch is its
                // repair: credit the time-to-repair from the loss.
                if let Some(lost_at) = latest_loss_at(schedule, &iv_state, iv.server, t) {
                    fault.repairs += 1;
                    let tries = (attempts - attempts_before) as f64;
                    repair_time_total += (t - lost_at) + tries * plan.transfer_latency;
                }
            }
            iv_state[ii] = IvState::Open;
            count[iv.server.index()] += 1;
        }

        // Serve requests.
        for &ri in &instant.requests {
            let p = &trace.points[ri];
            let hit = count[p.server.index()] > 0
                || arrived.contains(&p.server)
                || (p.server == ServerId::ORIGIN && approx_eq(t, 0.0));
            if hit {
                served += 1;
                continue;
            }
            fault.requests_degraded += 1;
            if plan.is_down(p.server, t) {
                // The cache there is down; the user reads through to the
                // origin's durable store. One transfer, never fails.
                attempts += 1;
                transfers_done += 1;
                metrics.observe_transfer(ServerId::ORIGIN, p.server);
                fault.origin_fallbacks += 1;
                served += 1;
                continue;
            }
            // Server is up but its copy is gone: fetch, and if a planned
            // interval still covers this instant, re-cache on it.
            let src = best_source(plan, &count, p.server, t);
            if src == ServerId::ORIGIN {
                fault.origin_fallbacks += 1;
            }
            let attempts_before = attempts;
            let from = deliver(plan, src, p.server, t, &mut attempts, &mut fault);
            transfers_done += 1;
            metrics.observe_transfer(from, p.server);
            served += 1;
            if let Some(ii) = covering_interval(schedule, &iv_state, p.server, t) {
                let lost_at = match iv_state[ii] {
                    IvState::Killed { lost_at } => lost_at,
                    IvState::Skipped { planned_open } => planned_open,
                    _ => unreachable!("covering_interval returns only lost states"),
                };
                iv_state[ii] = IvState::Open;
                count[p.server.index()] += 1;
                fault.recaches += 1;
                fault.repairs += 1;
                let tries = (attempts - attempts_before) as f64;
                repair_time_total += (t - lost_at) + tries * plan.transfer_latency;
            }
        }

        // Close intervals.
        for &ii in &instant.ends {
            match iv_state[ii] {
                IvState::Open => {
                    let s = schedule.intervals[ii].server;
                    count[s.index()] -= 1;
                }
                IvState::Pending | IvState::Killed { .. } | IvState::Skipped { .. } => {}
                IvState::Closed => {}
            }
            iv_state[ii] = IvState::Closed;
        }
    }

    fault.mean_time_to_repair = if fault.repairs > 0 {
        repair_time_total / fault.repairs as f64
    } else {
        0.0
    };

    DegradedReport {
        cache_time,
        transfers: transfers_done,
        attempts,
        served,
        fault,
        metrics,
    }
}

fn total(count: &[u32]) -> u32 {
    count.iter().sum()
}

/// The deterministic repair source: the lowest-index up server holding a
/// live copy, else the origin.
fn best_source(plan: &FaultPlan, count: &[u32], to: ServerId, t: TimePoint) -> ServerId {
    count
        .iter()
        .enumerate()
        .filter(|&(s, &c)| {
            c > 0 && ServerId(s as u32) != to && !plan.is_down(ServerId(s as u32), t)
        })
        .map(|(s, _)| ServerId(s as u32))
        .next()
        .unwrap_or(ServerId::ORIGIN)
}

/// Attempts the transfer `src -> to` at `t` under the retry policy.
/// Returns the server that finally delivered (the origin on fallback).
/// Every attempt, failed or successful, increments `attempts` (pays `λ`).
fn deliver(
    plan: &FaultPlan,
    src: ServerId,
    to: ServerId,
    t: TimePoint,
    attempts: &mut usize,
    fault: &mut FaultReport,
) -> ServerId {
    for k in 0..=plan.max_retries {
        *attempts += 1;
        if !plan.transfer_fails(src, to, t, k) {
            return src;
        }
        fault.retries += 1;
    }
    // Budget exhausted: the origin's durable store never fails.
    *attempts += 1;
    fault.origin_fallbacks += 1;
    ServerId::ORIGIN
}

/// The loss instant of the most recent fault casualty at `server` whose
/// planned span ran into `t` — the copy an unanchored open would have
/// chained from. `None` when the anchor loss is not fault-induced.
fn latest_loss_at(
    schedule: &Schedule,
    iv_state: &[IvState],
    server: ServerId,
    t: TimePoint,
) -> Option<TimePoint> {
    schedule
        .intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.server == server && iv.span.end >= t - EPSILON)
        .filter_map(|(i, _)| match iv_state[i] {
            IvState::Killed { lost_at } => Some(lost_at),
            IvState::Skipped { planned_open } => Some(planned_open),
            _ => None,
        })
        .max_by(|a, b| total_cmp(*a, *b))
}

/// The planned interval at `server` that covers `t` and lost its copy
/// (killed or skipped), preferring the one with the most remaining span.
fn covering_interval(
    schedule: &Schedule,
    iv_state: &[IvState],
    server: ServerId,
    t: TimePoint,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, iv) in schedule.intervals.iter().enumerate() {
        if iv.server != server || iv.span.start > t + EPSILON || iv.span.end < t - EPSILON {
            continue;
        }
        if !matches!(
            iv_state[i],
            IvState::Killed { .. } | IvState::Skipped { .. }
        ) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if schedule.intervals[b].span.end < iv.span.end => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use dp_greedy::paper_example;
    use mcs_model::fault::CrashWindow;
    use mcs_model::rng::Rng;
    use mcs_model::time::TimeSpan;
    use mcs_model::ItemId;
    use mcs_offline::optimal;

    fn paper_trace() -> SingleItemTrace {
        paper_example::paper_sequence().item_trace(ItemId(0))
    }

    fn optimal_schedule(trace: &SingleItemTrace) -> Schedule {
        optimal(trace, &CostModel::paper_example()).schedule
    }

    fn random_trace(rng: &mut Rng) -> SingleItemTrace {
        let m = rng.gen_range(2u32..=5);
        let n = rng.gen_range(2usize..=12);
        let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..=90)).collect();
        ticks.sort_unstable();
        ticks.dedup();
        let pairs: Vec<(f64, u32)> = ticks
            .iter()
            .map(|&t| (f64::from(t) / 10.0, rng.gen_range(0..m)))
            .collect();
        SingleItemTrace::from_pairs(m, &pairs)
    }

    #[test]
    fn empty_plan_matches_replay_exactly_on_the_paper_example() {
        let trace = paper_trace();
        let s = optimal_schedule(&trace);
        let plain = replay(&s, &trace).expect("feasible");
        let deg = degraded_replay(&s, &trace, &FaultPlan::none());
        // Bit-for-bit: same sweep, same accumulation order.
        assert_eq!(deg.cache_time, plain.integrated_cache_time);
        assert_eq!(deg.attempts, plain.transfers);
        assert_eq!(deg.transfers, plain.transfers);
        assert_eq!(deg.served, plain.served);
        let model = paper_example::paper_model();
        assert_eq!(
            deg.cost(model.mu(), model.lambda()),
            plain.cost(model.mu(), model.lambda())
        );
        assert_eq!(deg.fault, FaultReport::new(trace.len()));
    }

    #[test]
    fn empty_plan_matches_replay_exactly_on_random_optimal_schedules() {
        for case in 0..64 {
            let mut rng = Rng::seed_from_u64(0xBEEF + case);
            let trace = random_trace(&mut rng);
            let s = optimal_schedule(&trace);
            let plain = replay(&s, &trace).expect("feasible");
            let deg = degraded_replay(&s, &trace, &FaultPlan::none());
            assert_eq!(deg.cache_time, plain.integrated_cache_time, "case {case}");
            assert_eq!(deg.attempts, plain.transfers, "case {case}");
            assert_eq!(deg.cost(1.0, 1.7), plain.cost(1.0, 1.7), "case {case}");
            assert_eq!(deg.fault.requests_degraded, 0, "case {case}");
        }
    }

    #[test]
    fn total_blackout_degrades_to_origin_service() {
        // Every non-origin copy dies at t=0: the only cache time left is
        // the schedule's own origin intervals, and every non-origin
        // request costs exactly one origin transfer.
        for case in 0..32 {
            let mut rng = Rng::seed_from_u64(0xB1AC + case);
            let trace = random_trace(&mut rng);
            let s = optimal_schedule(&trace);
            let plan = FaultPlan::total_blackout(trace.servers);
            let deg = degraded_replay(&s, &trace, &plan);
            let origin_cache_time: f64 = s
                .intervals
                .iter()
                .filter(|iv| iv.server == ServerId::ORIGIN)
                .map(|iv| iv.span.len())
                .sum();
            let non_origin_requests = trace
                .points
                .iter()
                .filter(|p| p.server != ServerId::ORIGIN)
                .count();
            // Planned transfers *to* the origin still fire (rerouted from
            // the backing store) — they re-stock the origin's own cache.
            let to_origin = s
                .transfers
                .iter()
                .filter(|tr| tr.to == ServerId::ORIGIN)
                .count();
            assert!(
                approx_eq(deg.cache_time, origin_cache_time),
                "case {case}: cache {} vs origin-only {origin_cache_time}",
                deg.cache_time
            );
            assert_eq!(deg.attempts, non_origin_requests + to_origin, "case {case}");
            assert_eq!(deg.served, trace.len(), "case {case}");
            // The n·λ bound: at most one transfer per request, no extras.
            assert!(deg.attempts <= trace.len() + to_origin, "case {case}");
        }
    }

    #[test]
    fn blackout_on_the_paper_example_hits_the_all_origin_bound() {
        let trace = paper_trace();
        let s = optimal_schedule(&trace);
        let plan = FaultPlan::total_blackout(trace.servers);
        let model = paper_example::paper_model();
        let deg = degraded_replay(&s, &trace, &plan);
        let non_origin = trace
            .points
            .iter()
            .filter(|p| p.server != ServerId::ORIGIN)
            .count();
        let origin_cache: f64 = s
            .intervals
            .iter()
            .filter(|iv| iv.server == ServerId::ORIGIN)
            .map(|iv| iv.span.len())
            .sum();
        let to_origin = s
            .transfers
            .iter()
            .filter(|tr| tr.to == ServerId::ORIGIN)
            .count();
        let bound = model.mu() * origin_cache + model.lambda() * (non_origin + to_origin) as f64;
        assert!(approx_eq(deg.cost(model.mu(), model.lambda()), bound));
        assert_eq!(deg.fault.requests_degraded, non_origin);
    }

    #[test]
    fn mid_schedule_crash_loses_then_recaches_at_the_next_request() {
        // One long planned interval [1, 3] at s2 covering requests at
        // 1, 2, 3. Crash s2 during [1.5, 1.8): the copy dies, the t=2
        // request repairs it by re-caching on the same interval, and the
        // t=3 request hits again.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 1), (3.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0)
            .transfer(ServerId(0), ServerId(1), 1.0)
            .cache(ServerId(1), 1.0, 3.0);
        let plain = replay(&s, &trace).expect("feasible");
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashWindow {
            server: ServerId(1),
            span: TimeSpan::new(1.5, 1.8),
        });
        let deg = degraded_replay(&s, &trace, &plan);
        assert_eq!(deg.served, 3);
        assert_eq!(deg.fault.copies_lost, 1);
        assert_eq!(deg.fault.requests_degraded, 1);
        assert_eq!(deg.fault.recaches, 1);
        assert_eq!(deg.fault.repairs, 1);
        // Copy lost at 1.5, repaired at 2.0.
        assert!(approx_eq(deg.fault.mean_time_to_repair, 0.5));
        // Cache time shrinks by the outage (1.5..2.0), grows by nothing.
        assert!(approx_eq(deg.cache_time, plain.integrated_cache_time - 0.5));
        // One extra transfer: the repair fetch.
        assert_eq!(deg.attempts, plain.transfers + 1);
    }

    #[test]
    fn crash_between_split_intervals_repairs_at_the_next_open() {
        // The offline optimum splits intervals at request times, so the
        // lost copy is restored by the anchor repair of the next planned
        // open rather than at a request. Served count, cost and TTR must
        // come out the same as the long-interval case.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 1), (3.0, 1)]);
        let s = optimal_schedule(&trace);
        let plain = replay(&s, &trace).expect("feasible");
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashWindow {
            server: ServerId(1),
            span: TimeSpan::new(1.5, 1.8),
        });
        let deg = degraded_replay(&s, &trace, &plan);
        assert_eq!(deg.served, 3);
        assert_eq!(deg.fault.copies_lost, 1);
        // No request ever misses: the t=2 open repairs first.
        assert_eq!(deg.fault.requests_degraded, 0);
        assert_eq!(deg.fault.repairs, 1);
        assert!(approx_eq(deg.fault.mean_time_to_repair, 0.5));
        assert!(approx_eq(deg.cache_time, plain.integrated_cache_time - 0.5));
        assert_eq!(deg.attempts, plain.transfers + 1);
    }

    #[test]
    fn transfer_failures_pay_per_attempt_and_fall_back_to_origin() {
        // Force every non-origin transfer to fail: each planned remote
        // fetch burns its retry budget, then the origin delivers.
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (1.2, 2)]);
        let s = optimal_schedule(&trace);
        let plain = replay(&s, &trace).expect("feasible");
        let mut plan = FaultPlan::none();
        plan.transfer_failure_prob = 1.0;
        plan.seed = 3;
        let deg = degraded_replay(&s, &trace, &plan);
        assert_eq!(deg.served, 2);
        // Transfers sourced at the origin are immune; any transfer planned
        // from a non-origin source pays (max_retries + 1) failures + 1
        // origin fetch.
        assert!(deg.attempts >= plain.transfers);
        let deg_cost = deg.cost(1.0, 1.7);
        let plain_cost = plain.cost(1.0, 1.7);
        assert!(deg_cost >= plain_cost);
        if deg.fault.retries > 0 {
            assert!(deg.fault.origin_fallbacks > 0);
        }
    }

    #[test]
    fn chaos_replay_reports_inflation_and_is_deterministic() {
        let trace = paper_trace();
        let s = optimal_schedule(&trace);
        let model = paper_example::paper_model();
        let plan = FaultPlan::random(7, trace.servers, 5.0, 0.2, 1.0, 0.3);
        let a = chaos_replay(&s, &trace, &plan, &model);
        let b = chaos_replay(&s, &trace, &plan, &model);
        assert_eq!(a.degraded_cost, b.degraded_cost);
        assert_eq!(a.report.fault, b.report.fault);
        assert!(a.degradation_ratio >= 1.0 - 1e-9 || a.degraded_cost < a.fault_free_cost);
        assert!(approx_eq(
            a.report.fault.cost_inflation,
            a.degradation_ratio
        ));
        // Empty plan: ratio is exactly 1.
        let clean = chaos_replay(&s, &trace, &FaultPlan::none(), &model);
        assert_eq!(clean.degradation_ratio, 1.0);
    }

    #[test]
    fn service_never_drops_under_arbitrary_fault_plans() {
        for case in 0..48 {
            let mut rng = Rng::seed_from_u64(0xC4A5 + case);
            let trace = random_trace(&mut rng);
            let s = optimal_schedule(&trace);
            let plan = FaultPlan::random(case, trace.servers, 10.0, 0.3, 1.5, 0.4);
            let deg = degraded_replay(&s, &trace, &plan);
            assert_eq!(deg.served, trace.len(), "case {case}");
            // Degradation is bounded: worst case one full retry burst per
            // request plus the planned work.
            let worst = s.transfers.len() + trace.len() * (plan.max_retries as usize + 2);
            assert!(
                deg.attempts <= worst + s.intervals.len() * (plan.max_retries as usize + 2),
                "case {case}"
            );
        }
    }
}

//! Fleet-level replay: validate a complete [`DpGreedyReport`] against its
//! request sequence.
//!
//! Every explicit schedule inside the report (package schedules of the
//! packed pairs, per-item schedules of the unpacked singletons) is
//! replayed through the event engine and its cost re-derived; the greedy
//! singleton costs of Phase 2 are bookkeeping upper bounds (each arm is
//! individually realisable — see the `dp-greedy` docs) and are carried
//! through unchanged but reported separately.

use dp_greedy::two_phase::DpGreedyReport;
use mcs_engine::{CachingSolver, RunContext, Solution, SolutionPart};
use mcs_model::fault::FaultPlan;
use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, ItemId, RequestSeq};
use mcs_obs::Subject;

use crate::faults::chaos_replay;
use crate::metrics::FaultReport;
use crate::replay::{replay, ReplayError};

/// One replayed commodity.
#[derive(Debug, Clone)]
pub struct CommodityCheck {
    /// Human-readable label (`"package(d1,d2)"`, `"item d3"`).
    pub label: String,
    /// Cost reported by the algorithm.
    pub reported: f64,
    /// Cost re-derived by replay.
    pub replayed: f64,
    /// Transfers executed during replay.
    pub transfers: usize,
}

/// Aggregate outcome of a fleet replay.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-commodity checks (everything with an explicit schedule).
    pub commodities: Vec<CommodityCheck>,
    /// Total replayed cost over explicit schedules.
    pub replayed_cost: f64,
    /// Greedy bookkeeping cost carried from the report (no schedule).
    pub bookkept_cost: f64,
    /// `replayed + bookkept` — must equal the report's total.
    pub total_cost: f64,
}

/// Replays every schedule in a DP_Greedy report and cross-checks costs.
///
/// # Errors
///
/// Returns the first [`ReplayError`] if any schedule is physically
/// infeasible, or a synthesized error if a replayed cost disagrees with
/// the reported one beyond tolerance.
pub fn replay_dp_greedy(
    seq: &RequestSeq,
    report: &DpGreedyReport,
    model: &CostModel,
) -> Result<FleetReport, ReplayError> {
    let mut commodities = Vec::new();
    let mut replayed_cost = 0.0;
    let mut bookkept_cost = 0.0;

    let pkg_model = model.scaled_for_package();
    for pair in &report.pairs {
        let co = seq.package_trace(pair.a, pair.b);
        let rep = replay(&pair.package_schedule, &co)?;
        let replayed = rep.cost(pkg_model.mu(), pkg_model.lambda());
        if (replayed - pair.package_cost).abs() > 1e-6 {
            return Err(ReplayError {
                time: co.points.last().map_or(0.0, |p| p.time),
                reason: format!(
                    "package ({}, {}): replayed {replayed} != reported {}",
                    pair.a, pair.b, pair.package_cost
                ),
            });
        }
        commodities.push(CommodityCheck {
            label: format!("package({}, {})", pair.a, pair.b),
            reported: pair.package_cost,
            replayed,
            transfers: rep.transfers,
        });
        replayed_cost += replayed;
        bookkept_cost += pair.a_singleton_cost + pair.b_singleton_cost;
    }

    for s in &report.singletons {
        let trace = seq.item_trace(s.item);
        let rep = replay(&s.schedule, &trace)?;
        let replayed = rep.cost(model.mu(), model.lambda());
        if (replayed - s.cost).abs() > 1e-6 {
            return Err(ReplayError {
                time: trace.points.last().map_or(0.0, |p| p.time),
                reason: format!(
                    "item {}: replayed {replayed} != reported {}",
                    s.item, s.cost
                ),
            });
        }
        commodities.push(CommodityCheck {
            label: format!("item {}", s.item),
            reported: s.cost,
            replayed,
            transfers: rep.transfers,
        });
        replayed_cost += replayed;
    }

    Ok(FleetReport {
        commodities,
        replayed_cost,
        bookkept_cost,
        total_cost: replayed_cost + bookkept_cost,
    })
}

/// One commodity replayed under faults.
#[derive(Debug, Clone)]
pub struct CommodityChaos {
    /// Human-readable label (`"package(d1,d2)"`, `"item d3"`).
    pub label: String,
    /// Fault-free replayed cost.
    pub fault_free: f64,
    /// Cost accrued under the fault plan.
    pub degraded: f64,
    /// `degraded / fault_free` for this commodity.
    pub degradation_ratio: f64,
}

/// Aggregate outcome of a fleet-wide chaos run.
#[derive(Debug, Clone)]
pub struct FleetChaosReport {
    /// Per-commodity breakdown.
    pub commodities: Vec<CommodityChaos>,
    /// Total fault-free cost over explicit schedules.
    pub fault_free_cost: f64,
    /// Total cost accrued under the plan.
    pub degraded_cost: f64,
    /// `degraded_cost / fault_free_cost` (1.0 on a zero-cost baseline).
    pub degradation_ratio: f64,
    /// Merged recovery metrics across all commodities, with
    /// `cost_inflation` set to the fleet-level degradation ratio.
    pub fault: FaultReport,
}

/// Replays every explicit schedule of a DP_Greedy report through the
/// degraded engine under `plan` and aggregates recovery metrics.
///
/// Unlike [`replay_dp_greedy`] this never fails: the degraded engine
/// serves every request by repair or origin fallback, so an infeasible
/// situation shows up as cost inflation, not as an error. Package
/// schedules are costed under the `α`-scaled package rates, singletons
/// under the base rates; the Phase-2 greedy bookkeeping arms carry no
/// explicit schedule and are excluded from both sides of the ratio.
pub fn chaos_dp_greedy(
    seq: &RequestSeq,
    report: &DpGreedyReport,
    model: &CostModel,
    plan: &FaultPlan,
) -> FleetChaosReport {
    let mut commodities = Vec::new();
    let mut fault_free_cost = 0.0;
    let mut degraded_cost = 0.0;
    let mut fault = FaultReport::new(0);

    let pkg_model = model.scaled_for_package();
    for pair in &report.pairs {
        let co = seq.package_trace(pair.a, pair.b);
        let out = chaos_replay(&pair.package_schedule, &co, plan, &pkg_model);
        commodities.push(CommodityChaos {
            label: format!("package({}, {})", pair.a, pair.b),
            fault_free: out.fault_free_cost,
            degraded: out.degraded_cost,
            degradation_ratio: out.degradation_ratio,
        });
        fault_free_cost += out.fault_free_cost;
        degraded_cost += out.degraded_cost;
        fault.absorb(&out.report.fault);
    }

    for s in &report.singletons {
        let trace = seq.item_trace(s.item);
        let out = chaos_replay(&s.schedule, &trace, plan, model);
        commodities.push(CommodityChaos {
            label: format!("item {}", s.item),
            fault_free: out.fault_free_cost,
            degraded: out.degraded_cost,
            degradation_ratio: out.degradation_ratio,
        });
        fault_free_cost += out.fault_free_cost;
        degraded_cost += out.degraded_cost;
        fault.absorb(&out.report.fault);
    }

    let degradation_ratio = if fault_free_cost > 0.0 {
        degraded_cost / fault_free_cost
    } else {
        1.0
    };
    fault.cost_inflation = degradation_ratio;
    FleetChaosReport {
        commodities,
        fault_free_cost,
        degraded_cost,
        degradation_ratio,
        fault,
    }
}

/// Solvers whose engine [`Solution`]s the generic chaos replay supports:
/// every `Schedule` part must cover its subject's *full* trace (pair
/// subjects over the pair's co- or union-requests, item subjects over
/// the item's trace). The windowed and multi-item solvers slice or
/// regroup traces, and the aggregate-only online solvers emit no
/// schedules at all — none of them can be replayed generically.
fn solution_is_replayable(solution: &Solution) -> bool {
    !matches!(solution.algo, "windowed" | "multi")
        && solution
            .parts
            .iter()
            .any(|p| matches!(p, SolutionPart::Schedule { .. }))
}

fn part_trace(seq: &RequestSeq, algo: &str, subject: Subject) -> SingleItemTrace {
    match subject {
        // `package_served` packs over the union of the pair's requests;
        // DP_Greedy's package DP runs over strict co-requests.
        Subject::Pair(a, b) if algo == "package_served" => seq.union_trace(ItemId(a), ItemId(b)),
        Subject::Pair(a, b) => seq.package_trace(ItemId(a), ItemId(b)),
        Subject::Item(i) => seq.item_trace(ItemId(i)),
    }
}

/// Replays every explicit schedule of an engine [`Solution`] through the
/// degraded engine under `plan` — the solver-generic successor of
/// [`chaos_dp_greedy`], which it reproduces bit-for-bit on `dp_greedy`
/// solutions. Each schedule part is costed at its own recorded rates
/// (`alpha` is carried over from `model` but unused by the replay).
/// `Serve` and `Aggregate` parts carry no explicit schedule and are
/// excluded from both sides of the ratio.
///
/// Returns `None` for solutions the generic replay cannot express (see
/// `solution_is_replayable`): windowed/multi-item slicing, or purely
/// aggregate online solvers.
pub fn chaos_solution(
    seq: &RequestSeq,
    solution: &Solution,
    model: &CostModel,
    plan: &FaultPlan,
) -> Option<FleetChaosReport> {
    if !solution_is_replayable(solution) {
        return None;
    }
    let mut commodities = Vec::new();
    let mut fault_free_cost = 0.0;
    let mut degraded_cost = 0.0;
    let mut fault = FaultReport::new(0);

    for part in &solution.parts {
        let SolutionPart::Schedule {
            subject,
            schedule,
            mu,
            lambda,
            ..
        } = part
        else {
            continue;
        };
        let trace = part_trace(seq, solution.algo, *subject);
        let part_model = CostModel::new(*mu, *lambda, model.alpha())
            .expect("schedule parts carry valid positive rates");
        let out = chaos_replay(schedule, &trace, plan, &part_model);
        let label = match subject {
            Subject::Pair(a, b) => format!("package({}, {})", ItemId(*a), ItemId(*b)),
            Subject::Item(i) => format!("item {}", ItemId(*i)),
        };
        commodities.push(CommodityChaos {
            label,
            fault_free: out.fault_free_cost,
            degraded: out.degraded_cost,
            degradation_ratio: out.degradation_ratio,
        });
        fault_free_cost += out.fault_free_cost;
        degraded_cost += out.degraded_cost;
        fault.absorb(&out.report.fault);
    }

    let degradation_ratio = if fault_free_cost > 0.0 {
        degraded_cost / fault_free_cost
    } else {
        1.0
    };
    fault.cost_inflation = degradation_ratio;
    Some(FleetChaosReport {
        commodities,
        fault_free_cost,
        degraded_cost,
        degradation_ratio,
        fault,
    })
}

/// Convenience seam for the experiment runners: solves `seq` with any
/// registered solver and pushes the resulting schedules through
/// [`chaos_solution`]. Returns `None` when the solver's solutions are
/// not generically replayable.
pub fn chaos_solver(
    seq: &RequestSeq,
    solver: &dyn CachingSolver,
    ctx: &RunContext,
    plan: &FaultPlan,
) -> Option<FleetChaosReport> {
    chaos_solution(seq, &solver.solve(seq, ctx), &ctx.model(), plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
    use mcs_model::RequestSeqBuilder;

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn fleet_replay_confirms_the_running_example() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let fleet = replay_dp_greedy(&seq, &report, &model).expect("feasible fleet");
        assert_eq!(fleet.commodities.len(), 1); // one package, no singletons
        assert!((fleet.replayed_cost - 8.96).abs() < 1e-9);
        assert!((fleet.bookkept_cost - 6.0).abs() < 1e-9);
        assert!((fleet.total_cost - report.total_cost).abs() < 1e-9);
    }

    #[test]
    fn fleet_replay_covers_singletons_too() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        // θ = 0.99: nothing packs, both items replay as singletons.
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.99));
        let fleet = replay_dp_greedy(&seq, &report, &model).unwrap();
        assert_eq!(fleet.commodities.len(), 2);
        assert_eq!(fleet.bookkept_cost, 0.0);
        assert!((fleet.total_cost - report.total_cost).abs() < 1e-9);
        for c in &fleet.commodities {
            assert!((c.reported - c.replayed).abs() < 1e-9, "{}", c.label);
        }
    }

    #[test]
    fn fleet_chaos_with_no_faults_matches_plain_replay() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let plain = replay_dp_greedy(&seq, &report, &model).unwrap();
        let chaos = chaos_dp_greedy(&seq, &report, &model, &FaultPlan::none());
        assert_eq!(chaos.degradation_ratio, 1.0);
        assert_eq!(
            chaos.degraded_cost.to_bits(),
            chaos.fault_free_cost.to_bits()
        );
        assert!((chaos.fault_free_cost - plain.replayed_cost).abs() < 1e-9);
        assert_eq!(chaos.fault.requests_degraded, 0);
        assert_eq!(chaos.fault.copies_lost, 0);
        assert_eq!(chaos.fault.cost_inflation, 1.0);
    }

    #[test]
    fn fleet_chaos_under_blackout_counts_degradation() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let plan = FaultPlan::total_blackout(seq.servers());
        let chaos = chaos_dp_greedy(&seq, &report, &model, &plan);
        // A blackout is not necessarily *more expensive* — skipped rent can
        // outweigh cheap origin reads — but it must register as degradation.
        assert!(chaos.degradation_ratio > 0.0);
        assert!(chaos.fault.requests_degraded > 0);
        assert!(chaos.fault.intervals_skipped > 0);
        assert_eq!(chaos.fault.cost_inflation, chaos.degradation_ratio);
        assert!(chaos.fault.requests_total >= chaos.fault.requests_degraded);
    }

    #[test]
    fn chaos_solution_reproduces_chaos_dp_greedy_bit_for_bit() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let plan = FaultPlan::random(11, seq.servers(), seq.horizon(), 0.2, 1.0, 0.2);
        let legacy = chaos_dp_greedy(&seq, &report, &model, &plan);

        let ctx = RunContext::new(model).with_theta(0.4);
        let solver = mcs_engine::find("dp_greedy").unwrap();
        let generic = chaos_solver(&seq, solver, &ctx, &plan).expect("dp_greedy is replayable");

        assert_eq!(
            generic.degraded_cost.to_bits(),
            legacy.degraded_cost.to_bits()
        );
        assert_eq!(
            generic.fault_free_cost.to_bits(),
            legacy.fault_free_cost.to_bits()
        );
        assert_eq!(generic.commodities.len(), legacy.commodities.len());
        assert_eq!(generic.fault.copies_lost, legacy.fault.copies_lost);
        assert_eq!(generic.fault.retries, legacy.fault.retries);
    }

    #[test]
    fn chaos_solution_covers_the_offline_registry_and_skips_the_rest() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let ctx = RunContext::new(model).with_theta(0.4);
        let plan = FaultPlan::none();
        for solver in mcs_engine::solvers() {
            let sol = solver.solve(&seq, &ctx);
            let out = chaos_solution(&seq, &sol, &model, &plan);
            match solver.name() {
                "windowed" | "multi" | "online_dpg" | "resilient" | "hetero_exact"
                | "hetero_greedy" | "tiered_waterfall" => {
                    // Aggregate-only (or time-shifted) solutions carry no
                    // generically replayable schedules.
                    assert!(out.is_none(), "{} should be unsupported", solver.name());
                }
                _ => {
                    let fleet = out
                        .unwrap_or_else(|| panic!("{} should replay generically", solver.name()));
                    assert_eq!(fleet.degradation_ratio, 1.0, "{}", solver.name());
                    assert!(fleet.fault_free_cost > 0.0, "{}", solver.name());
                }
            }
        }
    }

    #[test]
    fn fleet_chaos_with_a_brief_crash_before_a_request_inflates_cost() {
        use mcs_model::fault::CrashWindow;
        use mcs_model::time::TimeSpan;
        use mcs_model::ServerId;

        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        // The package schedule caches on s2 over [0.8, 4.0] with a
        // co-request at t = 4.0. A brief outage at [3.9, 3.95) loses the
        // copy 0.1 time units early (rent saved: 0.1·μ_pkg) but forces a
        // repair transfer (λ_pkg) at the request — a strict net loss.
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashWindow {
            server: ServerId(2),
            span: TimeSpan::new(3.9, 3.95),
        });
        let chaos = chaos_dp_greedy(&seq, &report, &model, &plan);
        assert!(
            chaos.degradation_ratio > 1.0,
            "repair should inflate cost, got {}",
            chaos.degradation_ratio
        );
        assert_eq!(chaos.fault.copies_lost, 1);
        assert_eq!(chaos.fault.recaches, 1);
        assert_eq!(chaos.fault.repairs, 1);
        assert!(chaos.fault.mean_time_to_repair > 0.0);
    }
}

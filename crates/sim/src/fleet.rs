//! Fleet-level replay: validate a complete [`DpGreedyReport`] against its
//! request sequence.
//!
//! Every explicit schedule inside the report (package schedules of the
//! packed pairs, per-item schedules of the unpacked singletons) is
//! replayed through the event engine and its cost re-derived; the greedy
//! singleton costs of Phase 2 are bookkeeping upper bounds (each arm is
//! individually realisable — see the `dp-greedy` docs) and are carried
//! through unchanged but reported separately.

use dp_greedy::two_phase::DpGreedyReport;
use mcs_model::{CostModel, RequestSeq};

use crate::replay::{replay, ReplayError};

/// One replayed commodity.
#[derive(Debug, Clone)]
pub struct CommodityCheck {
    /// Human-readable label (`"package(d1,d2)"`, `"item d3"`).
    pub label: String,
    /// Cost reported by the algorithm.
    pub reported: f64,
    /// Cost re-derived by replay.
    pub replayed: f64,
    /// Transfers executed during replay.
    pub transfers: usize,
}

/// Aggregate outcome of a fleet replay.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-commodity checks (everything with an explicit schedule).
    pub commodities: Vec<CommodityCheck>,
    /// Total replayed cost over explicit schedules.
    pub replayed_cost: f64,
    /// Greedy bookkeeping cost carried from the report (no schedule).
    pub bookkept_cost: f64,
    /// `replayed + bookkept` — must equal the report's total.
    pub total_cost: f64,
}

/// Replays every schedule in a DP_Greedy report and cross-checks costs.
///
/// # Errors
///
/// Returns the first [`ReplayError`] if any schedule is physically
/// infeasible, or a synthesized error if a replayed cost disagrees with
/// the reported one beyond tolerance.
pub fn replay_dp_greedy(
    seq: &RequestSeq,
    report: &DpGreedyReport,
    model: &CostModel,
) -> Result<FleetReport, ReplayError> {
    let mut commodities = Vec::new();
    let mut replayed_cost = 0.0;
    let mut bookkept_cost = 0.0;

    let pkg_model = model.scaled_for_package();
    for pair in &report.pairs {
        let co = seq.package_trace(pair.a, pair.b);
        let rep = replay(&pair.package_schedule, &co)?;
        let replayed = rep.cost(pkg_model.mu(), pkg_model.lambda());
        if (replayed - pair.package_cost).abs() > 1e-6 {
            return Err(ReplayError {
                time: co.points.last().map_or(0.0, |p| p.time),
                reason: format!(
                    "package ({}, {}): replayed {replayed} != reported {}",
                    pair.a, pair.b, pair.package_cost
                ),
            });
        }
        commodities.push(CommodityCheck {
            label: format!("package({}, {})", pair.a, pair.b),
            reported: pair.package_cost,
            replayed,
            transfers: rep.transfers,
        });
        replayed_cost += replayed;
        bookkept_cost += pair.a_singleton_cost + pair.b_singleton_cost;
    }

    for s in &report.singletons {
        let trace = seq.item_trace(s.item);
        let rep = replay(&s.schedule, &trace)?;
        let replayed = rep.cost(model.mu(), model.lambda());
        if (replayed - s.cost).abs() > 1e-6 {
            return Err(ReplayError {
                time: trace.points.last().map_or(0.0, |p| p.time),
                reason: format!(
                    "item {}: replayed {replayed} != reported {}",
                    s.item, s.cost
                ),
            });
        }
        commodities.push(CommodityCheck {
            label: format!("item {}", s.item),
            reported: s.cost,
            replayed,
            transfers: rep.transfers,
        });
        replayed_cost += replayed;
    }

    Ok(FleetReport {
        commodities,
        replayed_cost,
        bookkept_cost,
        total_cost: replayed_cost + bookkept_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
    use mcs_model::RequestSeqBuilder;

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn fleet_replay_confirms_the_running_example() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.4));
        let fleet = replay_dp_greedy(&seq, &report, &model).expect("feasible fleet");
        assert_eq!(fleet.commodities.len(), 1); // one package, no singletons
        assert!((fleet.replayed_cost - 8.96).abs() < 1e-9);
        assert!((fleet.bookkept_cost - 6.0).abs() < 1e-9);
        assert!((fleet.total_cost - report.total_cost).abs() < 1e-9);
    }

    #[test]
    fn fleet_replay_covers_singletons_too() {
        let seq = paper_sequence();
        let model = CostModel::paper_example();
        // θ = 0.99: nothing packs, both items replay as singletons.
        let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.99));
        let fleet = replay_dp_greedy(&seq, &report, &model).unwrap();
        assert_eq!(fleet.commodities.len(), 2);
        assert_eq!(fleet.bookkept_cost, 0.0);
        assert!((fleet.total_cost - report.total_cost).abs() < 1e-9);
        for c in &fleet.commodities {
            assert!((c.reported - c.replayed).abs() < 1e-9, "{}", c.label);
        }
    }
}

//! # mcs-sim — event-driven schedule replay
//!
//! Executes an explicit [`mcs_model::Schedule`] against a request trace on
//! a simulated server network, independently of any algorithm's internal
//! bookkeeping:
//!
//! * [`engine`] — a small discrete-event sweep over the schedule's event
//!   times (interval starts/ends, transfers, requests) maintaining the
//!   live-copy set per server.
//! * [`mod@replay`] — full replay with feasibility verification (copies only
//!   appear via origin/transfer/continuation; every request is served) and
//!   cost re-derivation by time integration of the live-copy count —
//!   `cost = rate_cache · ∫ copies(t) dt + cost_transfer · #transfers` —
//!   which must agree with the interval-sum accounting of `mcs-model`.
//! * [`metrics`] — occupancy metrics: peak concurrent copies, per-server
//!   copy time, transfer fan-in/out.
//!
//! Every algorithm in the workspace is cross-checked through this replay
//! path in the integration tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod faults;
pub mod fleet;
mod fuzz;
pub mod metrics;
pub mod replay;

pub use faults::{chaos_replay, degraded_replay, ChaosOutcome, DegradedReport};
pub use fleet::{
    chaos_dp_greedy, chaos_solution, chaos_solver, replay_dp_greedy, CommodityChaos,
    FleetChaosReport, FleetReport,
};
pub use metrics::{FaultReport, ReplayMetrics};
pub use replay::{replay, ReplayError, ReplayReport};

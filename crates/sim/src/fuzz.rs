//! Failure injection: the replay engine must detect every class of
//! physically broken schedule.
//!
//! Starting from provably feasible schedules (the off-line optimum on
//! random traces), each mutation below breaks exactly one physical rule;
//! the replay must reject it — silence would mean the validator has a
//! blind spot that could mask algorithm bugs.

#![cfg(test)]

use proptest::prelude::*;

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId};
use mcs_offline::optimal;

use crate::replay::replay;

fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
    (2u32..=4, 2usize..=10).prop_flat_map(|(m, n)| {
        (
            Just(m),
            proptest::collection::vec(1u32..=80, n),
            proptest::collection::vec(0u32..m, n),
        )
            .prop_map(|(m, mut ticks, servers)| {
                ticks.sort_unstable();
                ticks.dedup();
                let pairs: Vec<(f64, u32)> = ticks
                    .iter()
                    .zip(servers.iter())
                    .map(|(&t, &s)| (t as f64 / 10.0, s))
                    .collect();
                SingleItemTrace::from_pairs(m, &pairs)
            })
    })
}

fn feasible_schedule(trace: &SingleItemTrace) -> Schedule {
    optimal(trace, &CostModel::paper_example()).schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn baseline_schedules_replay_cleanly(trace in trace_strategy()) {
        let s = feasible_schedule(&trace);
        prop_assert!(replay(&s, &trace).is_ok());
    }

    #[test]
    fn dropping_a_transfer_is_detected(trace in trace_strategy(), pick in 0usize..8) {
        let mut s = feasible_schedule(&trace);
        if s.transfers.is_empty() {
            return Ok(()); // all-local schedule; nothing to drop
        }
        let idx = pick % s.transfers.len();
        s.transfers.remove(idx);
        // Either some request loses its serving copy, or a downstream
        // interval loses its anchor; both must be caught.
        prop_assert!(
            replay(&s, &trace).is_err(),
            "dropping transfer {idx} went unnoticed"
        );
    }

    #[test]
    fn shrinking_an_interval_from_the_left_is_detected_or_harmless(
        trace in trace_strategy(),
        pick in 0usize..8,
    ) {
        // Moving an interval's start later can orphan its anchor; the
        // engine must never PANIC and must reject any now-infeasible
        // schedule. (A shrink can also stay feasible when the interval
        // start coincided with a transfer that still covers it; then the
        // replayed cost must simply drop.)
        let mut s = feasible_schedule(&trace);
        if s.intervals.is_empty() {
            return Ok(());
        }
        let idx = pick % s.intervals.len();
        let iv = s.intervals[idx];
        if iv.span.len() < 0.2 {
            return Ok(());
        }
        let new_start = iv.span.start + iv.span.len() / 2.0;
        s.intervals[idx].span = mcs_model::time::TimeSpan::new(new_start, iv.span.end);
        // An Err is the detection we want; a feasible shrink must at least
        // cost strictly less than the original (we removed real cache time).
        if let Ok(rep) = replay(&s, &trace) {
            let orig = feasible_schedule(&trace);
            let orig_cost = replay(&orig, &trace).unwrap().cost(1.0, 1.0);
            prop_assert!(rep.cost(1.0, 1.0) < orig_cost);
        }
    }

    #[test]
    fn rerouting_a_transfer_from_an_empty_server_is_detected(
        trace in trace_strategy(),
        pick in 0usize..8,
    ) {
        let mut s = feasible_schedule(&trace);
        if s.transfers.is_empty() {
            return Ok(());
        }
        let idx = pick % s.transfers.len();
        // Find a server with no copy at the transfer instant.
        let t = s.transfers[idx].time;
        let empty = (0..trace.servers).map(ServerId).find(|&srv| {
            srv != s.transfers[idx].to
                && !s.copy_present(srv, t)
        });
        if let Some(empty) = empty {
            s.transfers[idx].from = empty;
            prop_assert!(replay(&s, &trace).is_err());
        }
    }

    #[test]
    fn erasing_all_intervals_fails_unless_trivial(trace in trace_strategy()) {
        let mut s = feasible_schedule(&trace);
        if s.intervals.is_empty() {
            return Ok(());
        }
        s.intervals.clear();
        // With every cache interval gone, transfers lose their sources (or
        // requests their copies) except in degenerate all-at-origin cases.
        let only_origin_t0 = trace
            .points
            .iter()
            .all(|p| p.server == ServerId::ORIGIN && p.time == 0.0);
        if !only_origin_t0 {
            prop_assert!(replay(&s, &trace).is_err());
        }
    }

    #[test]
    fn replayed_cost_is_stable_under_event_reordering(trace in trace_strategy()) {
        // Shuffling the declaration order of intervals/transfers must not
        // change the replay outcome (the engine orders by time itself).
        let s = feasible_schedule(&trace);
        let mut reversed = s.clone();
        reversed.intervals.reverse();
        reversed.transfers.reverse();
        let a = replay(&s, &trace).unwrap();
        let b = replay(&reversed, &trace).unwrap();
        prop_assert!((a.cost(1.0, 1.0) - b.cost(1.0, 1.0)).abs() < 1e-9);
        prop_assert_eq!(a.transfers, b.transfers);
    }
}

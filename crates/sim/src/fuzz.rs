//! Failure injection: the replay engine must detect every class of
//! physically broken schedule.
//!
//! Starting from provably feasible schedules (the off-line optimum on
//! random traces), each mutation below breaks exactly one physical rule;
//! the replay must reject it — silence would mean the validator has a
//! blind spot that could mask algorithm bugs.
//!
//! Formerly proptest-based; now plain `#[test]`s driven by the in-tree
//! seeded PRNG so the whole suite runs without any registry access. Each
//! test sweeps a fixed number of seeded random instances, which keeps
//! failures exactly reproducible.

#![cfg(test)]

use mcs_model::request::SingleItemTrace;
use mcs_model::rng::Rng;
use mcs_model::{CostModel, Schedule, ServerId};
use mcs_offline::optimal;

use crate::replay::replay;

const CASES: u64 = 128;

/// Random trace: 2–4 servers, 2–10 requests at strictly increasing times.
fn random_trace(rng: &mut Rng) -> SingleItemTrace {
    let m = rng.gen_range(2u32..=4);
    let n = rng.gen_range(2usize..=10);
    let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..=80)).collect();
    ticks.sort_unstable();
    ticks.dedup();
    let pairs: Vec<(f64, u32)> = ticks
        .iter()
        .map(|&t| (f64::from(t) / 10.0, rng.gen_range(0..m)))
        .collect();
    SingleItemTrace::from_pairs(m, &pairs)
}

fn feasible_schedule(trace: &SingleItemTrace) -> Schedule {
    optimal(trace, &CostModel::paper_example()).schedule
}

#[test]
fn baseline_schedules_replay_cleanly() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + case);
        let trace = random_trace(&mut rng);
        let s = feasible_schedule(&trace);
        assert!(replay(&s, &trace).is_ok(), "case {case}");
    }
}

#[test]
fn dropping_a_transfer_is_detected() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + case);
        let trace = random_trace(&mut rng);
        let mut s = feasible_schedule(&trace);
        if s.transfers.is_empty() {
            continue; // all-local schedule; nothing to drop
        }
        let idx = rng.gen_range(0..s.transfers.len());
        s.transfers.remove(idx);
        // Either some request loses its serving copy, or a downstream
        // interval loses its anchor; both must be caught.
        assert!(
            replay(&s, &trace).is_err(),
            "case {case}: dropping transfer {idx} went unnoticed"
        );
    }
}

#[test]
fn shrinking_an_interval_from_the_left_is_detected_or_harmless() {
    // Moving an interval's start later can orphan its anchor; the
    // engine must never PANIC and must reject any now-infeasible
    // schedule. (A shrink can also stay feasible when the interval
    // start coincided with a transfer that still covers it; then the
    // replayed cost must simply drop.)
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + case);
        let trace = random_trace(&mut rng);
        let mut s = feasible_schedule(&trace);
        if s.intervals.is_empty() {
            continue;
        }
        let idx = rng.gen_range(0..s.intervals.len());
        let iv = s.intervals[idx];
        if iv.span.len() < 0.2 {
            continue;
        }
        let new_start = iv.span.start + iv.span.len() / 2.0;
        s.intervals[idx].span = mcs_model::time::TimeSpan::new(new_start, iv.span.end);
        // An Err is the detection we want; a feasible shrink must at least
        // cost strictly less than the original (we removed real cache time).
        if let Ok(rep) = replay(&s, &trace) {
            let orig = feasible_schedule(&trace);
            let orig_cost = replay(&orig, &trace).unwrap().cost(1.0, 1.0);
            assert!(rep.cost(1.0, 1.0) < orig_cost, "case {case}");
        }
    }
}

#[test]
fn rerouting_a_transfer_from_an_empty_server_is_detected() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + case);
        let trace = random_trace(&mut rng);
        let mut s = feasible_schedule(&trace);
        if s.transfers.is_empty() {
            continue;
        }
        let idx = rng.gen_range(0..s.transfers.len());
        // Find a server with no copy at the transfer instant.
        let t = s.transfers[idx].time;
        let empty = (0..trace.servers)
            .map(ServerId)
            .find(|&srv| srv != s.transfers[idx].to && !s.copy_present(srv, t));
        if let Some(empty) = empty {
            s.transfers[idx].from = empty;
            assert!(replay(&s, &trace).is_err(), "case {case}");
        }
    }
}

#[test]
fn erasing_all_intervals_fails_unless_trivial() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + case);
        let trace = random_trace(&mut rng);
        let mut s = feasible_schedule(&trace);
        if s.intervals.is_empty() {
            continue;
        }
        s.intervals.clear();
        // With every cache interval gone, transfers lose their sources (or
        // requests their copies) except in degenerate all-at-origin cases.
        let only_origin_t0 = trace
            .points
            .iter()
            .all(|p| p.server == ServerId::ORIGIN && p.time == 0.0);
        if !only_origin_t0 {
            assert!(replay(&s, &trace).is_err(), "case {case}");
        }
    }
}

#[test]
fn replayed_cost_is_stable_under_event_reordering() {
    // Shuffling the declaration order of intervals/transfers must not
    // change the replay outcome (the engine orders by time itself).
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + case);
        let trace = random_trace(&mut rng);
        let s = feasible_schedule(&trace);
        let mut reversed = s.clone();
        reversed.intervals.reverse();
        reversed.transfers.reverse();
        let a = replay(&s, &trace).unwrap();
        let b = replay(&reversed, &trace).unwrap();
        assert!(
            (a.cost(1.0, 1.0) - b.cost(1.0, 1.0)).abs() < 1e-9,
            "case {case}"
        );
        assert_eq!(a.transfers, b.transfers, "case {case}");
    }
}

//! Replay proper: sweeps the timeline, verifies physics, integrates cost.

use mcs_model::request::SingleItemTrace;
use mcs_model::{approx_eq, Schedule, ServerId, TimePoint};

use crate::engine::{timeline, Network};
use crate::metrics::ReplayMetrics;

/// A replay failure, with the offending instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// When the violation happened.
    pub time: TimePoint,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay failed at t={}: {}", self.time, self.reason)
    }
}

impl std::error::Error for ReplayError {}

/// The outcome of a successful replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// `∫ copies(t) dt` over the replay — must equal the schedule's
    /// interval-length sum.
    pub integrated_cache_time: f64,
    /// Number of transfers executed.
    pub transfers: usize,
    /// Requests served.
    pub served: usize,
    /// Occupancy and traffic metrics.
    pub metrics: ReplayMetrics,
}

impl ReplayReport {
    /// Total cost under `(rate_cache, cost_transfer)`.
    pub fn cost(&self, rate_cache: f64, cost_transfer: f64) -> f64 {
        rate_cache * self.integrated_cache_time + cost_transfer * self.transfers as f64
    }
}

/// Replays `schedule` against `trace`, verifying feasibility event by
/// event and integrating the live-copy count over time.
///
/// Verification rules (the physics of Section III):
///
/// * an interval may open only where a copy is present: the origin
///   placement at `(s_1, 0)`, a transfer arriving at that instant, or an
///   interval already open/closing there at that instant;
/// * a transfer may fire only from a server with a live copy at that
///   instant (origin at `t = 0` counts; same-instant chains resolve in
///   dependency order and bootstrap cycles are rejected);
/// * every request must observe a copy at its server at its time (an
///   open/closing interval or an arriving transfer).
pub fn replay(schedule: &Schedule, trace: &SingleItemTrace) -> Result<ReplayReport, ReplayError> {
    let _span = mcs_obs::span("sim.replay");
    mcs_obs::counter_add("sim.replay.requests", trace.len() as u64);
    mcs_obs::counter_add("sim.replay.intervals", schedule.intervals.len() as u64);
    mcs_obs::counter_add("sim.replay.transfers", schedule.transfers.len() as u64);
    let tl = timeline(schedule, trace);
    let mut net = Network::new(trace.servers);
    let mut metrics = ReplayMetrics::new(trace.servers);

    let mut integrated = 0.0_f64;
    let mut transfers_done = 0usize;
    let mut served = 0usize;
    let mut prev_time = tl.first().map_or(0.0, |i| i.time.min(0.0));

    for instant in &tl {
        let t = instant.time;
        if t < -mcs_model::EPSILON {
            return Err(ReplayError {
                time: t,
                reason: "event before t=0".into(),
            });
        }
        // Integrate occupancy across the gap just swept.
        integrated += net.total_copies() as f64 * (t - prev_time);
        metrics.observe_gap(net.total_copies(), t - prev_time);
        prev_time = t;

        // Presence at this instant, before arrivals: open intervals
        // (including those closing now — they cover their endpoint).
        let alive_now = |net: &Network, s: ServerId| {
            net.has_copy(s) || (s == ServerId::ORIGIN && approx_eq(t, 0.0))
        };

        // Resolve transfers, allowing same-instant chains (fixpoint).
        let mut arrived: Vec<ServerId> = Vec::new();
        let mut pending: Vec<usize> = instant.transfers.clone();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&ti| {
                let tr = &schedule.transfers[ti];
                let source_live = alive_now(&net, tr.from) || arrived.contains(&tr.from);
                if source_live {
                    arrived.push(tr.to);
                    transfers_done += 1;
                    metrics.observe_transfer(tr.from, tr.to);
                    false
                } else {
                    true
                }
            });
            if pending.len() == before {
                let tr = &schedule.transfers[pending[0]];
                return Err(ReplayError {
                    time: t,
                    reason: format!("transfer {} -> {} has no live source copy", tr.from, tr.to),
                });
            }
        }

        // Open intervals (anchoring: a copy must be present).
        for &ii in &instant.starts {
            let iv = &schedule.intervals[ii];
            let anchored = alive_now(&net, iv.server)
                || arrived.contains(&iv.server)
                // Another interval opening at the same instant at the same
                // server whose anchor is independently valid: handled by
                // treating simultaneous opens at an anchored server — we
                // simply require at least one non-interval anchor per
                // (server, instant) group, which `alive_now`/`arrived`
                // already express.
                ;
            if !anchored {
                return Err(ReplayError {
                    time: t,
                    reason: format!("interval at {} opens with no copy source", iv.server),
                });
            }
            net.open(iv.server);
        }

        // Serve requests.
        for &ri in &instant.requests {
            let p = &trace.points[ri];
            let ok = net.has_copy(p.server)
                || arrived.contains(&p.server)
                || (p.server == ServerId::ORIGIN && approx_eq(t, 0.0));
            if !ok {
                return Err(ReplayError {
                    time: t,
                    reason: format!("request at {} not served", p.server),
                });
            }
            served += 1;
        }

        // Close intervals.
        for &ii in &instant.ends {
            net.close(schedule.intervals[ii].server);
        }
    }

    if served != trace.len() {
        // Requests outside the timeline can't happen (they are part of it),
        // but guard against future refactors.
        return Err(ReplayError {
            time: prev_time,
            reason: format!("served {served} of {} requests", trace.len()),
        });
    }

    Ok(ReplayReport {
        integrated_cache_time: integrated,
        transfers: transfers_done,
        served,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::CostModel;
    use mcs_offline::{greedy::greedy, optimal};

    #[test]
    fn replay_agrees_with_interval_sum_accounting() {
        let trace =
            SingleItemTrace::from_pairs(4, &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (4.0, 2)]);
        let model = CostModel::paper_example();
        let out = optimal(&trace, &model);
        let rep = replay(&out.schedule, &trace).expect("optimal schedule replays");
        assert!(approx_eq(
            rep.integrated_cache_time,
            out.schedule.cache_time()
        ));
        assert!(approx_eq(rep.cost(1.0, 1.0), out.cost));
        assert_eq!(rep.served, trace.len());
    }

    #[test]
    fn replay_validates_greedy_schedules_too() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (1.2, 2), (3.0, 1), (3.1, 0)]);
        let model = CostModel::paper_example();
        let g = greedy(&trace, &model);
        let rep = replay(&g.schedule, &trace).expect("greedy schedule replays");
        assert!(approx_eq(rep.cost(1.0, 1.0), g.cost));
    }

    #[test]
    fn detects_unserved_requests() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let s = Schedule::new();
        let err = replay(&s, &trace).unwrap_err();
        assert!(err.reason.contains("not served"), "{err}");
    }

    #[test]
    fn detects_sourceless_transfers() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 2)]);
        let mut s = Schedule::new();
        s.transfer(ServerId(1), ServerId(2), 1.0);
        let err = replay(&s, &trace).unwrap_err();
        assert!(err.reason.contains("no live source"), "{err}");
    }

    #[test]
    fn detects_unanchored_intervals() {
        let trace = SingleItemTrace::from_pairs(2, &[(2.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(1), 1.0, 2.0);
        let err = replay(&s, &trace).unwrap_err();
        assert!(err.reason.contains("no copy source"), "{err}");
    }

    #[test]
    fn same_instant_transfer_chains_resolve() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 2)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0)
            .transfer(ServerId(1), ServerId(2), 1.0) // listed out of order
            .transfer(ServerId(0), ServerId(1), 1.0);
        let rep = replay(&s, &trace).expect("chain should resolve");
        assert_eq!(rep.transfers, 2);
    }

    #[test]
    fn bootstrap_cycles_are_rejected() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 2)]);
        let mut s = Schedule::new();
        s.transfer(ServerId(1), ServerId(2), 1.0)
            .transfer(ServerId(2), ServerId(1), 1.0);
        assert!(replay(&s, &trace).is_err());
    }

    #[test]
    fn occupancy_integration_counts_multiple_copies() {
        // Two parallel intervals of length 1 → integral 2.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0)
            .transfer(ServerId(0), ServerId(1), 1.0);
        // Add a second copy epoch at s1 via an overlapping interval.
        s.cache(ServerId(0), 0.0, 1.0);
        let rep = replay(&s, &trace).unwrap();
        assert!(approx_eq(rep.integrated_cache_time, 2.0));
        assert_eq!(rep.metrics.peak_copies, 2);
    }
}

//! The discrete-event sweep: schedule and trace events grouped by time
//! instant, in deterministic order.

use mcs_model::request::SingleItemTrace;
use mcs_model::time::total_cmp;
use mcs_model::{Schedule, ServerId, TimePoint};

/// One event in the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A cache interval opens at a server (index into `schedule.intervals`).
    IntervalStart(usize),
    /// A cache interval closes (index into `schedule.intervals`).
    IntervalEnd(usize),
    /// A transfer fires (index into `schedule.transfers`).
    Transfer(usize),
    /// A request must be served (index into `trace.points`).
    Request(usize),
}

/// All events at one time instant, pre-partitioned by kind.
#[derive(Debug, Clone, Default)]
pub struct Instant {
    /// The shared time.
    pub time: TimePoint,
    /// Intervals opening here.
    pub starts: Vec<usize>,
    /// Transfers firing here.
    pub transfers: Vec<usize>,
    /// Requests due here.
    pub requests: Vec<usize>,
    /// Intervals closing here.
    pub ends: Vec<usize>,
}

/// Builds the time-grouped event timeline for a schedule/trace pair.
///
/// Times within `EPSILON` of each other are merged into one instant so
/// that the standard-form convention — transfers, servings and interval
/// boundaries coinciding at request times — resolves consistently.
pub fn timeline(schedule: &Schedule, trace: &SingleItemTrace) -> Vec<Instant> {
    let mut events: Vec<(TimePoint, Event)> = Vec::new();
    for (i, iv) in schedule.intervals.iter().enumerate() {
        events.push((iv.span.start, Event::IntervalStart(i)));
        events.push((iv.span.end, Event::IntervalEnd(i)));
    }
    for (i, tr) in schedule.transfers.iter().enumerate() {
        events.push((tr.time, Event::Transfer(i)));
    }
    for (i, p) in trace.points.iter().enumerate() {
        events.push((p.time, Event::Request(i)));
    }
    events.sort_by(|a, b| total_cmp(a.0, b.0));

    let mut out: Vec<Instant> = Vec::new();
    for (t, ev) in events {
        let fresh = match out.last() {
            Some(last) => (t - last.time).abs() > mcs_model::EPSILON,
            None => true,
        };
        if fresh {
            out.push(Instant {
                time: t,
                ..Default::default()
            });
        }
        let slot = out.last_mut().expect("just ensured non-empty");
        match ev {
            Event::IntervalStart(i) => slot.starts.push(i),
            Event::Transfer(i) => slot.transfers.push(i),
            Event::Request(i) => slot.requests.push(i),
            Event::IntervalEnd(i) => slot.ends.push(i),
        }
    }
    out
}

/// The live-copy state of the network during the sweep.
#[derive(Debug, Clone)]
pub struct Network {
    /// Number of open cache intervals per server.
    open: Vec<u32>,
}

impl Network {
    /// A network of `m` servers with no live copies.
    pub fn new(servers: u32) -> Self {
        Network {
            open: vec![0; servers as usize],
        }
    }

    /// True if any interval is open at `server`.
    #[inline]
    pub fn has_copy(&self, server: ServerId) -> bool {
        self.open[server.index()] > 0
    }

    /// Total number of live copies (open intervals) network-wide.
    pub fn total_copies(&self) -> u32 {
        self.open.iter().sum()
    }

    /// Opens an interval at `server`.
    pub fn open(&mut self, server: ServerId) {
        self.open[server.index()] += 1;
    }

    /// Closes an interval at `server`.
    ///
    /// # Panics
    ///
    /// Panics if no interval is open there — the replay validates schedule
    /// well-formedness before closing.
    pub fn close(&mut self, server: ServerId) {
        assert!(
            self.open[server.index()] > 0,
            "closing an interval at {server} with none open"
        );
        self.open[server.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_groups_coincident_events() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0)
            .transfer(ServerId(0), ServerId(1), 1.0);
        let tl = timeline(&s, &trace);
        // Instants: t=0 (start), t=1 (transfer + request + end).
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].starts, vec![0]);
        assert_eq!(tl[1].transfers, vec![0]);
        assert_eq!(tl[1].requests, vec![0]);
        assert_eq!(tl[1].ends, vec![0]);
    }

    #[test]
    fn timeline_is_time_sorted() {
        let trace = SingleItemTrace::from_pairs(2, &[(0.5, 0), (2.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 2.0)
            .transfer(ServerId(0), ServerId(1), 2.0);
        let tl = timeline(&s, &trace);
        for w in tl.windows(2) {
            assert!(w[0].time < w[1].time);
        }
    }

    #[test]
    fn network_tracks_open_counts() {
        let mut n = Network::new(3);
        assert!(!n.has_copy(ServerId(1)));
        n.open(ServerId(1));
        n.open(ServerId(1));
        n.open(ServerId(2));
        assert!(n.has_copy(ServerId(1)));
        assert_eq!(n.total_copies(), 3);
        n.close(ServerId(1));
        assert!(n.has_copy(ServerId(1)));
        n.close(ServerId(1));
        assert!(!n.has_copy(ServerId(1)));
    }

    #[test]
    #[should_panic(expected = "none open")]
    fn closing_unopened_interval_panics() {
        let mut n = Network::new(2);
        n.close(ServerId(0));
    }
}

//! Bounded ring-buffer journal of structured lifecycle events.
//!
//! Where [`crate::metrics`] answers "how much / how fast", the journal
//! answers "what happened, in what order": a process-global ring of
//! `{seq, t_mono, kind, epoch, fields…}` events that the serving daemon
//! records at every epoch lifecycle transition (admit-reject,
//! epoch-open, settle-*, checkpoint-write, WAL-rotate,
//! recovery-replay). The ring is bounded ([`set_capacity`], default
//! [`DEFAULT_CAPACITY`]) so a long-lived daemon holds a constant-size
//! tail, and the tail is cheap to copy out for a `GET /journal?n=K`
//! scrape or a `dpg top` view.
//!
//! Determinism contract (the one the byte-identity gates rely on): the
//! JSONL encoding of an event is a pure function of the event, with a
//! fixed key order (`seq`, `t_mono`, `kind`, `epoch`, then fields in
//! recording order) and the shortest-round-trip float writer of
//! [`crate::jsonl`]. Wall-clock nondeterminism is isolated to the single
//! designated `t_mono` key (monotonic seconds since process start);
//! every other key is determined by the request stream and epoch
//! boundaries, so two runs' journals compare equal once `t_mono` is
//! stripped.
//!
//! Threading contract: recording takes one global mutex. Events are
//! epoch-frequency (plus admission rejects), never per-admitted-request,
//! so the lock is off every hot path; recording is additionally gated on
//! the same enable flag as the metrics registry
//! ([`crate::metrics::enabled`]), so a disabled process pays one relaxed
//! atomic load per call site.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::jsonl;
use crate::metrics;

/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 1024;

/// One structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, epochs, indices).
    U64(u64),
    /// Float (costs, durations); non-finite values encode as `null`.
    F64(f64),
    /// Free-form text (rejection reasons, statuses).
    Str(String),
}

/// One journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number, assigned at recording (never reused,
    /// survives ring eviction — gaps in a tail reveal how much was lost).
    pub seq: u64,
    /// Monotonic seconds since process start — the designated wall-clock
    /// key; everything else in the event is deterministic.
    pub t_mono: f64,
    /// Event kind (the taxonomy is documented in DESIGN §12).
    pub kind: &'static str,
    /// The epoch this event belongs to, if any.
    pub epoch: Option<u64>,
    /// Additional fields, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Deterministic single-line JSON encoding (no trailing newline):
    /// fixed key order, `t_mono` isolated as the only wall-clock key.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"seq\":{},\"t_mono\":", self.seq);
        jsonl::push_num(&mut s, self.t_mono);
        s.push_str(",\"kind\":");
        jsonl::push_str(&mut s, self.kind);
        if let Some(e) = self.epoch {
            let _ = write!(s, ",\"epoch\":{e}");
        }
        for (name, value) in &self.fields {
            s.push(',');
            jsonl::push_str(&mut s, name);
            s.push(':');
            match value {
                Value::U64(v) => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(v) => jsonl::push_num(&mut s, *v),
                Value::Str(v) => jsonl::push_str(&mut s, v),
            }
        }
        s.push('}');
        s
    }
}

struct Ring {
    next_seq: u64,
    capacity: usize,
    events: VecDeque<Event>,
}

impl Ring {
    fn push(
        &mut self,
        t_mono: f64,
        kind: &'static str,
        epoch: Option<u64>,
        fields: Vec<(&'static str, Value)>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(Event {
            seq,
            t_mono,
            kind,
            epoch,
            fields,
        });
        seq
    }

    fn tail(&self, n: usize) -> Vec<Event> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).cloned().collect()
    }
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    next_seq: 0,
    capacity: DEFAULT_CAPACITY,
    events: VecDeque::new(),
});

/// Monotonic seconds since the first call in this process — the clock
/// behind every `t_mono` (shared with the serving layer's telemetry
/// gauges so ages computed across them are coherent).
pub fn now_t_mono() -> f64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Records one event (no-op while recording is disabled; see
/// [`metrics::set_enabled`]). Returns the assigned sequence number, or
/// `None` when disabled.
pub fn record(
    kind: &'static str,
    epoch: Option<u64>,
    fields: Vec<(&'static str, Value)>,
) -> Option<u64> {
    if !metrics::enabled() {
        return None;
    }
    let t_mono = now_t_mono();
    let mut ring = RING.lock().expect("obs journal mutex");
    Some(ring.push(t_mono, kind, epoch, fields))
}

/// The last `n` events, oldest first.
pub fn tail(n: usize) -> Vec<Event> {
    RING.lock().expect("obs journal mutex").tail(n)
}

/// The last `n` events as JSONL (one event per line, oldest first).
pub fn tail_jsonl(n: usize) -> String {
    let mut out = String::new();
    for e in tail(n) {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Number of events currently retained (≤ capacity).
pub fn len() -> usize {
    RING.lock().expect("obs journal mutex").events.len()
}

/// Re-bounds the ring, evicting oldest events if shrinking. A capacity
/// of 0 is clamped to 1 (the journal always retains the latest event).
pub fn set_capacity(n: usize) {
    let n = n.max(1);
    let mut ring = RING.lock().expect("obs journal mutex");
    ring.capacity = n;
    while ring.events.len() > n {
        ring.events.pop_front();
    }
}

/// Clears the ring and resets the sequence counter (tests and one-shot
/// CLI inspection runs; a live daemon never resets).
pub fn reset() {
    let mut ring = RING.lock().expect("obs journal mutex");
    ring.events.clear();
    ring.next_seq = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global and tests run threaded, so each test
    // uses its own event kinds and never asserts on global emptiness or
    // absolute sequence numbers.

    #[test]
    fn events_encode_deterministically_with_fixed_key_order() {
        let e = Event {
            seq: 7,
            t_mono: 1.5,
            kind: "settle-ok",
            epoch: Some(3),
            fields: vec![
                ("cost", Value::F64(14.96)),
                ("requests", Value::U64(64)),
                ("note", Value::Str("a\"b".into())),
            ],
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"seq\":7,\"t_mono\":1.5,\"kind\":\"settle-ok\",\"epoch\":3,\
             \"cost\":14.96,\"requests\":64,\"note\":\"a\\\"b\"}"
        );
        // Epoch-less events omit the key; non-finite floats are null.
        let e = Event {
            seq: 0,
            t_mono: 0.0,
            kind: "boot",
            epoch: None,
            fields: vec![("ratio", Value::F64(f64::NAN))],
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"seq\":0,\"t_mono\":0,\"kind\":\"boot\",\"ratio\":null}"
        );
    }

    #[test]
    fn recording_assigns_monotone_seqs_and_tail_returns_newest() {
        let a = record("test-journal-seq", Some(1), vec![]).unwrap();
        let b = record("test-journal-seq", Some(2), vec![]).unwrap();
        assert!(b > a);
        let tail: Vec<Event> = tail(usize::MAX)
            .into_iter()
            .filter(|e| e.kind == "test-journal-seq")
            .collect();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].epoch, Some(1));
        assert_eq!(tail[1].epoch, Some(2));
        assert!(tail[0].t_mono <= tail[1].t_mono);
    }

    #[test]
    fn the_ring_is_bounded_and_seqs_survive_eviction() {
        // A local ring (not the global one) so capacity is testable
        // without racing parallel tests.
        let mut ring = Ring {
            next_seq: 0,
            capacity: 3,
            events: VecDeque::new(),
        };
        for i in 0..5 {
            assert_eq!(ring.push(0.0, "evict", Some(i), vec![]), i);
        }
        assert_eq!(ring.events.len(), 3);
        let tail = ring.tail(usize::MAX);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted, seqs never reused"
        );
        assert_eq!(
            ring.tail(2).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn disabled_recording_is_dropped() {
        metrics::set_enabled(false);
        assert_eq!(record("test-journal-disabled", None, vec![]), None);
        metrics::set_enabled(true);
        assert!(tail(usize::MAX)
            .iter()
            .all(|e| e.kind != "test-journal-disabled"));
    }
}

//! Counter/histogram registry with thread-local collection.
//!
//! Recording goes to a thread-local buffer (no lock on the hot path); the
//! buffer merges into a process-global aggregate when the thread exits —
//! which covers the scoped worker threads spawned by
//! `mcs_experiments::par::par_map` — or when [`snapshot`] drains the
//! calling thread's buffer. All recording is gated on one relaxed
//! [`AtomicBool`], so with observability disabled the cost of an
//! instrumented call site is a single atomic load.
//!
//! Names are `&'static str` by design: every instrumentation point in the
//! workspace uses a literal (e.g. `"dpg.phase1.jaccard"`), which keeps the
//! registry allocation-free per observation and the snapshots
//! deterministically ordered (BTreeMap).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Summary statistics of one histogram (we keep moments, not buckets:
/// phase timers need count/total/mean/min/max, and a fixed-size summary
/// keeps the hot path allocation-free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation ([`f64::INFINITY`] when empty).
    pub min: f64,
    /// Largest observation ([`f64::NEG_INFINITY`] when empty).
    pub max: f64,
}

impl HistSummary {
    fn new() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &HistSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistSummary>,
}

impl Registry {
    fn merge_into(&mut self, target: &mut Registry) {
        for (k, v) in std::mem::take(&mut self.counters) {
            *target.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in std::mem::take(&mut self.hists) {
            target
                .hists
                .entry(k)
                .or_insert_with(HistSummary::new)
                .merge(&h);
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static GLOBAL: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    hists: BTreeMap::new(),
});

/// Thread-local buffer; its [`Drop`] (at thread exit) folds the buffer
/// into the global aggregate so worker-thread metrics are not lost.
struct LocalBuffer(RefCell<Registry>);

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        let mut local = self.0.borrow_mut();
        if let Ok(mut global) = GLOBAL.lock() {
            local.merge_into(&mut global);
        }
    }
}

thread_local! {
    static LOCAL: LocalBuffer = LocalBuffer(RefCell::new(Registry::default()));
}

/// True when metric recording is on (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording. Used by the bench harness to
/// measure obs-on vs. obs-off overhead, and available to callers that
/// want strictly zero instrumentation cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `delta` to the named counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|b| {
        *b.0.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Records one observation into the named histogram (for spans the unit
/// is seconds; counters of work per call use their natural unit).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|b| {
        b.0.borrow_mut()
            .hists
            .entry(name)
            .or_insert_with(HistSummary::new)
            .observe(value);
    });
}

/// A point-in-time copy of the aggregated metrics, deterministically
/// ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram summaries by name.
    pub hists: Vec<(&'static str, HistSummary)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(k, _)| *k == name).map(|(_, h)| h)
    }
}

/// Drains the calling thread's buffer into the global aggregate and
/// returns a copy of the aggregate. (Other *live* threads' buffers merge
/// when they exit; the scoped-thread pattern used across the workspace
/// joins workers before their results are read, so snapshots taken after
/// a parallel section see everything.)
pub fn snapshot() -> MetricsSnapshot {
    let mut global = GLOBAL.lock().expect("obs metrics mutex");
    LOCAL.with(|b| b.0.borrow_mut().merge_into(&mut global));
    MetricsSnapshot {
        counters: global.counters.iter().map(|(&k, &v)| (k, v)).collect(),
        hists: global.hists.iter().map(|(&k, &h)| (k, h)).collect(),
    }
}

/// Clears the global aggregate and the calling thread's buffer.
pub fn reset() {
    let mut global = GLOBAL.lock().expect("obs metrics mutex");
    *global = Registry::default();
    LOCAL.with(|b| *b.0.borrow_mut() = Registry::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests share it; each test uses
    // its own metric names and does not assert on global emptiness.

    #[test]
    fn counters_and_hists_accumulate() {
        counter_add("test.counter.a", 2);
        counter_add("test.counter.a", 3);
        observe("test.hist.a", 1.0);
        observe("test.hist.a", 3.0);
        let s = snapshot();
        assert_eq!(s.counter("test.counter.a"), Some(5));
        let h = s.hist("test.hist.a").expect("hist recorded");
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn worker_thread_metrics_merge_on_exit() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter_add("test.counter.threads", 1));
            }
        });
        let s = snapshot();
        assert_eq!(s.counter("test.counter.threads"), Some(4));
    }

    #[test]
    fn disabled_recording_is_dropped() {
        set_enabled(false);
        counter_add("test.counter.disabled", 10);
        observe("test.hist.disabled", 1.0);
        set_enabled(true);
        let s = snapshot();
        assert_eq!(s.counter("test.counter.disabled"), None);
        assert!(s.hist("test.hist.disabled").is_none());
    }
}

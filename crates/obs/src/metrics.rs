//! Counter/histogram registry with thread-local collection.
//!
//! Recording goes to a thread-local buffer (no lock on the hot path); the
//! buffer merges into a process-global aggregate when the thread exits —
//! which covers the scoped worker threads spawned by
//! `mcs_experiments::par::par_map` — or when [`snapshot`] drains the
//! calling thread's buffer. All recording is gated on one relaxed
//! [`AtomicBool`], so with observability disabled the cost of an
//! instrumented call site is a single atomic load.
//!
//! Names are `&'static str` by design: every instrumentation point in the
//! workspace uses a literal (e.g. `"dpg.phase1.jaccard"`), which keeps the
//! registry allocation-free per observation and the snapshots
//! deterministically ordered (BTreeMap).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::buckets;

/// Number of power-of-two magnitude buckets kept per histogram — the
/// fixed grid of [`crate::buckets`] (bucket `i` covers
/// `[2^(i-40), 2^(i-39))`, ~1 ns to ~2^23 s in seconds).
pub const HIST_BUCKETS: usize = buckets::BUCKETS;

/// Summary statistics of one histogram: moments (count/total/mean/
/// min/max, what phase timers need) plus a fixed table of power-of-two
/// magnitude buckets so tail quantiles (p99 admission latency, say) can
/// be estimated without keeping every observation. Fixed-size by design:
/// the hot path stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation ([`f64::INFINITY`] when empty).
    pub min: f64,
    /// Largest observation ([`f64::NEG_INFINITY`] when empty).
    pub max: f64,
    /// Observation counts per power-of-two magnitude bucket.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSummary {
    /// An empty summary. Public so standalone consumers (tests, exporters,
    /// offline analysis) can build histograms outside the registry.
    pub fn new() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[buckets::index_of(v)] += 1;
    }

    fn merge(&mut self, other: &HistSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q <= 1`), from the magnitude buckets:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the observed `[min, max]` range. The
    /// estimate is exact to within a factor of 2 (one bucket), which is
    /// what a latency gate needs. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        buckets::quantile(&self.buckets, self.count, q, self.min, self.max)
    }
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary::new()
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    fcounters: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, HistSummary>,
}

impl Registry {
    fn merge_into(&mut self, target: &mut Registry) {
        for (k, v) in std::mem::take(&mut self.counters) {
            *target.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in std::mem::take(&mut self.fcounters) {
            *target.fcounters.entry(k).or_insert(0.0) += v;
        }
        for (k, h) in std::mem::take(&mut self.hists) {
            target.hists.entry(k).or_default().merge(&h);
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static GLOBAL: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    fcounters: BTreeMap::new(),
    hists: BTreeMap::new(),
});

/// Gauges are last-write-wins point-in-time values (queue depth, lag,
/// WAL size). Unlike counters/histograms they cannot merge per-thread —
/// "last write" needs a global order — so sets go straight to one global
/// map. Gauge updates are rare (per epoch, not per request), so the lock
/// is off every hot path.
static GAUGES: Mutex<BTreeMap<&'static str, f64>> = Mutex::new(BTreeMap::new());

/// Thread-local buffer; its [`Drop`] (at thread exit) folds the buffer
/// into the global aggregate so worker-thread metrics are not lost.
struct LocalBuffer(RefCell<Registry>);

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        let mut local = self.0.borrow_mut();
        if let Ok(mut global) = GLOBAL.lock() {
            local.merge_into(&mut global);
        }
    }
}

thread_local! {
    static LOCAL: LocalBuffer = LocalBuffer(RefCell::new(Registry::default()));
}

/// True when metric recording is on (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording. Used by the bench harness to
/// measure obs-on vs. obs-off overhead, and available to callers that
/// want strictly zero instrumentation cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `delta` to the named counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|b| {
        *b.0.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Adds `delta` to the named *float* counter — a monotone accumulator of
/// a real-valued quantity (settled cost, say), exported as a Prometheus
/// counter so rates are derivable from scrapes. Per-thread partials merge
/// by float addition in thread-exit order; call sites that need
/// bit-deterministic totals (the serving daemon does) must record from a
/// single thread.
#[inline]
pub fn fcounter_add(name: &'static str, delta: f64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|b| {
        *b.0.borrow_mut().fcounters.entry(name).or_insert(0.0) += delta;
    });
}

/// Records one observation into the named histogram (for spans the unit
/// is seconds; counters of work per call use their natural unit).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|b| {
        b.0.borrow_mut()
            .hists
            .entry(name)
            .or_default()
            .observe(value);
    });
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    if let Ok(mut g) = GAUGES.lock() {
        g.insert(name, value);
    }
}

/// A point-in-time copy of the aggregated metrics, deterministically
/// ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Float-counter values by name (monotone real-valued accumulators).
    pub fcounters: Vec<(&'static str, f64)>,
    /// Histogram summaries by name.
    pub hists: Vec<(&'static str, HistSummary)>,
    /// Gauge values by name (last write wins).
    pub gauges: Vec<(&'static str, f64)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a float counter by name.
    pub fn fcounter(&self, name: &str) -> Option<f64> {
        self.fcounters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(k, _)| *k == name).map(|(_, h)| h)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }
}

/// Drains the calling thread's buffer into the global aggregate without
/// copying the aggregate out. Threads that record but never snapshot —
/// the serving daemon's ingest thread, say — call this at natural
/// boundaries (epoch settlement) so concurrent readers on *other*
/// threads (the telemetry scrape endpoint) see their recordings.
pub fn flush_local() {
    let mut global = GLOBAL.lock().expect("obs metrics mutex");
    LOCAL.with(|b| b.0.borrow_mut().merge_into(&mut global));
}

/// Drains the calling thread's buffer into the global aggregate and
/// returns a copy of the aggregate. (Other *live* threads' buffers merge
/// when they exit; the scoped-thread pattern used across the workspace
/// joins workers before their results are read, so snapshots taken after
/// a parallel section see everything.)
pub fn snapshot() -> MetricsSnapshot {
    let mut global = GLOBAL.lock().expect("obs metrics mutex");
    LOCAL.with(|b| b.0.borrow_mut().merge_into(&mut global));
    MetricsSnapshot {
        counters: global.counters.iter().map(|(&k, &v)| (k, v)).collect(),
        fcounters: global.fcounters.iter().map(|(&k, &v)| (k, v)).collect(),
        hists: global.hists.iter().map(|(&k, &h)| (k, h)).collect(),
        gauges: GAUGES
            .lock()
            .map(|g| g.iter().map(|(&k, &v)| (k, v)).collect())
            .unwrap_or_default(),
    }
}

/// Clears the global aggregate, the gauges, and the calling thread's
/// buffer.
pub fn reset() {
    let mut global = GLOBAL.lock().expect("obs metrics mutex");
    *global = Registry::default();
    LOCAL.with(|b| *b.0.borrow_mut() = Registry::default());
    if let Ok(mut g) = GAUGES.lock() {
        g.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests share it; each test uses
    // its own metric names and does not assert on global emptiness.

    #[test]
    fn counters_and_hists_accumulate() {
        counter_add("test.counter.a", 2);
        counter_add("test.counter.a", 3);
        observe("test.hist.a", 1.0);
        observe("test.hist.a", 3.0);
        let s = snapshot();
        assert_eq!(s.counter("test.counter.a"), Some(5));
        let h = s.hist("test.hist.a").expect("hist recorded");
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn worker_thread_metrics_merge_on_exit() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter_add("test.counter.threads", 1));
            }
        });
        let s = snapshot();
        assert_eq!(s.counter("test.counter.threads"), Some(4));
    }

    #[test]
    fn disabled_recording_is_dropped() {
        set_enabled(false);
        counter_add("test.counter.disabled", 10);
        fcounter_add("test.fcounter.disabled", 1.0);
        observe("test.hist.disabled", 1.0);
        gauge_set("test.gauge.disabled", 3.0);
        set_enabled(true);
        let s = snapshot();
        assert_eq!(s.counter("test.counter.disabled"), None);
        assert_eq!(s.fcounter("test.fcounter.disabled"), None);
        assert!(s.hist("test.hist.disabled").is_none());
        assert_eq!(s.gauge("test.gauge.disabled"), None);
    }

    #[test]
    fn float_counters_accumulate_across_threads() {
        fcounter_add("test.fcounter.cost", 1.5);
        fcounter_add("test.fcounter.cost", 0.25);
        std::thread::scope(|s| {
            s.spawn(|| fcounter_add("test.fcounter.cost", 0.5));
        });
        let s = snapshot();
        assert_eq!(s.fcounter("test.fcounter.cost"), Some(2.25));
        assert_eq!(s.fcounter("test.fcounter.nope"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        gauge_set("test.gauge.lag", 5.0);
        gauge_set("test.gauge.lag", 2.0);
        let s = snapshot();
        assert_eq!(s.gauge("test.gauge.lag"), Some(2.0));
        assert_eq!(s.gauge("test.gauge.nope"), None);
    }

    #[test]
    fn quantiles_bound_the_tail_within_a_bucket() {
        // 99 fast observations and one slow outlier: p50 must stay near
        // the fast mass, p99+ must reach the outlier's bucket.
        for _ in 0..99 {
            observe("test.hist.quantile", 1e-4);
        }
        observe("test.hist.quantile", 1.0);
        let s = snapshot();
        let h = s.hist("test.hist.quantile").expect("hist recorded");
        assert_eq!(h.count, 100);
        let p50 = h.quantile(0.5);
        assert!((1e-4..2e-4).contains(&p50), "p50 = {p50}");
        // With exactly 1% of mass in the top bucket, p99's rank (99) still
        // lands in the fast bucket and p100 reaches the outlier.
        assert!(h.quantile(0.99) < 1e-3);
        assert_eq!(h.quantile(1.0), 1.0); // clamped to max
    }

    #[test]
    fn quantile_edge_cases() {
        let s0 = HistSummary::new();
        assert_eq!(s0.quantile(0.99), 0.0);
        observe("test.hist.qedge", 0.0); // non-positive lands in bucket 0
        observe("test.hist.qedge", f64::NAN); // and so do non-finite values
        let s = snapshot();
        let h = s.hist("test.hist.qedge").expect("hist recorded");
        assert_eq!(h.buckets[0], 2);
        // Quantiles stay within [min, max] by the clamp.
        assert_eq!(h.quantile(0.5), 0.0);
    }
}

//! Zero-dependency Prometheus text-format (exposition format 0.0.4)
//! encoder for [`MetricsSnapshot`].
//!
//! Determinism contract: the same snapshot always renders to the same
//! bytes. Families are emitted counters first (integer and float
//! counters unified), then gauges, then histograms, each section sorted
//! by exposed name; floats use Rust's shortest-round-trip `Display`.
//! The encoder itself is pure — any nondeterminism in an exposition
//! (latency-valued histograms, `*_t_mono` gauges) enters through the
//! snapshot's *values*, never through the encoding.
//!
//! Naming: dotted registry names map to Prometheus names by replacing
//! every character outside `[a-zA-Z0-9_:]` with `_`
//! (`serve.admit_seconds` → `serve_admit_seconds`); counters gain the
//! conventional `_total` suffix. Distinct registry names that collide
//! after sanitisation would merge in the eyes of a scraper — the
//! workspace's literal names are chosen not to.
//!
//! Histograms are exported with the fixed log₂ grid of
//! [`crate::buckets`] as cumulative `_bucket{le="…"}` series. Empty
//! buckets are elided (the series is cumulative, so an absent `le` is
//! recoverable as the previous bound's value); the `le="+Inf"` bucket,
//! `_sum` and `_count` are always present.

use std::fmt::Write as _;

use crate::buckets;
use crate::metrics::MetricsSnapshot;

/// Maps a registry metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and a
/// leading digit is prefixed with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders one `f64` sample value. Prometheus accepts `NaN`, `+Inf` and
/// `-Inf` as literals, unlike JSON.
fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Encodes a snapshot as Prometheus text exposition (version 0.0.4):
/// one `# TYPE` line per family, deterministic section and name order.
pub fn prometheus_text(s: &MetricsSnapshot) -> String {
    let mut out = String::new();

    // Counters: u64 and f64 counters form one section, sorted by the
    // exposed (sanitised, `_total`-suffixed) name.
    let mut counters: Vec<(String, String)> = Vec::new();
    for &(name, v) in &s.counters {
        counters.push((format!("{}_total", sanitize(name)), v.to_string()));
    }
    for &(name, v) in &s.fcounters {
        let mut val = String::new();
        push_value(&mut val, v);
        counters.push((format!("{}_total", sanitize(name)), val));
    }
    counters.sort();
    for (name, val) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {val}");
    }

    let mut gauges: Vec<(String, f64)> = s
        .gauges
        .iter()
        .map(|&(name, v)| (sanitize(name), v))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, v) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        out.push_str(name);
        out.push(' ');
        push_value(&mut out, *v);
        out.push('\n');
    }

    let mut hists: Vec<(String, &crate::metrics::HistSummary)> = s
        .hists
        .iter()
        .map(|(name, h)| (sanitize(name), h))
        .collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, h) in &hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let cum = buckets::cumulative(&h.buckets);
        for (i, &c) in cum.iter().enumerate() {
            if h.buckets[i] == 0 {
                continue; // elided: cumulative series, empty bucket
            }
            let _ = write!(out, "{name}_bucket{{le=\"");
            push_value(&mut out, buckets::upper_bound(i));
            let _ = writeln!(out, "\"}} {c}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        out.push_str(name);
        out.push_str("_sum ");
        push_value(&mut out, h.sum);
        out.push('\n');
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSummary;

    #[test]
    fn names_are_sanitized_onto_the_prometheus_grammar() {
        assert_eq!(sanitize("serve.admit_seconds"), "serve_admit_seconds");
        assert_eq!(sanitize("dpg.phase1.jaccard"), "dpg_phase1_jaccard");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn sample_values_use_prometheus_literals_for_non_finite() {
        let mut s = String::new();
        push_value(&mut s, f64::NAN);
        s.push(' ');
        push_value(&mut s, f64::INFINITY);
        s.push(' ');
        push_value(&mut s, f64::NEG_INFINITY);
        s.push(' ');
        push_value(&mut s, 2.5);
        assert_eq!(s, "NaN +Inf -Inf 2.5");
    }

    #[test]
    fn exposition_is_deterministically_ordered_and_typed() {
        let mut h = HistSummary::new();
        h.observe(0.25);
        let snap = crate::metrics::MetricsSnapshot {
            counters: vec![("b.count", 2), ("a.count", 1)],
            fcounters: vec![("a.cost", 1.5)],
            gauges: vec![("z.gauge", 0.5)],
            hists: vec![("lat.seconds", h)],
        };
        let text = prometheus_text(&snap);
        let expected = "\
# TYPE a_cost_total counter
a_cost_total 1.5
# TYPE a_count_total counter
a_count_total 1
# TYPE b_count_total counter
b_count_total 2
# TYPE z_gauge gauge
z_gauge 0.5
# TYPE lat_seconds histogram
lat_seconds_bucket{le=\"0.5\"} 1
lat_seconds_bucket{le=\"+Inf\"} 1
lat_seconds_sum 0.25
lat_seconds_count 1
";
        assert_eq!(text, expected);
        // Pure function: same snapshot, same bytes.
        assert_eq!(prometheus_text(&snap), text);
    }
}

//! RAII wall-clock timers feeding the histogram registry.
//!
//! A [`Span`] records `Instant::now()` on creation and, on drop, observes
//! the elapsed seconds into the histogram named at creation. When
//! recording is disabled ([`crate::metrics::set_enabled`]) no clock is
//! read at all, so a span costs one relaxed atomic load.

use std::time::Instant;

use crate::metrics;

/// Wall-clock timer for one named phase; observes elapsed seconds into
/// the metrics registry when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    /// `None` when recording was disabled at creation time.
    start: Option<Instant>,
}

impl Span {
    /// Starts a span named `name`. Prefer the free function [`span()`].
    pub fn new(name: &'static str) -> Self {
        let start = if metrics::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span { name, start }
    }

    /// Seconds elapsed since the span started (0 when disabled).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            metrics::observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Starts a wall-clock span; the returned guard records on drop.
///
/// ```
/// let _guard = mcs_obs::span("dpg.phase1.jaccard");
/// // ... timed work ...
/// ```
#[must_use = "a span records its duration when dropped; binding it to _ drops immediately"]
pub fn span(name: &'static str) -> Span {
    Span::new(name)
}

/// Times a closure under `name` and returns its result.
pub fn time_phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = Span::new(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram() {
        {
            let _g = span("test.span.basic");
        }
        let s = metrics::snapshot();
        let h = s.hist("test.span.basic").expect("span recorded");
        assert!(h.count >= 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn time_phase_returns_closure_result() {
        let v = time_phase("test.span.closure", || 41 + 1);
        assert_eq!(v, 42);
        let s = metrics::snapshot();
        assert!(s.hist("test.span.closure").is_some());
    }

    #[test]
    fn disabled_span_records_nothing() {
        metrics::set_enabled(false);
        {
            let _g = span("test.span.disabled");
        }
        metrics::set_enabled(true);
        let s = metrics::snapshot();
        assert!(s.hist("test.span.disabled").is_none());
    }
}

//! The fixed log₂ bucket grid shared by histograms and their exporters.
//!
//! Every bucketed histogram in the workspace uses the *same* fixed
//! boundaries: bucket `i` covers `[2^(i-40), 2^(i-39))`, so with
//! observations in seconds the grid spans ~1 ns to ~2^23 s. Fixed (rather
//! than adaptive) boundaries are what make the buckets exportable: two
//! scrapes of the same histogram, or two histograms from different
//! processes, can be merged or compared bucket-by-bucket, and a
//! Prometheus-style consumer can aggregate `le` series across instances.
//!
//! Quantile estimates read off this grid are exact to within one bucket
//! width (a factor of 2), which is what latency gates and live dashboards
//! need — without retaining a single sample.

/// Number of buckets in the grid.
pub const BUCKETS: usize = 64;

/// Exponent offset: bucket `i` has lower bound `2^(i - OFFSET)`.
const OFFSET: i32 = 40;

/// Bucket index of one observation: `floor(log2(v)) + 40`, clamped to
/// the table. Non-positive and non-finite values (including NaN) land in
/// bucket 0.
pub fn index_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        // NaN also lands here: it fails `is_finite`.
        return 0;
    }
    let e = v.log2().floor() + OFFSET as f64;
    if e < 0.0 {
        0
    } else {
        (e as usize).min(BUCKETS - 1)
    }
}

/// Upper (exclusive) bound of bucket `i` — the value reported for
/// quantiles landing in that bucket, and the `le` label of its
/// Prometheus-style cumulative series.
pub fn upper_bound(i: usize) -> f64 {
    2f64.powi(i as i32 - (OFFSET - 1))
}

/// Cumulative (≤ upper bound) counts for a bucket table — the form the
/// Prometheus exposition emits.
pub fn cumulative(buckets: &[u64; BUCKETS]) -> [u64; BUCKETS] {
    let mut out = [0u64; BUCKETS];
    let mut seen = 0u64;
    for (o, &c) in out.iter_mut().zip(buckets.iter()) {
        seen += c;
        *o = seen;
    }
    out
}

/// Estimated `q`-quantile (`0 < q <= 1`) from a bucket table: the upper
/// bound of the first bucket whose cumulative count reaches
/// `ceil(q * count)`, clamped to the observed `[min, max]` range. Exact
/// to within one bucket width. Returns 0 when `count` is 0.
pub fn quantile(buckets: &[u64; BUCKETS], count: u64, q: f64, min: f64, max: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return upper_bound(i).clamp(min, max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_a_fixed_power_of_two_grid() {
        // Bucket i covers [2^(i-40), 2^(i-39)).
        for i in 0..BUCKETS {
            let lo = 2f64.powi(i as i32 - OFFSET);
            assert_eq!(index_of(lo), i);
            assert_eq!(upper_bound(i), 2.0 * lo);
            // Just below the upper bound stays in the bucket.
            assert_eq!(index_of(upper_bound(i) * 0.999), i);
        }
        // The last bucket absorbs everything above the grid.
        assert_eq!(index_of(1e30), BUCKETS - 1);
    }

    #[test]
    fn degenerate_observations_land_in_bucket_zero() {
        assert_eq!(index_of(0.0), 0);
        assert_eq!(index_of(-1.0), 0);
        assert_eq!(index_of(f64::NAN), 0);
        assert_eq!(index_of(f64::INFINITY), 0);
        assert_eq!(index_of(1e-300), 0); // below the grid
    }

    #[test]
    fn cumulative_is_a_prefix_sum() {
        let mut b = [0u64; BUCKETS];
        b[3] = 2;
        b[10] = 5;
        let c = cumulative(&b);
        assert_eq!(c[2], 0);
        assert_eq!(c[3], 2);
        assert_eq!(c[9], 2);
        assert_eq!(c[10], 7);
        assert_eq!(c[BUCKETS - 1], 7);
    }
}

//! The decision ledger: structured cost-attribution events.
//!
//! Every cache interval, transfer, and package delivery an algorithm
//! commits to becomes one [`LedgerEvent`] carrying the option it chose,
//! the costs of the options it chose *between* (`option_costs`, indexed
//! by [`OPTION_NAMES`] = cache/transfer/package, infeasible options
//! `f64::INFINITY`), the decision time `t`, and the cost actually paid.
//! Summing `cost` over a ledger reconciles with the producing schedule's
//! `total_cost` — property-tested at the workspace root — and
//! [`Ledger::breakdown`] attributes the total to the three cost channels
//! the paper's figures vary.
//!
//! Ledgers are *derived* from algorithm outputs (explicit schedules and
//! recorded arm choices) by `mcs-offline::ledger` and `dp-greedy::ledger`,
//! not logged inline; this module only defines the event model and the
//! deterministic JSON-lines encoding.

use crate::jsonl;

/// Names of the three option slots in [`LedgerEvent::option_costs`],
/// in slot order.
pub const OPTION_NAMES: [&str; 3] = ["cache", "transfer", "package"];

/// What a ledger event is about: a single item or a packed pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subject {
    /// A single cached item.
    Item(u32),
    /// A packed pair of items (Phase-2 package events).
    Pair(u32, u32),
}

/// One committed decision with its cost attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Producing algorithm, e.g. `"dp_greedy"`, `"optimal"`, `"greedy"`.
    pub algo: &'static str,
    /// Algorithm phase, e.g. `"phase1"`, `"phase2.package"`, `"serve"`.
    pub phase: &'static str,
    /// The item or pair the decision concerns.
    pub subject: Subject,
    /// The option committed to: `"cache"`, `"transfer"`, or `"package"`.
    pub option_chosen: &'static str,
    /// Cost of each option at decision time, in [`OPTION_NAMES`] slot
    /// order; `f64::INFINITY` marks an option that was infeasible or not
    /// offered (rendered as `null` in JSON).
    pub option_costs: [f64; 3],
    /// Decision time (for cache intervals, the interval end — the point
    /// by which the full interval cost has been paid).
    pub t: f64,
    /// Cost actually paid for this decision.
    pub cost: f64,
}

impl LedgerEvent {
    /// Renders the event as one JSON object (no trailing newline) with a
    /// fixed key order, deterministically byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"algo\":");
        jsonl::push_str(&mut s, self.algo);
        s.push_str(",\"phase\":");
        jsonl::push_str(&mut s, self.phase);
        match self.subject {
            Subject::Item(i) => {
                s.push_str(",\"item\":");
                let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{i}"));
            }
            Subject::Pair(a, b) => {
                s.push_str(",\"pair\":[");
                let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{a},{b}"));
                s.push(']');
            }
        }
        s.push_str(",\"option_chosen\":");
        jsonl::push_str(&mut s, self.option_chosen);
        s.push_str(",\"option_costs\":[");
        for (i, &c) in self.option_costs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            jsonl::push_num(&mut s, c);
        }
        s.push_str("],\"t\":");
        jsonl::push_num(&mut s, self.t);
        s.push_str(",\"cost\":");
        jsonl::push_num(&mut s, self.cost);
        s.push('}');
        s
    }
}

/// Total cost attributed to each of the three channels.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Cost of cache intervals (μ·time, or 2αμ·time inside packages).
    pub cache: f64,
    /// Cost of transfers (λ each, or 2αλ inside packages).
    pub transfer: f64,
    /// Cost of package deliveries chosen by the serve-time greedy (2αλ).
    pub package_delivery: f64,
}

impl CostBreakdown {
    /// Sum of the three channels — equals the ledger's total cost.
    pub fn total(&self) -> f64 {
        self.cache + self.transfer + self.package_delivery
    }
}

/// An ordered sequence of [`LedgerEvent`]s produced by one algorithm run.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// The events, in the deterministic order the deriver emits them.
    pub events: Vec<LedgerEvent>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: LedgerEvent) {
        self.events.push(event);
    }

    /// Appends all events of `other`.
    pub fn extend(&mut self, other: Ledger) {
        self.events.extend(other.events);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of event costs — reconciles with the producing schedule's
    /// total cost (property-tested at the workspace root).
    pub fn total_cost(&self) -> f64 {
        self.events.iter().map(|e| e.cost).sum()
    }

    /// Attributes the total cost to the three channels by
    /// `option_chosen`.
    pub fn breakdown(&self) -> CostBreakdown {
        let mut b = CostBreakdown::default();
        for e in &self.events {
            match e.option_chosen {
                "cache" => b.cache += e.cost,
                "transfer" => b.transfer += e.cost,
                _ => b.package_delivery += e.cost,
            }
        }
        b
    }

    /// Renders the ledger as JSON lines (one event per line, trailing
    /// newline), byte-deterministic for a given event sequence.
    pub fn to_jsonl_string(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 160);
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSON-lines rendering to `w`.
    pub fn write_jsonl(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(self.to_jsonl_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(chosen: &'static str, cost: f64) -> LedgerEvent {
        LedgerEvent {
            algo: "test",
            phase: "serve",
            subject: Subject::Item(1),
            option_chosen: chosen,
            option_costs: [1.0, 2.0, f64::INFINITY],
            t: 3.5,
            cost,
        }
    }

    #[test]
    fn totals_and_breakdown_reconcile() {
        let mut l = Ledger::new();
        l.push(ev("cache", 1.0));
        l.push(ev("transfer", 2.0));
        l.push(ev("package", 1.6));
        assert!((l.total_cost() - 4.6).abs() < 1e-12);
        let b = l.breakdown();
        assert_eq!(b.cache, 1.0);
        assert_eq!(b.transfer, 2.0);
        assert_eq!(b.package_delivery, 1.6);
        assert!((b.total() - l.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn json_encoding_is_stable() {
        let e = ev("cache", 1.0);
        assert_eq!(
            e.to_json(),
            "{\"algo\":\"test\",\"phase\":\"serve\",\"item\":1,\
             \"option_chosen\":\"cache\",\"option_costs\":[1,2,null],\
             \"t\":3.5,\"cost\":1}"
        );
        let p = LedgerEvent {
            subject: Subject::Pair(4, 7),
            ..ev("package", 1.6)
        };
        assert!(p.to_json().contains("\"pair\":[4,7]"));
    }

    #[test]
    fn jsonl_rendering_is_one_line_per_event() {
        let mut l = Ledger::new();
        l.push(ev("cache", 1.0));
        l.push(ev("transfer", 2.0));
        let s = l.to_jsonl_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.ends_with('\n'));
        // Byte-determinism: rendering twice is identical.
        assert_eq!(s, l.to_jsonl_string());
    }
}

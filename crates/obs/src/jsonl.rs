//! Deterministic JSON fragment writers for the JSON-lines sink.
//!
//! The obs crate sits below `mcs-model` in the dependency graph, so it
//! cannot use `mcs_model::json`; the handful of primitives the ledger
//! needs live here instead. Determinism contract: the same value always
//! renders to the same bytes (Rust's `f64` `Display` is the shortest
//! round-trip representation, which is platform-independent), so two runs
//! of the same seeded workload produce byte-identical event streams — the
//! property the `obs-smoke` CI job diffs for.

use std::fmt::Write as _;

/// Appends a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number; non-finite values (used by the ledger for
/// infeasible/not-offered options) render as `null`.
pub fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_and_infinities_are_null() {
        let mut s = String::new();
        push_num(&mut s, 1.5);
        s.push(' ');
        push_num(&mut s, 3.0);
        s.push(' ');
        push_num(&mut s, f64::INFINITY);
        s.push(' ');
        push_num(&mut s, f64::NAN);
        assert_eq!(s, "1.5 3 null null");
    }

    /// Regression: every non-finite `f64` must render as `null` — `NaN`,
    /// `inf` and `-inf` are not JSON tokens, and a single such fragment
    /// would make a whole journal/ledger line unparsable downstream.
    #[test]
    fn every_non_finite_value_is_null_and_finite_edges_stay_numbers() {
        for v in [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX * 2.0, // overflows to +inf
        ] {
            let mut s = String::new();
            push_num(&mut s, v);
            assert_eq!(s, "null", "non-finite {v} must encode as null");
        }
        // Finite extremes stay valid JSON numbers (no inf/exponent-free
        // surprises from the shortest-round-trip writer).
        for v in [f64::MAX, f64::MIN_POSITIVE, 5e-324, -0.0] {
            let mut s = String::new();
            push_num(&mut s, v);
            assert_ne!(s, "null");
            assert!(
                s.parse::<f64>().is_ok() && !s.contains("inf") && !s.contains("NaN"),
                "{v} rendered as {s}"
            );
        }
    }
}

//! Deterministic JSON fragment writers for the JSON-lines sink.
//!
//! The obs crate sits below `mcs-model` in the dependency graph, so it
//! cannot use `mcs_model::json`; the handful of primitives the ledger
//! needs live here instead. Determinism contract: the same value always
//! renders to the same bytes (Rust's `f64` `Display` is the shortest
//! round-trip representation, which is platform-independent), so two runs
//! of the same seeded workload produce byte-identical event streams — the
//! property the `obs-smoke` CI job diffs for.

use std::fmt::Write as _;

/// Appends a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number; non-finite values (used by the ledger for
/// infeasible/not-offered options) render as `null`.
pub fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_and_infinities_are_null() {
        let mut s = String::new();
        push_num(&mut s, 1.5);
        s.push(' ');
        push_num(&mut s, 3.0);
        s.push(' ');
        push_num(&mut s, f64::INFINITY);
        s.push(' ');
        push_num(&mut s, f64::NAN);
        assert_eq!(s, "1.5 3 null null");
    }
}

//! # mcs-obs — observability for the DP_Greedy stack
//!
//! The paper's evaluation (Figs. 9–13) is entirely about *where cost
//! goes* — caching vs. transfer vs. package delivery as `θ`, `α` and the
//! trace shape vary — and the ROADMAP's production north star needs
//! wall-clock attribution on top. This crate provides both, with zero
//! external dependencies (the build is offline; see DESIGN.md):
//!
//! * [`metrics`] — a lightweight span/counter/histogram registry with
//!   **thread-local collection**: each thread accumulates into its own
//!   buffer, which is merged into a global aggregate when the thread
//!   exits (covering the scoped worker threads of `mcs-experiments::par`)
//!   or when a [`metrics::snapshot`] is taken. Recording is gated by one
//!   relaxed atomic so disabled overhead is a single load.
//! * [`span`](mod@span) — RAII wall-clock timers feeding the registry;
//!   this is how Phase-1 Jaccard/sort/pack vs. Phase-2 serve timings are
//!   threaded through `dp-greedy::two_phase`, `mcs-offline::optimal{,_fast}`,
//!   `mcs-online` and `mcs-sim::replay`.
//! * [`ledger`] — the **decision ledger**: every cache-interval, transfer
//!   and package-delivery choice as a structured event
//!   `{algo, phase, item/pair, option_chosen, option_costs[3], t, cost}`
//!   whose summed cost provably reconciles with the schedule's
//!   `total_cost` (property-tested in `tests/ledger_reconciliation.rs`).
//! * [`jsonl`] — a deterministic JSON-lines sink: the same run always
//!   produces byte-identical output (enforced by the `obs-smoke` CI job).
//! * [`buckets`] — the fixed log₂ bucket grid shared by every histogram,
//!   so p50/p99 are exportable without retaining samples and bucket
//!   tables from different scrapes/processes merge cleanly.
//! * [`expo`] — a zero-dependency Prometheus text-format encoder for
//!   [`MetricsSnapshot`] (counters/gauges/histograms with `# TYPE`
//!   lines, deterministic name order).
//! * [`journal`] — a bounded ring-buffer **event journal** of structured
//!   lifecycle events `{seq, t_mono, kind, epoch, fields…}` with a
//!   deterministic JSONL encoding; wall-clock nondeterminism is isolated
//!   to the designated `t_mono` key. This is what turns the crate from a
//!   batch profiler into a live observability plane (`dpg serve
//!   --telemetry-addr` + `dpg top`).
//!
//! The ledger is *derived* from algorithm outputs (explicit schedules and
//! recorded arm choices) rather than logged inline, so event emission is
//! deterministic, costs nothing when unused, and reconciliation is a
//! theorem about the outputs rather than a logging convention.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buckets;
pub mod expo;
pub mod journal;
pub mod jsonl;
pub mod ledger;
pub mod metrics;
pub mod span;

pub use expo::prometheus_text;
pub use ledger::{CostBreakdown, Ledger, LedgerEvent, Subject};
pub use metrics::{
    counter_add, enabled, fcounter_add, flush_local, gauge_set, observe, reset, set_enabled,
    snapshot, MetricsSnapshot,
};
pub use span::{span, time_phase, Span};

//! Append-only write-ahead log, one file per epoch.
//!
//! Every admitted request is appended (and flushed) to
//! `wal-<epoch>.log` *before* it is applied to in-memory state, and every
//! epoch settlement appends a `settle` record *before* its outcome is
//! applied — so the log, replayed on top of the last checkpoint, always
//! reconstructs the exact pre-crash state. Records are newline-framed
//! text with floats written in shortest-round-trip form (times) or raw
//! bit patterns (settlement costs), so replay is bit-exact.
//!
//! Torn tails are expected, not fatal: `kill -9` mid-append leaves a
//! final line without its newline (or an unparsable fragment), which
//! [`read_records`] discards — the half-written record was by
//! construction never applied, so dropping it is the correct recovery.
//! Recovery then physically truncates the fragment ([`truncate_torn`])
//! before reopening the log for append, so the next record cannot be
//! concatenated onto the torn bytes into one malformed merged line.
//! Corruption *before* the tail is structural damage and is reported as
//! an error instead of silently skipped.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use mcs_model::{ItemId, ServerId};

use crate::protocol::{parse_line, Frame};

/// How an epoch was settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochStatus {
    /// The solver returned within its deadline.
    Ok,
    /// The solver missed the settlement deadline; last-good placement
    /// fallback pricing was applied.
    Deadline,
    /// The solver panicked (isolated by `catch_unwind`); fallback applied.
    Panic,
}

impl EpochStatus {
    /// Stable on-disk / display label.
    pub fn label(self) -> &'static str {
        match self {
            EpochStatus::Ok => "ok",
            EpochStatus::Deadline => "deadline",
            EpochStatus::Panic => "panic",
        }
    }

    /// True for the two fallback (degraded) outcomes.
    pub fn is_degraded(self) -> bool {
        !matches!(self, EpochStatus::Ok)
    }

    fn from_label(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(EpochStatus::Ok),
            "deadline" => Some(EpochStatus::Deadline),
            "panic" => Some(EpochStatus::Panic),
            _ => None,
        }
    }
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An admitted request (items already validated, sorted, deduped).
    Req {
        /// Admission time.
        time: f64,
        /// Requesting server.
        server: ServerId,
        /// Sorted, duplicate-free item set.
        items: Vec<ItemId>,
    },
    /// The settlement outcome of this file's epoch — always the final
    /// record of a completed epoch log.
    Settle {
        /// How the epoch settled.
        status: EpochStatus,
        /// The settled epoch cost, as raw `f64` bits for exact replay.
        cost_bits: u64,
    },
}

impl WalRecord {
    fn to_line(&self) -> String {
        match self {
            WalRecord::Req {
                time,
                server,
                items,
            } => {
                let csv = items
                    .iter()
                    .map(|i| i.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                // `{:?}` is shortest-round-trip: replay parses the same bits.
                format!("req {time:?} {} {csv}\n", server.0)
            }
            WalRecord::Settle { status, cost_bits } => {
                format!("settle {} {cost_bits:016x}\n", status.label())
            }
        }
    }

    fn parse(text: &str) -> Option<WalRecord> {
        let mut words = text.split_ascii_whitespace();
        match words.next()? {
            "settle" => {
                let status = EpochStatus::from_label(words.next()?)?;
                let cost_bits = u64::from_str_radix(words.next()?, 16).ok()?;
                if words.next().is_some() {
                    return None;
                }
                Some(WalRecord::Settle { status, cost_bits })
            }
            // `req` lines are exactly protocol frames; reuse that parser.
            _ => match parse_line(text, 0).ok()?? {
                Frame::Req {
                    time,
                    server,
                    items,
                } => Some(WalRecord::Req {
                    time,
                    server,
                    items,
                }),
                Frame::Hello { .. } => None,
            },
        }
    }
}

/// The log path of one epoch within the serve directory.
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// An open, appendable epoch log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens (creating if absent) the log of `epoch` for appending —
    /// both the live path and the recovery path land here, so a replayed
    /// epoch keeps appending to its existing file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(dir: &Path, epoch: u64) -> std::io::Result<Wal> {
        let path = wal_path(dir, epoch);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { file, path })
    }

    /// Appends one record and flushes it to the OS before returning —
    /// the durability point the daemon's write ordering relies on.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.file.write_all(record.to_line().as_bytes())?;
        self.file.flush()
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The parsed contents of one epoch log: the records, plus whether a torn
/// tail was discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct WalContents {
    /// Complete, well-formed records in append order.
    pub records: Vec<WalRecord>,
    /// True if a half-written final line was discarded.
    pub torn: bool,
    /// Byte length of the parsed prefix — the file offset right after the
    /// last complete record. When `torn`, everything past this offset is
    /// the discarded fragment; [`truncate_torn`] cuts the file here.
    pub valid_len: u64,
}

/// Reads the log of `epoch`, tolerating a torn tail. A missing file is an
/// empty log (the crash window between checkpoint rename and first
/// append of the next epoch).
///
/// # Errors
///
/// Propagates filesystem failures; reports malformed records *before*
/// the final line as corruption ([`std::io::ErrorKind::InvalidData`]).
pub fn read_records(dir: &Path, epoch: u64) -> std::io::Result<WalContents> {
    let path = wal_path(dir, epoch);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalContents {
                records: Vec::new(),
                torn: false,
                valid_len: 0,
            })
        }
        Err(e) => return Err(e),
    };
    // Lossy: a torn multi-byte write can leave invalid UTF-8 in the tail;
    // the replacement characters then simply fail the final-line parse.
    // Every parsed record line is pure ASCII, so replacement expansion can
    // only happen *after* the valid prefix — text offsets within it equal
    // file offsets, which is what makes `valid_len` a file truncation point.
    let text = String::from_utf8_lossy(&bytes);
    let complete_len = text.rfind('\n').map_or(0, |p| p + 1);
    let mut torn = complete_len < text.len();
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let complete = &text[..complete_len];
    let n_lines = complete.split_inclusive('\n').count();
    for (i, raw) in complete.split_inclusive('\n').enumerate() {
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        match WalRecord::parse(line) {
            Some(r) => {
                records.push(r);
                valid_len += raw.len();
            }
            // A malformed *final* complete line is still a torn tail
            // (e.g. the crash landed inside the line and the next run's
            // bytes were never written); anything earlier is corruption.
            None if i + 1 == n_lines => torn = true,
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "corrupt WAL record at {}:{}: `{line}`",
                        path.display(),
                        i + 1
                    ),
                ))
            }
        }
    }
    Ok(WalContents {
        records,
        torn,
        valid_len: valid_len as u64,
    })
}

/// Truncates the log of `epoch` to its valid prefix (the `valid_len`
/// reported by [`read_records`]), physically dropping a torn tail.
/// Recovery calls this before reopening the log for append: without it
/// the next record would be concatenated onto the fragment, producing a
/// malformed merged line that a later recovery reads as mid-log
/// corruption (or silently drops if it happens to be the final line).
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn truncate_torn(dir: &Path, epoch: u64, valid_len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(wal_path(dir, epoch))?;
    file.set_len(valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpg-wal-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Req {
                time: 0.1 + 0.2, // deliberately non-representable: bit test
                server: ServerId(3),
                items: vec![ItemId(0), ItemId(7)],
            },
            WalRecord::Req {
                time: 2.0,
                server: ServerId(0),
                items: vec![ItemId(1)],
            },
            WalRecord::Settle {
                status: EpochStatus::Deadline,
                cost_bits: 4.75_f64.to_bits(),
            },
        ]
    }

    #[test]
    fn append_then_replay_is_exact() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(&dir, 0).unwrap();
        let recs = sample_records();
        for r in &recs {
            wal.append(r).unwrap();
        }
        drop(wal);
        let back = read_records(&dir, 0).unwrap();
        assert!(!back.torn);
        assert_eq!(back.records, recs);
        match (&back.records[0], &recs[0]) {
            (WalRecord::Req { time: a, .. }, WalRecord::Req { time: b, .. }) => {
                assert_eq!(a.to_bits(), b.to_bits(), "time must replay bit-exactly");
            }
            _ => unreachable!(),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, 5).unwrap();
        for r in &sample_records()[..2] {
            wal.append(r).unwrap();
        }
        drop(wal);
        // Simulate kill -9 mid-append: a record missing its newline…
        let path = wal_path(&dir, 5);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"req 3.0 1 0,");
        std::fs::write(&path, &bytes).unwrap();
        let back = read_records(&dir, 5).unwrap();
        assert!(back.torn);
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.valid_len, clean_len);
        // …and a complete-but-garbled final line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - b"req 3.0 1 0,".len());
        bytes.extend_from_slice(b"req 3.0 1 0,\xff\xfe\n");
        std::fs::write(&path, &bytes).unwrap();
        let back = read_records(&dir, 5).unwrap();
        assert!(back.torn);
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.valid_len, clean_len);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_makes_a_torn_log_appendable_again() {
        let dir = tmp_dir("truncate");
        let mut wal = Wal::open(&dir, 9).unwrap();
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        drop(wal);
        let path = wal_path(&dir, 9);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"req 3.0 1 0,");
        std::fs::write(&path, &bytes).unwrap();
        let back = read_records(&dir, 9).unwrap();
        assert!(back.torn);
        truncate_torn(&dir, 9, back.valid_len).unwrap();
        // An append after truncation starts on a fresh line — the merged
        // malformed record the untruncated log would have produced.
        let mut wal = Wal::open(&dir, 9).unwrap();
        wal.append(&recs[1]).unwrap();
        drop(wal);
        let back = read_records(&dir, 9).unwrap();
        assert!(!back.torn);
        assert_eq!(back.records, recs[..2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let dir = tmp_dir("corrupt");
        std::fs::write(
            wal_path(&dir, 1),
            "req 1.0 0 0\ngarbage line\nreq 2.0 0 0\n",
        )
        .unwrap();
        let err = read_records(&dir, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_log_is_empty() {
        let dir = tmp_dir("missing");
        let back = read_records(&dir, 42).unwrap();
        assert_eq!(
            back,
            WalContents {
                records: vec![],
                torn: false,
                valid_len: 0
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

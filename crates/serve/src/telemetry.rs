//! The live telemetry plane: Prometheus-style exposition and the journal
//! tail, served over a std-only TCP control endpoint or published to a
//! file at epoch boundaries.
//!
//! The daemon's request path stays untouched: a scrape snapshots the
//! process-global `mcs_obs` registry and journal from the listener
//! thread, so serving telemetry costs the serving loop nothing. The
//! endpoint is a hand-rolled minimal HTTP/1.0 responder — the build
//! carries no network or async dependencies (DESIGN §6), and two routes
//! don't need a framework:
//!
//! ```text
//! GET /metrics        → Prometheus text exposition (format 0.0.4)
//! GET /journal?n=K    → last K journal events as JSONL (default 32)
//! ```
//!
//! Determinism: the exposition encoder and journal encoding are pure
//! (see `mcs_obs::expo` / `mcs_obs::journal`). The renderer appends one
//! scrape-time gauge, `serve_scrape_t_mono` — together with
//! `serve_last_checkpoint_t_mono` and the latency-valued `*_seconds`
//! histograms these are the *designated wall-clock keys* (DESIGN §12);
//! every other line is determined by the request stream and epoch
//! boundaries.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Journal events returned by `GET /journal` when no `?n=` is given.
pub const DEFAULT_JOURNAL_TAIL: usize = 32;

/// Renders the current metrics as Prometheus text exposition, with the
/// designated scrape-time gauge `serve_scrape_t_mono` (monotonic seconds
/// since process start, same clock as the journal's `t_mono`) appended
/// so consumers can compute ages and rates without a local clock.
pub fn metrics_text() -> String {
    let mut out = mcs_obs::prometheus_text(&mcs_obs::snapshot());
    out.push_str("# TYPE serve_scrape_t_mono gauge\n");
    out.push_str(&format!(
        "serve_scrape_t_mono {}\n",
        mcs_obs::journal::now_t_mono()
    ));
    out
}

/// Renders the last `n` journal events as JSONL.
pub fn journal_text(n: usize) -> String {
    mcs_obs::journal::tail_jsonl(n)
}

/// Atomically publishes the current exposition to `path` — temporary
/// file then rename, like the checkpoint — for socketless environments.
/// The daemon calls this at every epoch boundary.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn publish_file(path: &Path) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, metrics_text())?;
    std::fs::rename(&tmp, path)
}

/// The TCP control endpoint: one listener thread serving `/metrics` and
/// `/journal`, shut down (and joined) on drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `spec` (`HOST:PORT`; port 0 picks a free one) and starts
    /// the listener thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(spec: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dpg-telemetry".into())
            .spawn(move || serve_loop(listener, stop2))?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if the
        // connect fails the listener is already gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Scrapes are rare operator traffic: handling them inline on the
        // listener thread bounds resource use at one connection.
        let _ = handle_conn(stream);
    }
}

/// Reads one request head (bounded), routes it, writes one response.
fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
                    break;
                }
            }
            Err(_) => break, // timeout or reset: respond to what we have
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut words = request_line.split_ascii_whitespace();
    let (method, target) = (words.next().unwrap_or(""), words.next().unwrap_or(""));
    let (status, content_type, body) = route(method, target);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

fn route(method: &str, target: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return ("405 Method Not Allowed", "text/plain", "GET only\n".into());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics_text(),
        ),
        "/journal" => {
            let n = match query {
                None | Some("") => Some(DEFAULT_JOURNAL_TAIL),
                Some(q) => q
                    .strip_prefix("n=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0),
            };
            match n {
                Some(n) => ("200 OK", "application/jsonl", journal_text(n)),
                None => (
                    "400 Bad Request",
                    "text/plain",
                    "journal takes ?n=K with positive integer K\n".into(),
                ),
            }
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "routes: /metrics, /journal?n=K\n".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoint_serves_metrics_and_journal_and_404s_the_rest() {
        mcs_obs::counter_add("serve.test_telemetry_endpoint", 3);
        // The scrape runs on the listener thread; drain this thread's
        // buffer so it can see the counter (what the daemon does at
        // every epoch boundary).
        mcs_obs::flush_local();
        mcs_obs::journal::record(
            "test-telemetry-endpoint",
            Some(9),
            vec![("tag", mcs_obs::journal::Value::U64(1))],
        );
        let server = TelemetryServer::spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("serve_test_telemetry_endpoint_total 3"));
        assert!(body.contains("serve_scrape_t_mono "));

        let (head, body) = http_get(addr, "/journal?n=1000");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(
            body.lines()
                .any(|l| l.contains("\"kind\":\"test-telemetry-endpoint\",\"epoch\":9,\"tag\":1")),
            "{body}"
        );

        let (head, _) = http_get(addr, "/journal?n=zero");
        assert!(head.starts_with("HTTP/1.0 400"), "{head}");
        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        drop(server); // joins the listener thread
    }

    #[test]
    fn file_publication_is_atomic_and_readable() {
        let path =
            std::env::temp_dir().join(format!("dpg-telemetry-test-{}.prom", std::process::id()));
        mcs_obs::counter_add("serve.test_telemetry_file", 1);
        mcs_obs::flush_local();
        publish_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("serve_test_telemetry_file_total 1"));
        assert!(!path.with_extension("prom.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}

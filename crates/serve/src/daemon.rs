//! The serving daemon: WAL-ordered ingestion, deadline-bounded epoch
//! settlement, and crash recovery.
//!
//! # Write ordering (the crash-safety argument)
//!
//! Every state transition is made durable *before* it is applied:
//!
//! 1. **Admission** — a validated request is appended to the epoch WAL
//!    (and flushed) first, then fed to the streaming statistics and the
//!    epoch buffer. A crash between the two replays the record; a crash
//!    mid-append leaves a torn tail that was never applied, and the
//!    resumable input source re-delivers the request.
//! 2. **Settlement** — when the epoch buffer fills, the outcome
//!    (`ok`/`deadline`/`panic` plus the settled cost as raw `f64` bits)
//!    is appended to the WAL first, then applied: cost accumulators,
//!    placement refresh, checkpoint (atomic tmp + rename), WAL rotation.
//!    Recovery *replays the recorded outcome* instead of re-running the
//!    solver, so deadline and panic nondeterminism cannot make a
//!    recovered state diverge from the pre-crash one.
//!
//! With those two rules, `kill -9` at any instant recovers — checkpoint
//! plus WAL tail — to a state byte-identical to the never-crashed run
//! over the same input (enforced end-to-end by
//! `tests/serve_crash_recovery.rs`). The single caveat: a crash landing
//! *between* epoch-full and the settle append re-runs settlement on
//! recovery, so the class of outcome (ok vs. deadline) is reproduced
//! rather than replayed; the solvers are deterministic, so only a
//! deadline set tighter than the solver's actual runtime can differ.
//!
//! # Bounded latency
//!
//! Per-request work is admission-validation, one WAL append, and an
//! `O(|D|²)` streaming update with `|D|` capped by admission control
//! ([`ServeConfig::max_items`]). Settlement runs on a worker thread
//! under [`ServeConfig::settle_timeout`]; on deadline or solver panic
//! (isolated by `catch_unwind`) the epoch settles *degraded*: last-good
//! placement, conservative fallback pricing (packed co-requests at the
//! package-delivery rate `2αλ`, everything else at `λ` per access), and
//! the epoch is recorded in [`DaemonState::degraded_epochs`]. A worker
//! that missed its deadline keeps running, but at most one such
//! *straggler* exists: until it finishes, later epochs settle degraded
//! immediately instead of spawning alongside it — so a consistently
//! slow solver costs one extra thread, not one per epoch, and solver
//! calls never run concurrently. The ok-vs-degraded quality gap is
//! surfaced as the degradation ratio (relative `ave_cost`, the chaos
//! harness's cost-inflation metric).

use std::collections::HashMap;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mcs_correlation::{matching::greedy_matching_from_pairs, StreamingCooccurrence};
use mcs_engine::{find, CachingSolver, RunContext, Solution};
use mcs_model::defaults::{DEFAULT_SEED, DEFAULT_THETA};
use mcs_model::{CostModel, ItemId, Request, RequestSeqBuilder, ServerId};
use mcs_obs::journal::{self, Value};

use crate::checkpoint::{DaemonState, PendingReq};
use crate::protocol::{parse_line, Frame};
use crate::wal::{read_records, truncate_torn, EpochStatus, Wal, WalContents, WalRecord};

/// Serving-run parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Durable state directory (checkpoint + WALs).
    pub dir: PathBuf,
    /// Cost model for settlement.
    pub model: CostModel,
    /// Packing threshold θ.
    pub theta: f64,
    /// Base seed; each epoch derives its own via [`RunContext::for_epoch`].
    pub seed: u64,
    /// Registry name of the settlement solver.
    pub algo: String,
    /// Requests per epoch.
    pub epoch_len: usize,
    /// Streaming decay factor in `(0, 1]`.
    pub decay: f64,
    /// Settlement deadline; missing it degrades the epoch.
    pub settle_timeout: Duration,
    /// Admission control: largest item set accepted per request.
    pub max_items: usize,
    /// Test hook: sleep this long per request frame (lets the crash
    /// harness land `kill -9` mid-epoch deterministically).
    pub throttle: Duration,
    /// Test hook: panic inside settlement of this epoch.
    pub inject_panic_epoch: Option<u64>,
    /// Test hook: sleep this long inside settlement of this epoch before
    /// solving (exercises the deadline and straggler paths).
    pub inject_slow_epoch: Option<(u64, Duration)>,
    /// Suppress per-event stderr notes.
    pub quiet: bool,
    /// Atomically publish the Prometheus exposition here at every epoch
    /// boundary (`--telemetry-file`; socketless environments). Publish
    /// failures are reported and survived, never fatal.
    pub telemetry_file: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults for a serve directory: `dp_greedy` settlement, epochs of
    /// 64 requests, no decay, a 2 s settlement deadline.
    pub fn new(dir: PathBuf) -> Self {
        ServeConfig {
            dir,
            model: mcs_model::defaults::default_model(),
            theta: DEFAULT_THETA,
            seed: DEFAULT_SEED,
            algo: "dp_greedy".to_string(),
            epoch_len: 64,
            decay: 1.0,
            settle_timeout: Duration::from_secs(2),
            max_items: 64,
            throttle: Duration::ZERO,
            inject_panic_epoch: None,
            inject_slow_epoch: None,
            quiet: false,
            telemetry_file: None,
        }
    }
}

/// A daemon failure (as opposed to a rejected frame, which is counted
/// and survived).
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem/WAL failure.
    Io(std::io::Error),
    /// Inconsistent or unusable durable state, bad handshake, unknown
    /// solver — anything that makes continuing unsound.
    State(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve io: {e}"),
            ServeError::State(m) => write!(f, "serve: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// End-of-run accounting (process-local; durable truth lives in
/// [`DaemonState`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests admitted this run (excludes WAL-replayed ones).
    pub admitted: u64,
    /// Frames rejected by admission control.
    pub rejected: u64,
    /// Frames skipped because their time was already covered by the
    /// recovered state (the resume path re-reading an input file).
    pub stale: u64,
    /// Unparsable input lines.
    pub malformed: u64,
    /// Requests replayed from the WAL during recovery.
    pub replayed: u64,
    /// Epochs settled this run.
    pub epochs_settled: u64,
}

/// What admission decided about one `req` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Logged, applied, and (possibly) settled.
    Admitted,
    /// Time not beyond the recovered/served horizon — skipped.
    Stale,
    /// Validation failure, with the reason.
    Rejected(String),
}

/// A running serving daemon.
pub struct Daemon {
    cfg: ServeConfig,
    solver: &'static dyn CachingSolver,
    base_ctx: RunContext,
    state: DaemonState,
    stream: StreamingCooccurrence,
    wal: Wal,
    summary: ServeSummary,
    /// The receiver of a settlement worker that missed its deadline and
    /// is still running. At most one exists; no new worker spawns until
    /// it finishes, so solver calls never run concurrently and a slow
    /// solver leaks a single bounded thread, not one per epoch.
    straggler: Option<mpsc::Receiver<std::thread::Result<Solution>>>,
}

impl Daemon {
    fn resolve(cfg: &ServeConfig) -> Result<(&'static dyn CachingSolver, RunContext), ServeError> {
        let solver = find(&cfg.algo)
            .ok_or_else(|| ServeError::State(format!("unknown algorithm {}", cfg.algo)))?;
        if cfg.epoch_len == 0 {
            return Err(ServeError::State("epoch length must be positive".into()));
        }
        let ctx = RunContext::new(cfg.model)
            .with_theta(cfg.theta)
            .with_seed(cfg.seed);
        Ok((solver, ctx))
    }

    /// Starts a fresh daemon for a `hello <servers> <items>` handshake.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or an unknown solver.
    pub fn fresh(cfg: ServeConfig, servers: u32, items: u32) -> Result<Daemon, ServeError> {
        let (solver, base_ctx) = Self::resolve(&cfg)?;
        std::fs::create_dir_all(&cfg.dir)?;
        let state = DaemonState::fresh(servers, items, cfg.decay);
        let stream =
            StreamingCooccurrence::from_snapshot(&state.streaming).map_err(ServeError::State)?;
        // Persist the epoch-0 checkpoint immediately: without it, a crash
        // before the first settlement would make recovery ignore the
        // epoch-0 WAL and re-admit (duplicate) its requests.
        state.save(&cfg.dir)?;
        journal::record("checkpoint-write", Some(0), vec![]);
        mcs_obs::gauge_set("serve.last_checkpoint_t_mono", journal::now_t_mono());
        journal::record("epoch-open", Some(0), vec![]);
        let wal = Wal::open(&cfg.dir, state.epoch)?;
        let daemon = Daemon {
            cfg,
            solver,
            base_ctx,
            state,
            stream,
            wal,
            summary: ServeSummary::default(),
            straggler: None,
        };
        daemon.publish_telemetry();
        Ok(daemon)
    }

    /// Recovers a daemon from the durable state in `cfg.dir`, replaying
    /// the WAL tail on top of the checkpoint. Returns `Ok(None)` when the
    /// directory holds no checkpoint (a fresh run).
    ///
    /// # Errors
    ///
    /// Fails on corrupt checkpoints, mid-log WAL corruption, or
    /// filesystem errors. Torn WAL tails recover cleanly.
    pub fn recover(cfg: ServeConfig) -> Result<Option<Daemon>, ServeError> {
        let Some(state) = DaemonState::load(&cfg.dir).map_err(ServeError::State)? else {
            return Ok(None);
        };
        let (solver, base_ctx) = Self::resolve(&cfg)?;
        let stream = StreamingCooccurrence::from_snapshot(&state.streaming)
            .map_err(|e| ServeError::State(format!("checkpoint streaming state: {e}")))?;
        let mut daemon = Daemon {
            wal: Wal::open(&cfg.dir, state.epoch)?,
            cfg,
            solver,
            base_ctx,
            state,
            stream,
            summary: ServeSummary::default(),
            straggler: None,
        };
        daemon.replay()?;
        daemon.publish_telemetry();
        Ok(Some(daemon))
    }

    /// Replays `wal-<epoch>.log` (and any successors completed by a
    /// settle record) on top of the checkpoint.
    fn replay(&mut self) -> Result<(), ServeError> {
        loop {
            let WalContents {
                records,
                torn,
                valid_len,
            } = read_records(&self.cfg.dir, self.state.epoch)?;
            let mut settled = false;
            for record in records {
                match record {
                    WalRecord::Req {
                        time,
                        server,
                        items,
                    } => {
                        self.apply_request(time, server, items);
                        self.summary.replayed += 1;
                        mcs_obs::counter_add("serve.replayed", 1);
                    }
                    WalRecord::Settle { status, cost_bits } => {
                        // Replay the *recorded* outcome — never re-run
                        // the solver during recovery.
                        self.apply_settlement(status, f64::from_bits(cost_bits))?;
                        settled = true;
                    }
                }
            }
            if !settled {
                if torn {
                    // This epoch's log is about to be reopened for
                    // append; physically drop the torn fragment so the
                    // next record cannot merge with it into a malformed
                    // line that a later recovery would read as mid-log
                    // corruption.
                    truncate_torn(&self.cfg.dir, self.state.epoch, valid_len)?;
                    mcs_obs::counter_add("serve.torn_tails", 1);
                    journal::record(
                        "wal-torn",
                        Some(self.state.epoch),
                        vec![("valid_len", Value::U64(valid_len))],
                    );
                }
                break;
            }
            // The settle we just replayed advanced the epoch; its log may
            // exist if the crash landed after rotation.
        }
        journal::record(
            "recovery-replay",
            Some(self.state.epoch),
            vec![("replayed", Value::U64(self.summary.replayed))],
        );
        self.wal = Wal::open(&self.cfg.dir, self.state.epoch)?;
        // The buffer may have filled with no settle record durable yet
        // (crash inside settlement, before the outcome was logged):
        // settle now, exactly as the pre-crash process was about to.
        if self.state.pending.len() >= self.cfg.epoch_len {
            self.settle_epoch()?;
        }
        Ok(())
    }

    /// Validates the handshake against recovered state.
    ///
    /// # Errors
    ///
    /// Fails when the declared fleet/catalog sizes contradict the
    /// checkpoint — serving a different universe on old state corrupts it.
    pub fn hello(&self, servers: u32, items: u32) -> Result<(), ServeError> {
        if servers != self.state.servers || items != self.state.items {
            return Err(ServeError::State(format!(
                "hello {servers} {items} does not match recovered state ({} servers, {} items)",
                self.state.servers, self.state.items
            )));
        }
        Ok(())
    }

    /// Admission control + durable logging + application for one frame.
    ///
    /// # Errors
    ///
    /// Only daemon failures (WAL/checkpoint IO) are errors; invalid
    /// frames come back as [`Admission::Rejected`].
    pub fn admit(
        &mut self,
        time: f64,
        server: ServerId,
        mut items: Vec<ItemId>,
    ) -> Result<Admission, ServeError> {
        if !time.is_finite() || time <= 0.0 {
            return Ok(self.reject(format!("non-positive time {time}")));
        }
        if time <= self.state.last_time {
            // Already covered by recovered/served history: the resume
            // path re-reading its input, or an out-of-order source.
            self.summary.stale += 1;
            mcs_obs::counter_add("serve.stale", 1);
            return Ok(Admission::Stale);
        }
        if server.0 >= self.state.servers {
            return Ok(self.reject(format!(
                "server {} out of range (fleet is {})",
                server.0, self.state.servers
            )));
        }
        items.sort_unstable();
        items.dedup();
        if items.is_empty() {
            return Ok(self.reject("empty item set".into()));
        }
        if items.len() > self.cfg.max_items {
            // Backpressure: oversized requests would break the O(|D|²)
            // per-request latency bound.
            mcs_obs::counter_add("serve.backpressure_drops", 1);
            return Ok(self.reject(format!(
                "item set of {} exceeds the admission cap {}",
                items.len(),
                self.cfg.max_items
            )));
        }
        if let Some(&max) = items.last() {
            if max.0 >= self.state.items {
                return Ok(self.reject(format!(
                    "item {} out of range (catalog is {})",
                    max.0, self.state.items
                )));
            }
        }

        // Durable before applied: WAL first.
        self.wal.append(&WalRecord::Req {
            time,
            server,
            items: items.clone(),
        })?;
        self.apply_request(time, server, items);
        self.summary.admitted += 1;
        mcs_obs::counter_add("serve.admitted", 1);

        if self.state.pending.len() >= self.cfg.epoch_len {
            self.settle_epoch()?;
        }
        mcs_obs::gauge_set(
            "serve.backpressure",
            self.state.pending.len() as f64 / self.cfg.epoch_len as f64,
        );
        Ok(Admission::Admitted)
    }

    /// Counts and journals one admission rejection.
    fn reject(&mut self, reason: String) -> Admission {
        self.summary.rejected += 1;
        mcs_obs::counter_add("serve.rejected", 1);
        journal::record(
            "admit-reject",
            Some(self.state.epoch),
            vec![("reason", Value::Str(reason.clone()))],
        );
        Admission::Rejected(reason)
    }

    /// Applies an admitted (or replayed) request to in-memory state.
    fn apply_request(&mut self, time: f64, server: ServerId, items: Vec<ItemId>) {
        self.stream.observe(&Request {
            server,
            time,
            items: items.clone(),
        });
        self.state.pending.push(PendingReq {
            time,
            server: server.0,
            items: items.into_iter().map(|i| i.0).collect(),
        });
        self.state.admitted += 1;
        self.state.last_time = time;
    }

    /// Settles the open epoch: solver under deadline + panic isolation,
    /// then the durable settle record, then application.
    fn settle_epoch(&mut self) -> Result<(), ServeError> {
        let epoch = self.state.epoch;
        journal::record(
            "settle-start",
            Some(epoch),
            vec![("requests", Value::U64(self.state.pending.len() as u64))],
        );
        let (status, cost) = self.compute_outcome(epoch);
        self.wal.append(&WalRecord::Settle {
            status,
            cost_bits: cost.to_bits(),
        })?;
        self.apply_settlement(status, cost)?;
        self.summary.epochs_settled += 1;
        if !self.cfg.quiet {
            eprintln!(
                "serve: epoch {epoch} settled {} cost={cost:.4} (cum={:.4})",
                status.label(),
                self.state.cum_cost
            );
        }
        Ok(())
    }

    /// Runs the solver on a worker thread under the settlement deadline,
    /// with panics isolated. Returns the outcome and the settled cost.
    fn compute_outcome(&mut self, epoch: u64) -> (EpochStatus, f64) {
        // Never run two solver calls concurrently: a worker that missed
        // its deadline keeps running until it finishes on its own. While
        // one is still out there, this epoch degrades immediately
        // (deadline class) instead of spawning alongside it.
        if let Some(rx) = &self.straggler {
            match rx.try_recv() {
                Err(mpsc::TryRecvError::Empty) => {
                    mcs_obs::counter_add("serve.settle_busy", 1);
                    journal::record("settle-busy", Some(epoch), vec![]);
                    return (EpochStatus::Deadline, self.fallback_cost());
                }
                // Finished (its epoch already settled degraded, so the
                // late result is discarded) or died — either way gone.
                Ok(_) | Err(mpsc::TryRecvError::Disconnected) => self.straggler = None,
            }
        }
        let timer = mcs_obs::span("serve.settle");
        let mut b = RequestSeqBuilder::new(self.state.servers, self.state.items);
        for r in &self.state.pending {
            b = b.push(r.server, r.time, r.items.iter().copied());
        }
        let seq = match b.build() {
            Ok(seq) => seq,
            // Admission enforces the builder's invariants; if they broke
            // anyway, fall back rather than crash the daemon.
            Err(e) => {
                drop(timer);
                if !self.cfg.quiet {
                    eprintln!("serve: epoch {epoch} buffer invalid ({e}); degrading");
                }
                return (EpochStatus::Panic, self.fallback_cost());
            }
        };
        let ctx = self.base_ctx.for_epoch(epoch);
        let solver = self.solver;
        let inject = self.cfg.inject_panic_epoch == Some(epoch);
        let slow = match self.cfg.inject_slow_epoch {
            Some((e, d)) if e == epoch => d,
            _ => Duration::ZERO,
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if !slow.is_zero() {
                    std::thread::sleep(slow);
                }
                assert!(!inject, "injected settlement panic (test hook)");
                solver.solve(&seq, &ctx)
            }));
            // The receiver may have timed out and moved on; ignore.
            let _ = tx.send(result);
        });
        match rx.recv_timeout(self.cfg.settle_timeout) {
            Ok(Ok(sol)) => (EpochStatus::Ok, sol.total_cost),
            Ok(Err(_panic)) => {
                mcs_obs::counter_add("serve.solver_panics", 1);
                (EpochStatus::Panic, self.fallback_cost())
            }
            Err(_timeout) => {
                mcs_obs::counter_add("serve.deadline_misses", 1);
                // The worker is now a straggler; remember it so no new
                // settlement spawns until it finishes.
                self.straggler = Some(rx);
                (EpochStatus::Deadline, self.fallback_cost())
            }
        }
    }

    /// Conservative degraded pricing under the last-good placement: a
    /// co-requested packed pair costs one package delivery (`2αλ`, both
    /// accesses covered); every other access pays a full transfer `λ`.
    /// No caching credit is claimed — this is an upper bound, which keeps
    /// the degradation ratio honest.
    fn fallback_cost(&self) -> f64 {
        let pd = self.cfg.model.package_delivery_cost();
        let lambda = self.cfg.model.lambda();
        let partner: HashMap<u32, u32> = self
            .state
            .placement_pairs
            .iter()
            .flat_map(|&(a, b)| [(a.0, b.0), (b.0, a.0)])
            .collect();
        let mut cost = 0.0;
        for req in &self.state.pending {
            for &item in &req.items {
                match partner.get(&item) {
                    Some(&p) if req.items.binary_search(&p).is_ok() => {
                        // Count each co-requested pair once, at its
                        // lower-id member.
                        if item < p {
                            cost += pd;
                        }
                    }
                    _ => cost += lambda,
                }
            }
        }
        cost
    }

    /// Applies a settlement outcome (live or WAL-replayed): accumulators,
    /// placement refresh, checkpoint, WAL rotation.
    fn apply_settlement(&mut self, status: EpochStatus, cost: f64) -> Result<(), ServeError> {
        let epoch = self.state.epoch;
        let accesses: u64 = self
            .state
            .pending
            .iter()
            .map(|r| r.items.len() as u64)
            .sum();
        self.state.cum_cost += cost;
        if status.is_degraded() {
            self.state.degraded_cost += cost;
            self.state.degraded_accesses += accesses;
            self.state.degraded_epochs.push(epoch);
            mcs_obs::counter_add("serve.epochs_degraded", 1);
            mcs_obs::fcounter_add("serve.degraded_cost", cost);
            journal::record(
                "settle-degraded",
                Some(epoch),
                vec![
                    ("status", Value::Str(status.label().to_string())),
                    ("cost", Value::F64(cost)),
                ],
            );
        } else {
            self.state.ok_cost += cost;
            self.state.ok_accesses += accesses;
            // Placement refresh only on trusted settlements; a degraded
            // epoch keeps the last-good placement.
            self.state.placement_pairs =
                greedy_matching_from_pairs(self.stream.pairs(), self.state.items, self.cfg.theta)
                    .pairs;
            mcs_obs::counter_add("serve.epochs_ok", 1);
            mcs_obs::fcounter_add("serve.ok_cost", cost);
            journal::record("settle-ok", Some(epoch), vec![("cost", Value::F64(cost))]);
        }
        // 1.0 (no inflation) until a degraded epoch exists, so scrapes
        // always see the gauge once an epoch has settled.
        mcs_obs::gauge_set(
            "serve.degradation_ratio",
            self.state.degradation_ratio().unwrap_or(1.0),
        );
        self.state.pending.clear();
        self.state.epoch = epoch + 1;
        mcs_obs::gauge_set("serve.epoch", self.state.epoch as f64);
        self.state.streaming = self.stream.snapshot();
        self.state.save(&self.cfg.dir)?;
        journal::record("checkpoint-write", Some(self.state.epoch), vec![]);
        mcs_obs::gauge_set("serve.last_checkpoint_t_mono", journal::now_t_mono());
        self.wal = Wal::open(&self.cfg.dir, self.state.epoch)?;
        journal::record("wal-rotate", Some(self.state.epoch), vec![]);
        journal::record("epoch-open", Some(self.state.epoch), vec![]);
        self.publish_telemetry();
        Ok(())
    }

    /// Epoch-boundary telemetry publication: drains this thread's metric
    /// buffer into the global aggregate (so the scrape thread sees it),
    /// then atomically rewrites the exposition file, if configured.
    /// Telemetry must never take the daemon down: failures are reported
    /// and survived.
    fn publish_telemetry(&self) {
        mcs_obs::flush_local();
        if let Some(path) = &self.cfg.telemetry_file {
            if let Err(e) = crate::telemetry::publish_file(path) {
                if !self.cfg.quiet {
                    eprintln!("serve: telemetry publish to {} failed: {e}", path.display());
                }
            }
        }
    }

    /// The current in-memory state, with the streaming snapshot
    /// refreshed — [`DaemonState::canonical_json`] of this is the
    /// byte-identity witness.
    pub fn current_state(&self) -> DaemonState {
        let mut state = self.state.clone();
        state.streaming = self.stream.snapshot();
        state
    }

    /// This run's process-local accounting.
    pub fn summary(&self) -> ServeSummary {
        self.summary
    }
}

/// Drives a daemon over a line-framed input stream until EOF.
///
/// Recovers from `cfg.dir` if a checkpoint exists (validating the
/// handshake against it), otherwise starts fresh on the first `hello`.
/// Malformed lines and rejected frames are reported to stderr with their
/// line numbers and survived; only daemon failures abort.
///
/// # Errors
///
/// Fails on daemon failures: unusable durable state, handshake
/// mismatch, a `req` before `hello`, or filesystem errors.
pub fn serve_stream<R: BufRead>(
    cfg: ServeConfig,
    input: R,
) -> Result<(DaemonState, ServeSummary), ServeError> {
    let quiet = cfg.quiet;
    let throttle = cfg.throttle;
    let mut daemon = Daemon::recover(cfg.clone())?;
    if daemon.is_some() && !quiet {
        eprintln!("serve: recovered state from {}", cfg.dir.display());
    }
    let mut malformed: u64 = 0;
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(ServeError::Io)?;
        let frame = match parse_line(&line, lineno) {
            Ok(None) => continue,
            Ok(Some(f)) => f,
            Err(e) => {
                malformed += 1;
                mcs_obs::counter_add("serve.malformed", 1);
                if !quiet {
                    eprintln!("serve: {e}");
                }
                continue;
            }
        };
        match frame {
            Frame::Hello { servers, items } => match &daemon {
                Some(d) => d.hello(servers, items)?,
                None => daemon = Some(Daemon::fresh(cfg.clone(), servers, items)?),
            },
            Frame::Req {
                time,
                server,
                items,
            } => {
                let Some(d) = daemon.as_mut() else {
                    return Err(ServeError::State(format!(
                        "line {lineno}: req before hello"
                    )));
                };
                if !throttle.is_zero() {
                    std::thread::sleep(throttle);
                }
                let t0 = Instant::now();
                let admission = d.admit(time, server, items)?;
                mcs_obs::observe("serve.admit_seconds", t0.elapsed().as_secs_f64());
                if let Admission::Rejected(reason) = admission {
                    if !quiet {
                        eprintln!("serve: line {lineno}: rejected: {reason}");
                    }
                }
            }
        }
    }
    let Some(daemon) = daemon else {
        return Err(ServeError::State("input ended before hello".into()));
    };
    let mut summary = daemon.summary();
    summary.malformed = malformed;
    Ok((daemon.current_state(), summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpg-daemon-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(dir: &std::path::Path) -> ServeConfig {
        let mut c = ServeConfig::new(dir.to_path_buf());
        c.epoch_len = 4;
        c.quiet = true;
        c
    }

    /// A correlated workload: items 0 and 1 co-requested often enough to
    /// pack, item 2 independent. Two full epochs plus a partial tail.
    fn script() -> String {
        let mut s = String::from("hello 3 4\n");
        let mut t = 0.0;
        for i in 0..10 {
            t += 0.5;
            let line = match i % 4 {
                0 | 1 => format!("req {t:?} {} 0,1\n", i % 3),
                2 => format!("req {t:?} {} 2\n", i % 3),
                _ => format!("req {t:?} {} 0,1,2\n", i % 3),
            };
            s.push_str(&line);
        }
        s
    }

    #[test]
    fn serves_epochs_and_accumulates_cost() {
        let dir = tmp_dir("basic");
        let (state, summary) = serve_stream(cfg(&dir), Cursor::new(script())).unwrap();
        assert_eq!(summary.admitted, 10);
        assert_eq!(summary.epochs_settled, 2);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.pending.len(), 2);
        assert!(state.cum_cost > 0.0);
        assert_eq!(state.degraded_epochs, Vec::<u64>::new());
        assert!(
            state.placement_pairs.contains(&(ItemId(0), ItemId(1))),
            "0/1 co-requests should pack: {:?}",
            state.placement_pairs
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rerunning_the_same_input_resumes_idempotently() {
        let dir = tmp_dir("resume");
        let (first, _) = serve_stream(cfg(&dir), Cursor::new(script())).unwrap();
        // Feed the whole stream again: everything is stale, nothing changes.
        let (second, summary) = serve_stream(cfg(&dir), Cursor::new(script())).unwrap();
        assert_eq!(summary.admitted, 0);
        assert_eq!(summary.stale, 10);
        assert_eq!(second.canonical_json(), first.canonical_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_panic_degrades_the_epoch_and_keeps_placement() {
        let dir = tmp_dir("panic");
        let mut c = cfg(&dir);
        c.inject_panic_epoch = Some(1);
        let (state, _) = serve_stream(c, Cursor::new(script())).unwrap();
        assert_eq!(state.degraded_epochs, vec![1]);
        assert!(state.degraded_cost > 0.0);
        assert!(state.ok_cost > 0.0);
        assert!(state.degradation_ratio().is_some());
        // Epoch 0 settled ok, so a placement exists despite the panic.
        assert!(state.placement_pairs.contains(&(ItemId(0), ItemId(1))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_and_survives_bad_frames() {
        let dir = tmp_dir("reject");
        let input = "hello 2 2\n\
                     req 1.0 0 0,1\n\
                     req 0.5 1 0\n\
                     req 2.0 9 0\n\
                     req 3.0 1 7\n\
                     req 4.0 1 0,0,1\n\
                     not a frame\n\
                     req nope 1 0\n";
        let (state, summary) = serve_stream(cfg(&dir), Cursor::new(input)).unwrap();
        assert_eq!(summary.admitted, 2); // 1.0 and 4.0 (deduped items)
        assert_eq!(summary.stale, 1); // 0.5 behind the horizon
        assert_eq!(summary.rejected, 2); // bad server, bad item
        assert_eq!(summary.malformed, 2);
        assert_eq!(state.admitted, 2);
        assert_eq!(state.pending[1].items, vec![0, 1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handshake_mismatch_and_req_before_hello_fail() {
        let dir = tmp_dir("handshake");
        serve_stream(cfg(&dir), Cursor::new(script())).unwrap();
        let err = serve_stream(cfg(&dir), Cursor::new("hello 9 9\n")).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        let dir2 = tmp_dir("nohello");
        let err = serve_stream(cfg(&dir2), Cursor::new("req 1.0 0 0\n")).unwrap_err();
        assert!(err.to_string().contains("req before hello"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_before_reuse() {
        let dir = tmp_dir("truncate");
        // 10 requests → epoch 2 open with 2 records in wal-2.log.
        serve_stream(cfg(&dir), Cursor::new(script())).unwrap();
        // Simulate kill -9 mid-append: a half-written record at the tail.
        let path = crate::wal::wal_path(&dir, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"req 99.0 0 0,");
        std::fs::write(&path, &bytes).unwrap();
        // Recovery must truncate the fragment, so the next admitted
        // record starts on a fresh line.
        {
            let mut d = Daemon::recover(cfg(&dir)).unwrap().unwrap();
            assert_eq!(d.summary().replayed, 2);
            assert_eq!(
                d.admit(6.0, ServerId(0), vec![ItemId(2)]).unwrap(),
                Admission::Admitted
            );
        }
        // Without the truncation this second recovery would either fail
        // with InvalidData on the merged malformed line or silently drop
        // the admitted record as a "torn" tail.
        let d = Daemon::recover(cfg(&dir)).unwrap().unwrap();
        assert_eq!(d.summary().replayed, 3);
        assert_eq!(d.current_state().pending.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_settlement_leaves_one_straggler_and_degrades_while_busy() {
        let dir = tmp_dir("straggler");
        let mut c = cfg(&dir); // epoch_len 4
        c.settle_timeout = Duration::from_millis(20);
        c.inject_slow_epoch = Some((0, Duration::from_millis(500)));
        let mut d = Daemon::fresh(c, 3, 4).unwrap();
        let mut t = 0.0;
        let feed = |d: &mut Daemon, n: usize, t: &mut f64| {
            for _ in 0..n {
                *t += 0.5;
                assert_eq!(
                    d.admit(*t, ServerId(0), vec![ItemId(0), ItemId(1)])
                        .unwrap(),
                    Admission::Admitted
                );
            }
        };
        // Epoch 0 misses its deadline; its worker keeps running through
        // epoch 1's settlement, which must settle degraded immediately
        // (busy) instead of spawning a second concurrent solver call.
        feed(&mut d, 8, &mut t);
        assert_eq!(d.current_state().degraded_epochs, vec![0, 1]);
        // Once the straggler finishes, settlement returns to normal.
        std::thread::sleep(Duration::from_millis(600));
        feed(&mut d, 4, &mut t);
        let state = d.current_state();
        assert_eq!(state.epoch, 3);
        assert_eq!(state.degraded_epochs, vec![0, 1]);
        assert!(state.ok_cost > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_item_sets_hit_backpressure() {
        let dir = tmp_dir("backpressure");
        let mut c = cfg(&dir);
        c.max_items = 2;
        let input = "hello 2 8\nreq 1.0 0 0,1,2,3\nreq 2.0 0 4,5\n";
        let (state, summary) = serve_stream(c, Cursor::new(input)).unwrap();
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.admitted, 1);
        assert_eq!(state.admitted, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

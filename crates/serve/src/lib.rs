//! Crash-safe online serving for the DP_Greedy suite.
//!
//! The batch pipeline answers "given this trace, how should items be
//! cached?". This crate answers the operational question that follows:
//! *keep* answering it while requests arrive, survive `kill -9` at any
//! instant, and never let one slow or panicking solver invocation take
//! the daemon down.
//!
//! Three cooperating layers:
//!
//! - [`protocol`] — the newline-framed input language (`hello`, `req`,
//!   comments), parsed with per-line error positions and zero panics.
//! - [`wal`] + [`checkpoint`] — durability. Admitted requests and epoch
//!   outcomes are appended (and flushed) to a per-epoch write-ahead log
//!   *before* they are applied; epoch boundaries atomically persist the
//!   whole [`checkpoint::DaemonState`] (including the bit-exact
//!   streaming-statistics snapshot) and rotate the log. Recovery is
//!   checkpoint + WAL-tail replay, and reproduces the pre-crash state
//!   byte for byte.
//! - [`daemon`] — the serving loop: admission control (bounding
//!   per-request work), epoch settlement through the [`mcs_engine`]
//!   solver registry on a worker thread under a deadline, `catch_unwind`
//!   panic isolation, and degraded fallback (last-good placement,
//!   conservative pricing) when settlement cannot be trusted.
//!
//! Everything is observable through [`mcs_obs`]: admission latency and
//! settlement histograms, backpressure and degradation-ratio gauges,
//! counters for every rejection class, cost accumulators split by
//! settlement outcome, and a journal event for every epoch lifecycle
//! transition. The [`telemetry`] module exposes all of it *live*: a
//! std-only TCP control endpoint (`GET /metrics` Prometheus text, `GET
//! /journal?n=K` JSONL tail) plus an atomic epoch-boundary file
//! publisher — what `dpg top` polls and renders.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod protocol;
pub mod telemetry;
pub mod wal;

pub use checkpoint::{DaemonState, PendingReq, CHECKPOINT_VERSION};
pub use daemon::{serve_stream, Admission, Daemon, ServeConfig, ServeError, ServeSummary};
pub use protocol::{Frame, ProtocolError};
pub use telemetry::TelemetryServer;
pub use wal::{EpochStatus, Wal, WalRecord};

//! Checkpointed daemon state with atomic persistence.
//!
//! [`DaemonState`] is the *entire* recoverable state of a serving run:
//! the streaming co-occurrence statistics (bit-exact via
//! [`StreamingSnapshot`]), the last-good placement, the cost
//! accumulators split by settlement outcome, and the in-flight epoch
//! buffer. Serialisation goes through `mcs_model::json`, whose
//! shortest-round-trip float writer makes save → load the identity on
//! every `f64` bit — the foundation of the crash-recovery guarantee
//! (see `tests/serve_crash_recovery.rs` at the workspace root).
//!
//! On disk the checkpoint is written to a temporary file and renamed
//! into place, so a crash mid-write can never destroy the previous
//! checkpoint: recovery sees either the old or the new file, both
//! consistent.

use std::path::{Path, PathBuf};

use mcs_correlation::{StreamingCooccurrence, StreamingSnapshot};
use mcs_model::json::{self, FromJson, ToJson};
use mcs_model::ItemId;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One buffered (admitted, not yet settled) request of the open epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingReq {
    /// Admission time.
    pub time: f64,
    /// Requesting server index.
    pub server: u32,
    /// Sorted, duplicate-free item ids.
    pub items: Vec<u32>,
}

mcs_model::impl_json!(PendingReq {
    time,
    server,
    items
});

/// The full recoverable state of a serving daemon.
///
/// Invariant: an on-disk checkpoint always has `pending` empty (it is
/// written at epoch boundaries, right after settlement); the in-memory
/// state carries the open epoch's buffer, reconstructed from the WAL on
/// recovery. [`DaemonState::canonical_json`] of the in-memory state is
/// the byte-identity witness the crash tests diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonState {
    /// Checkpoint format version.
    pub version: u32,
    /// Fleet size `m` from the handshake.
    pub servers: u32,
    /// Catalog size `k` from the handshake.
    pub items: u32,
    /// The open (not yet settled) epoch index.
    pub epoch: u64,
    /// Total admitted requests, across all epochs.
    pub admitted: u64,
    /// Time of the most recently admitted request (admission requires
    /// strictly increasing times; `0` before the first).
    pub last_time: f64,
    /// Total settled cost.
    pub cum_cost: f64,
    /// Settled cost of epochs that settled `ok`.
    pub ok_cost: f64,
    /// Item accesses of epochs that settled `ok`.
    pub ok_accesses: u64,
    /// Settled cost of degraded (deadline/panic) epochs.
    pub degraded_cost: f64,
    /// Item accesses of degraded epochs.
    pub degraded_accesses: u64,
    /// Indices of degraded epochs, ascending.
    pub degraded_epochs: Vec<u64>,
    /// Last-good placement: packed pairs `(a, b)`, `a < b`.
    pub placement_pairs: Vec<(ItemId, ItemId)>,
    /// Bit-exact streaming co-occurrence statistics.
    pub streaming: StreamingSnapshot,
    /// The open epoch's admitted-request buffer, in admission order.
    pub pending: Vec<PendingReq>,
}

mcs_model::impl_json!(DaemonState {
    version,
    servers,
    items,
    epoch,
    admitted,
    last_time,
    cum_cost,
    ok_cost,
    ok_accesses,
    degraded_cost,
    degraded_accesses,
    degraded_epochs,
    placement_pairs,
    streaming,
    pending
});

/// The checkpoint path within a serve directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

impl DaemonState {
    /// A fresh state for a new serving run.
    pub fn fresh(servers: u32, items: u32, decay: f64) -> Self {
        DaemonState {
            version: CHECKPOINT_VERSION,
            servers,
            items,
            epoch: 0,
            admitted: 0,
            last_time: 0.0,
            cum_cost: 0.0,
            ok_cost: 0.0,
            ok_accesses: 0,
            degraded_cost: 0.0,
            degraded_accesses: 0,
            degraded_epochs: Vec::new(),
            placement_pairs: Vec::new(),
            streaming: StreamingCooccurrence::new(decay).snapshot(),
            pending: Vec::new(),
        }
    }

    /// The PR 1 degradation-ratio metric, lifted to the serving layer:
    /// average per-access cost of degraded epochs relative to ok epochs.
    /// `None` until both kinds of epoch have settled at least one access.
    pub fn degradation_ratio(&self) -> Option<f64> {
        if self.ok_accesses == 0 || self.degraded_accesses == 0 {
            return None;
        }
        let ok = self.ok_cost / self.ok_accesses as f64;
        if ok <= 0.0 {
            return None;
        }
        Some((self.degraded_cost / self.degraded_accesses as f64) / ok)
    }

    /// The canonical serialized form: deterministic field order, floats
    /// in shortest-round-trip notation. Equal states produce equal
    /// bytes; the crash-recovery gate diffs exactly this.
    pub fn canonical_json(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Atomically persists to `checkpoint.json` in `dir` via a temporary
    /// file and rename, so a crash mid-write leaves the old checkpoint
    /// intact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        debug_assert!(
            self.pending.is_empty(),
            "checkpoints are epoch-boundary snapshots; pending lives in the WAL"
        );
        let tmp = dir.join("checkpoint.json.tmp");
        std::fs::write(&tmp, self.canonical_json())?;
        std::fs::rename(&tmp, checkpoint_path(dir))
    }

    /// Loads a checkpoint if one exists, validating version and
    /// streaming-state invariants.
    ///
    /// # Errors
    ///
    /// Fails on unreadable files, malformed JSON (with position), a
    /// version mismatch, or an invalid streaming snapshot.
    pub fn load(dir: &Path) -> Result<Option<Self>, String> {
        let path = checkpoint_path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let value = json::parse(&text).map_err(|e| {
            let (line, col) = json::line_col(&text, e.at);
            format!(
                "corrupt checkpoint {} at line {line}, column {col}: {}",
                path.display(),
                e.msg
            )
        })?;
        let state = DaemonState::from_json(&value)
            .map_err(|e| format!("corrupt checkpoint {}: {}", path.display(), e.msg))?;
        if state.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                state.version
            ));
        }
        // Surface invalid streaming state now, not at first observe.
        StreamingCooccurrence::from_snapshot(&state.streaming)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?;
        Ok(Some(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpg-ckpt-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populated_state() -> DaemonState {
        let mut stream = StreamingCooccurrence::new(0.9);
        let seq = mcs_model::RequestSeqBuilder::new(2, 4)
            .push(0u32, 0.5, [0, 1])
            .push(1u32, 1.25, [2])
            .build()
            .unwrap();
        for r in seq.requests() {
            stream.observe(r);
        }
        DaemonState {
            version: CHECKPOINT_VERSION,
            servers: 2,
            items: 4,
            epoch: 3,
            admitted: 17,
            last_time: 1.25,
            cum_cost: 0.1 + 0.2, // non-representable on purpose
            ok_cost: 0.2,
            ok_accesses: 11,
            degraded_cost: 0.1,
            degraded_accesses: 6,
            degraded_epochs: vec![1],
            placement_pairs: vec![(ItemId(0), ItemId(1))],
            streaming: stream.snapshot(),
            pending: Vec::new(),
        }
    }

    #[test]
    fn save_load_is_the_identity_down_to_the_bits() {
        let dir = tmp_dir("identity");
        let state = populated_state();
        state.save(&dir).unwrap();
        let back = DaemonState::load(&dir).unwrap().unwrap();
        assert_eq!(back, state);
        assert_eq!(back.cum_cost.to_bits(), state.cum_cost.to_bits());
        assert_eq!(back.canonical_json(), state.canonical_json());
        assert!(!dir.join("checkpoint.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = tmp_dir("none");
        assert_eq!(DaemonState::load(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_mismatched_checkpoints_are_rejected() {
        let dir = tmp_dir("reject");
        std::fs::write(checkpoint_path(&dir), "{\n  broken\n}").unwrap();
        let err = DaemonState::load(&dir).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let mut state = populated_state();
        state.version = 99;
        // Bypass save()'s invariants deliberately.
        std::fs::write(checkpoint_path(&dir), state.canonical_json()).unwrap();
        let err = DaemonState::load(&dir).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The line-framed request protocol of `dpg serve`.
//!
//! The daemon deliberately speaks newline-framed text over stdin (or a
//! file) rather than a socket: the build carries no network or async
//! dependencies, the frames are trivially recordable/replayable, and any
//! transport that can deliver lines (netcat, a FIFO, `tail -f`) can front
//! it. Three frame kinds:
//!
//! ```text
//! hello <servers> <items>          # handshake: fleet and catalog size
//! req <time> <server> <i1,i2,...>  # one request r = <s, t, D>
//! # anything after '#' is comment; blank lines are ignored
//! ```
//!
//! Parsing never panics: every malformed line is reported as a
//! [`ProtocolError`] carrying its 1-based line number, so operators can
//! find the offending frame in a multi-gigabyte stream.

use mcs_model::{ItemId, ServerId};

/// One parsed input frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake: declares the fleet (`m`) and catalog (`k`) sizes.
    Hello {
        /// Number of cache servers `m`.
        servers: u32,
        /// Number of distinct data items `k`.
        items: u32,
    },
    /// One request `r = <s, t, D>`.
    Req {
        /// Request time `t` (validated for monotonicity at admission).
        time: f64,
        /// Server the request is made at.
        server: ServerId,
        /// Accessed items, as sent (deduplicated/sorted at admission).
        items: Vec<ItemId>,
    },
}

/// A malformed frame, located by line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// 1-based line number of the offending frame.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(line: usize, msg: impl Into<String>) -> ProtocolError {
    ProtocolError {
        line,
        msg: msg.into(),
    }
}

/// Parses one input line. Returns `Ok(None)` for blank/comment lines.
///
/// # Errors
///
/// Returns a [`ProtocolError`] naming `lineno` for any malformed frame.
pub fn parse_line(text: &str, lineno: usize) -> Result<Option<Frame>, ProtocolError> {
    let text = text.split('#').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    let mut words = text.split_ascii_whitespace();
    let verb = words.next().expect("non-empty after trim");
    let frame = match verb {
        "hello" => {
            let servers = parse_u32(words.next(), "servers", lineno)?;
            let items = parse_u32(words.next(), "items", lineno)?;
            if servers == 0 || items == 0 {
                return Err(bad(lineno, "hello needs positive servers and items"));
            }
            Frame::Hello { servers, items }
        }
        "req" => {
            let time = words
                .next()
                .ok_or_else(|| bad(lineno, "req needs <time> <server> <items,csv>"))?
                .parse::<f64>()
                .map_err(|_| bad(lineno, "bad time (want a number)"))?;
            let server = ServerId(parse_u32(words.next(), "server", lineno)?);
            let items_csv = words
                .next()
                .ok_or_else(|| bad(lineno, "req is missing its item list"))?;
            let items = items_csv
                .split(',')
                .map(|tok| {
                    tok.parse::<u32>()
                        .map(ItemId)
                        .map_err(|_| bad(lineno, format!("bad item id `{tok}`")))
                })
                .collect::<Result<Vec<ItemId>, ProtocolError>>()?;
            Frame::Req {
                time,
                server,
                items,
            }
        }
        other => return Err(bad(lineno, format!("unknown frame `{other}`"))),
    };
    if let Some(extra) = words.next() {
        return Err(bad(lineno, format!("trailing token `{extra}`")));
    }
    Ok(Some(frame))
}

fn parse_u32(word: Option<&str>, what: &str, lineno: usize) -> Result<u32, ProtocolError> {
    word.ok_or_else(|| bad(lineno, format!("missing {what}")))?
        .parse::<u32>()
        .map_err(|_| bad(lineno, format!("bad {what} (want a non-negative integer)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_frame_shapes() {
        assert_eq!(
            parse_line("hello 4 16", 1).unwrap(),
            Some(Frame::Hello {
                servers: 4,
                items: 16
            })
        );
        assert_eq!(
            parse_line("req 1.5 2 0,3,7", 2).unwrap(),
            Some(Frame::Req {
                time: 1.5,
                server: ServerId(2),
                items: vec![ItemId(0), ItemId(3), ItemId(7)],
            })
        );
        assert_eq!(parse_line("", 3).unwrap(), None);
        assert_eq!(parse_line("  # a comment", 4).unwrap(), None);
        assert_eq!(
            parse_line("req 2.0 0 1 # inline comment", 5).unwrap(),
            Some(Frame::Req {
                time: 2.0,
                server: ServerId(0),
                items: vec![ItemId(1)],
            })
        );
    }

    #[test]
    fn malformed_frames_name_their_line() {
        for (text, needle) in [
            ("frobnicate 1 2", "unknown frame"),
            ("hello 4", "missing items"),
            ("hello 0 5", "positive"),
            ("hello x 5", "bad servers"),
            ("req 1.0 2", "missing its item list"),
            ("req abc 2 0", "bad time"),
            ("req 1.0 2 0,x", "bad item id `x`"),
            ("req 1.0 2 0 9", "trailing token `9`"),
            ("req 1.0 -1 0", "bad server"),
        ] {
            let err = parse_line(text, 17).unwrap_err();
            assert_eq!(err.line, 17, "{text}");
            assert!(err.msg.contains(needle), "{text}: {err}");
            assert!(err.to_string().starts_with("line 17: "), "{err}");
        }
    }
}

//! E2 / Fig. 9 — the spatial distribution of requests over the city zones.
//!
//! The paper's Fig. 9 shows the (strongly skewed) distribution of taxi
//! requests across Shenzhen; our synthetic city must reproduce that
//! qualitative shape: a few hotspot zones dominating the request volume.

use mcs_trace::stats::TraceStats;
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// Output of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// Requests per zone.
    pub zone_histogram: Vec<usize>,
    /// Total requests.
    pub requests: usize,
    /// Share of requests in the top-10 zones (skew indicator).
    pub top10_share: f64,
    /// Share under a uniform distribution, for contrast.
    pub uniform_share: f64,
}

/// Runs the experiment.
pub fn run(config: &WorkloadConfig) -> Fig09 {
    let seq = generate(config);
    let stats = TraceStats::from_sequence(&seq);
    let zones = stats.zone_histogram.len();
    Fig09 {
        top10_share: stats.top_zone_share(10),
        uniform_share: 10.0_f64.min(zones as f64) / zones as f64,
        zone_histogram: stats.zone_histogram,
        requests: stats.requests,
    }
}

impl Fig09 {
    /// Renders the ranked zone table (top 15 zones).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 9 — spatial request distribution (top 15 zones)",
            &["rank", "zone", "requests", "share"],
        );
        let mut ranked: Vec<(usize, usize)> =
            self.zone_histogram.iter().copied().enumerate().collect();
        ranked.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        for (rank, (zone, count)) in ranked.iter().take(15).enumerate() {
            t.push(vec![
                (rank + 1).to_string(),
                format!("s{}", zone + 1),
                count.to_string(),
                fmt_f(*count as f64 / self.requests.max(1) as f64),
            ]);
        }
        t.push(vec![
            "-".into(),
            "top-10 share".into(),
            "-".into(),
            fmt_f(self.top10_share),
        ]);
        t
    }
}

mcs_model::impl_to_json!(Fig09 {
    zone_histogram,
    requests,
    top10_share,
    uniform_share
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    #[test]
    fn distribution_is_skewed_like_the_paper() {
        let f = run(&paper_workload(DEFAULT_SEED));
        assert!(f.requests > 500);
        assert!(
            f.top10_share > 2.0 * f.uniform_share,
            "expected >2x uniform concentration, got {} vs {}",
            f.top10_share,
            f.uniform_share
        );
        let table = f.table();
        assert_eq!(table.rows.len(), 16);
    }
}

//! Robustness experiment — DP_Greedy fleets under injected faults.
//!
//! The paper's evaluation assumes a perfectly reliable edge fleet. This
//! experiment measures how gracefully the *plans* it produces degrade
//! when that assumption breaks: for every point of a
//! fault-rate × `θ` × `α` grid we run DP_Greedy on the city workload,
//! push every explicit schedule through the degraded replay engine of
//! `mcs-sim` under a seeded [`FaultPlan`], and record the degradation
//! ratio (cost under faults over fault-free cost) together with the
//! recovery metrics of [`mcs_sim::FaultReport`].
//!
//! Two findings worth looking for in the table:
//!
//! * degradation grows with the fault rate but stays *bounded* — the
//!   repair policy (retry, origin fallback, re-cache) never drops a
//!   request, so the worst case is the all-origin service bound;
//! * tighter packing (lower `θ`, lower `α`) concentrates more service
//!   onto shared package copies, so the same fault rate degrades packed
//!   plans slightly more than unpacked ones — robustness is part of the
//!   packing trade-off.

use crate::par::par_map;

use mcs_engine::{find, CachingSolver, RunContext};
use mcs_model::fault::FaultPlan;
use mcs_model::CostModel;
use mcs_sim::fleet::chaos_solver;
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// One grid point of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Crash arrivals per server per unit time.
    pub fault_rate: f64,
    /// Packing threshold `θ`.
    pub theta: f64,
    /// Package discount `α`.
    pub alpha: f64,
    /// Fault-free replayed cost of the explicit schedules.
    pub fault_free: f64,
    /// Cost accrued under the fault plan.
    pub degraded: f64,
    /// `degraded / fault_free`.
    pub degradation_ratio: f64,
    /// Fraction of requests served by a repair or fallback path.
    pub degraded_fraction: f64,
    /// Mean time from copy loss to re-cache.
    pub mean_time_to_repair: f64,
    /// Copies destroyed by crashes.
    pub copies_lost: usize,
    /// Transfer retries paid for.
    pub retries: usize,
}

/// Output of the robustness experiment.
#[derive(Debug, Clone)]
pub struct ChaosExp {
    /// One row per grid point, in sweep order (rate-major).
    pub rows: Vec<ChaosRow>,
}

/// Fault rates swept (crash arrivals per server per unit time; `0` is
/// the control row proving the fault-free path is exact).
pub const FAULT_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.1];
/// Packing thresholds swept.
pub const THETAS: [f64; 2] = [0.1, 0.3];
/// Package discounts swept.
pub const ALPHAS: [f64; 2] = [0.5, 0.8];

/// Mean crash-outage duration used by every plan of the sweep.
const MEAN_OUTAGE: f64 = 2.0;

/// Runs the sweep under the Fig.-11 rates (`μ = 2`, `λ = 4`) for the
/// registry's `dp_greedy` solver.
///
/// `fault_seed` derives every grid point's [`FaultPlan`]; a fixed seed
/// makes the whole table reproducible.
pub fn run(config: &WorkloadConfig, fault_seed: u64) -> ChaosExp {
    run_with(
        find("dp_greedy").expect("dp_greedy is registered"),
        config,
        fault_seed,
    )
}

/// Runs the sweep for any generically replayable solver (see
/// [`mcs_sim::fleet::chaos_solution`]).
///
/// # Panics
///
/// Panics if the solver's solutions cannot be replayed generically
/// (windowed/multi slicing, aggregate-only online policies).
pub fn run_with(solver: &dyn CachingSolver, config: &WorkloadConfig, fault_seed: u64) -> ChaosExp {
    let seq = generate(config);
    let horizon = seq.horizon();

    let mut grid = Vec::new();
    for &fault_rate in &FAULT_RATES {
        for &theta in &THETAS {
            for &alpha in &ALPHAS {
                grid.push((fault_rate, theta, alpha));
            }
        }
    }

    let rows = par_map(&grid, |&(fault_rate, theta, alpha)| {
        let model = CostModel::new(2.0, 4.0, alpha).expect("valid model");
        let ctx = RunContext::new(model).with_theta(theta);
        // One plan per grid point, derived from the sweep seed and the
        // point's coordinates so rows don't share crash times.
        let plan = FaultPlan::random(
            fault_seed
                ^ (fault_rate * 1000.0) as u64
                ^ ((theta * 100.0) as u64) << 16
                ^ ((alpha * 100.0) as u64) << 32,
            seq.servers(),
            horizon,
            fault_rate,
            MEAN_OUTAGE,
            fault_rate, // transfer failures injected at the crash rate
        );
        let chaos =
            chaos_solver(&seq, solver, &ctx, &plan).expect("solver must be generically replayable");
        ChaosRow {
            fault_rate,
            theta,
            alpha,
            fault_free: chaos.fault_free_cost,
            degraded: chaos.degraded_cost,
            degradation_ratio: chaos.degradation_ratio,
            degraded_fraction: chaos.fault.degraded_fraction(),
            mean_time_to_repair: chaos.fault.mean_time_to_repair,
            copies_lost: chaos.fault.copies_lost,
            retries: chaos.fault.retries,
        }
    });

    ChaosExp { rows }
}

impl ChaosExp {
    /// Worst degradation ratio across the grid.
    pub fn worst_ratio(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.degradation_ratio)
            .fold(0.0, f64::max)
    }

    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Robustness — DP_Greedy degradation under injected faults (μ = 2, λ = 4)",
            &[
                "fault rate",
                "theta",
                "alpha",
                "fault-free",
                "degraded",
                "ratio",
                "deg. req.",
                "MTTR",
                "lost",
                "retries",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                fmt_f(r.fault_rate),
                fmt_f(r.theta),
                fmt_f(r.alpha),
                fmt_f(r.fault_free),
                fmt_f(r.degraded),
                fmt_f(r.degradation_ratio),
                format!("{:.1}%", 100.0 * r.degraded_fraction),
                fmt_f(r.mean_time_to_repair),
                r.copies_lost.to_string(),
                r.retries.to_string(),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(ChaosRow {
    fault_rate,
    theta,
    alpha,
    fault_free,
    degraded,
    degradation_ratio,
    degraded_fraction,
    mean_time_to_repair,
    copies_lost,
    retries
});
mcs_model::impl_to_json!(ChaosExp { rows });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    fn small_workload() -> WorkloadConfig {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 400;
        cfg
    }

    #[test]
    fn zero_fault_rows_are_exact_and_faulty_rows_degrade() {
        let e = run(&small_workload(), 7);
        assert_eq!(
            e.rows.len(),
            FAULT_RATES.len() * THETAS.len() * ALPHAS.len()
        );
        let mut saw_loss = false;
        for r in &e.rows {
            assert!(r.fault_free > 0.0, "grid point should have explicit cost");
            if r.fault_rate == 0.0 {
                assert_eq!(
                    r.degradation_ratio, 1.0,
                    "θ={} α={}: control row must be exact",
                    r.theta, r.alpha
                );
                assert_eq!(r.copies_lost, 0);
                assert_eq!(r.degraded_fraction, 0.0);
            } else {
                assert!(r.degradation_ratio > 0.0 && r.degradation_ratio.is_finite());
                saw_loss |= r.copies_lost > 0;
            }
        }
        assert!(saw_loss, "the faulty rows should lose at least one copy");
        assert!(e.table().rows.len() == e.rows.len());
    }

    #[test]
    fn the_sweep_is_deterministic_for_a_fixed_seed() {
        let a = run(&small_workload(), 7);
        let b = run(&small_workload(), 7);
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.degraded.to_bits(), y.degraded.to_bits());
            assert_eq!(x.copies_lost, y.copies_lost);
            assert_eq!(x.retries, y.retries);
        }
    }
}

//! Multi-item extension experiment: how much does packing *more than two*
//! items buy, as a function of the discount factor α?
//!
//! The workload is a bundle-correlated sequence (news text + picture +
//! video, the paper's introduction scenario): `bundles` item-triples, each
//! accessed together with probability `q` and partially otherwise, plus
//! independent background items. We compare:
//!
//! * **pairwise DP_Greedy** (the paper's algorithm — at most 2 items/package),
//! * **multi-item DP_Greedy** with unbounded groups (the future-work
//!   extension), and
//! * the non-packing **Optimal** yardstick.

use crate::par::par_map;
use mcs_model::rng::Rng;

use dp_greedy::baselines::optimal_non_packing;
use dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

use crate::table::{fmt_f, Table};

/// One α measurement.
#[derive(Debug, Clone, Copy)]
pub struct MultiRow {
    /// Discount factor.
    pub alpha: f64,
    /// Pairwise DP_Greedy `ave_cost`.
    pub pairwise: f64,
    /// Unbounded multi-item DP_Greedy `ave_cost`.
    pub multi: f64,
    /// Non-packing optimal `ave_cost`.
    pub optimal: f64,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct MultiExp {
    /// Rows per α.
    pub rows: Vec<MultiRow>,
    /// Number of requests in the generated bundle workload.
    pub requests: usize,
}

/// Generates the bundle workload: `bundles` triples over `servers`
/// servers, `n` requests, co-access probability `q`.
pub fn bundle_workload(servers: u32, bundles: u32, n: usize, q: f64, seed: u64) -> RequestSeq {
    let items = bundles * 3;
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RequestSeqBuilder::new(servers, items);
    let mut t = 0.0_f64;
    for _ in 0..n {
        t += 0.05 + rng.gen_f64() * 0.2;
        let bundle = rng.gen_range(0..bundles);
        let base = bundle * 3;
        let server = rng.gen_range(0..servers);
        let items: Vec<u32> = if rng.gen_f64() < q {
            vec![base, base + 1, base + 2]
        } else {
            // A partial access: one or two of the bundle members.
            match rng.gen_range(0u32..4) {
                0 => vec![base],
                1 => vec![base + 1],
                2 => vec![base + 2],
                _ => {
                    let skip = rng.gen_range(0..3);
                    (0..3).filter(|&k| k != skip).map(|k| base + k).collect()
                }
            }
        };
        b = b.push(server, t, items);
    }
    b.build().expect("bundle workload is valid")
}

/// Runs the sweep over α.
pub fn run(seed: u64) -> MultiExp {
    let seq = bundle_workload(12, 3, 900, 0.6, seed);
    let requests = seq.len();
    let alphas = [0.2, 0.4, 0.6, 0.8];
    let rows: Vec<MultiRow> = par_map(&alphas, |&alpha| {
        let model = CostModel::new(2.0, 4.0, alpha).expect("valid");
        let pairwise = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
        let multi = dp_greedy_multi(&seq, &MultiItemConfig::new(model).with_theta(0.3));
        let opt = optimal_non_packing(&seq, &model);
        MultiRow {
            alpha,
            pairwise: pairwise.ave_cost(),
            multi: multi.ave_cost(),
            optimal: opt.ave_cost(),
        }
    });
    MultiExp { rows, requests }
}

impl MultiExp {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Multi-item extension — bundle workload ({} requests, 3-item bundles, μ = 2, λ = 4)",
                self.requests
            ),
            &["alpha", "pairwise DP_Greedy", "multi-item DP_Greedy", "Optimal"],
        );
        for r in &self.rows {
            t.push(vec![
                fmt_f(r.alpha),
                fmt_f(r.pairwise),
                fmt_f(r.multi),
                fmt_f(r.optimal),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(MultiRow {
    alpha,
    pairwise,
    multi,
    optimal
});
mcs_model::impl_to_json!(MultiExp { rows, requests });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_workload_is_deterministic_and_valid() {
        let a = bundle_workload(6, 2, 200, 0.5, 3);
        let b = bundle_workload(6, 2, 200, 0.5, 3);
        assert_eq!(a, b);
        assert_eq!(a.items(), 6);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn multi_item_beats_pairwise_on_bundles_at_low_alpha() {
        let e = run(11);
        // α = 0.2: shipping whole triples is nearly free; the unbounded
        // grouping must beat the pair-limited algorithm.
        let low = e.rows.iter().find(|r| r.alpha == 0.2).unwrap();
        assert!(
            low.multi < low.pairwise,
            "multi {} should beat pairwise {} at α=0.2",
            low.multi,
            low.pairwise
        );
        // Both packers beat the non-packing optimal at low α.
        assert!(low.pairwise < low.optimal);
        // Optimal is α-invariant.
        let hi = e.rows.iter().find(|r| r.alpha == 0.8).unwrap();
        assert!((hi.optimal - low.optimal).abs() < 1e-9);
    }
}

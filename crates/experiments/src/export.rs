//! Plot-ready data export: whitespace-separated `.dat` series files
//! (gnuplot / matplotlib `loadtxt` compatible), one per figure.

use std::io::Write;
use std::path::Path;

/// Writes one `.dat` file: a `#`-comment header naming the columns, then
/// one whitespace-separated row per entry.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_dat(
    path: impl AsRef<Path>,
    title: &str,
    columns: &[&str],
    rows: &[Vec<f64>],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# {title}")?;
    writeln!(f, "# {}", columns.join(" "))?;
    for row in rows {
        debug_assert_eq!(row.len(), columns.len(), "row arity mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        writeln!(f, "{}", cells.join(" "))?;
    }
    Ok(())
}

impl crate::fig11::Fig11 {
    /// The Fig. 11 series:
    /// `jaccard dp_greedy optimal dpg_cache dpg_transfer dpg_package runtime_ms`.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.jaccard,
                    r.dp_greedy,
                    r.optimal,
                    r.dpg_cache,
                    r.dpg_transfer,
                    r.dpg_package,
                    r.runtime_ms,
                ]
            })
            .collect()
    }
}

impl crate::fig12::Fig12 {
    /// The Fig. 12 series:
    /// `rho dp_greedy optimal dpg_cache dpg_transfer dpg_package runtime_ms`.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.rho,
                    r.dp_greedy,
                    r.optimal,
                    r.dpg_cache,
                    r.dpg_transfer,
                    r.dpg_package,
                    r.runtime_ms,
                ]
            })
            .collect()
    }
}

impl crate::fig13::Fig13 {
    /// The Fig. 13 series: `alpha jaccard package_served optimal dp_greedy
    /// dpg_cache dpg_transfer dpg_package runtime_ms`.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.alpha,
                    r.jaccard,
                    r.package_served,
                    r.optimal,
                    r.dp_greedy,
                    r.dpg_cache,
                    r.dpg_transfer,
                    r.dpg_package,
                    r.runtime_ms,
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_parseable_dat() {
        let dir = std::env::temp_dir().join("dpg-dat-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.dat");
        write_dat(
            &path,
            "demo series",
            &["x", "y"],
            &[vec![1.0, 2.5], vec![2.0, 3.25]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("# demo"));
        assert_eq!(lines[1], "# x y");
        assert_eq!(lines[2], "1.000000 2.500000");
        // Numeric rows parse back.
        for l in &lines[2..] {
            for tok in l.split_whitespace() {
                tok.parse::<f64>().unwrap();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn figure_rows_have_consistent_arity() {
        let mut cfg = crate::paper_workload(crate::DEFAULT_SEED);
        cfg.steps = 300;
        let f12 = crate::fig12::run(&cfg, &[0.5, 2.0]);
        let rows = f12.to_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 7));
    }
}

//! Re-export shim: the data-parallel map now lives in
//! [`mcs_model::par`], at the bottom of the dependency graph, so the
//! bench harness and `mcs-offline`'s cross-validation can share it.
//! Experiment runners keep importing `crate::par` unchanged.

pub use mcs_model::par::{par_map, par_map_range};

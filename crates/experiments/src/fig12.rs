//! E5 / Fig. 12 — impact of the ratio `ρ = λ/μ` under `λ + μ = 6`.
//!
//! The paper sweeps `ρ` from 0.2 to 5.0 while pinning `λ + μ = 6` and
//! observes a parabola-like `ave_cost` curve peaking around `ρ ≈ 2`
//! (`μ = 2, λ = 4`): at the extremes the algorithm can lean entirely on
//! the cheap operation, in the middle neither caching nor transferring is
//! favourable; the first request of each server always needs a transfer,
//! which tilts the peak right of `ρ = 1`.

use crate::par::par_map;

use mcs_engine::{find, CachingSolver, RunContext};
use mcs_model::defaults::{DEFAULT_ALPHA, DEFAULT_THETA, RATE_SUM};
use mcs_model::CostModelBuilder;
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// `ρ = λ/μ`.
    pub rho: f64,
    /// Resulting `μ`.
    pub mu: f64,
    /// Resulting `λ`.
    pub lambda: f64,
    /// DP_Greedy `ave_cost` over the whole sequence.
    pub dp_greedy: f64,
    /// Optimal (non-packing) `ave_cost`.
    pub optimal: f64,
    /// Cache share of the DP_Greedy per-access cost (decision ledger).
    pub dpg_cache: f64,
    /// Transfer share of the DP_Greedy per-access cost.
    pub dpg_transfer: f64,
    /// Package-delivery share of the DP_Greedy per-access cost.
    pub dpg_package: f64,
    /// Wall-clock milliseconds of the full DP_Greedy run at this ρ.
    pub runtime_ms: f64,
}

/// Output of the Fig. 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Sweep rows, ascending `ρ`.
    pub rows: Vec<Fig12Row>,
}

/// The paper's sweep grid: 0.2 – 5.0.
pub fn default_rhos() -> Vec<f64> {
    let mut v: Vec<f64> = (1..=25).map(|i| i as f64 * 0.2).collect();
    v.insert(0, 0.2_f64);
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    v
}

/// Runs the sweep with the paper's two contenders (DP_Greedy against the
/// non-packing Optimal), resolved from the engine registry.
pub fn run(config: &WorkloadConfig, rhos: &[f64]) -> Fig12 {
    let solver = find("dp_greedy").expect("dp_greedy is registered");
    let baseline = find("optimal").expect("optimal is registered");
    run_with(solver, baseline, config, rhos)
}

/// Runs the sweep for any (solver, baseline) pair behind the engine seam
/// (points in parallel). The `dp_greedy`-named columns report `solver`;
/// the `optimal` column reports `baseline`.
pub fn run_with(
    solver: &dyn CachingSolver,
    baseline: &dyn CachingSolver,
    config: &WorkloadConfig,
    rhos: &[f64],
) -> Fig12 {
    let seq = generate(config);
    let rows: Vec<Fig12Row> = par_map(rhos, |&rho| {
        let model = CostModelBuilder::new()
            .from_rho(rho, RATE_SUM)
            .alpha(DEFAULT_ALPHA)
            .build()
            .expect("valid model");
        let ctx = RunContext::new(model).with_theta(DEFAULT_THETA);
        let t0 = std::time::Instant::now();
        let sol = solver.solve(&seq, &ctx);
        let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
        let opt = baseline.solve(&seq, &ctx);
        let breakdown = sol.ledger().breakdown();
        let per_access = if sol.total_accesses == 0 {
            0.0
        } else {
            1.0 / sol.total_accesses as f64
        };
        Fig12Row {
            rho,
            mu: model.mu(),
            lambda: model.lambda(),
            dp_greedy: sol.ave_cost(),
            optimal: opt.ave_cost(),
            dpg_cache: breakdown.cache * per_access,
            dpg_transfer: breakdown.transfer * per_access,
            dpg_package: breakdown.package_delivery * per_access,
            runtime_ms,
        }
    });
    Fig12 { rows }
}

impl Fig12 {
    /// The `ρ` at which DP_Greedy's `ave_cost` peaks.
    pub fn peak_rho(&self) -> f64 {
        self.rows
            .iter()
            .max_by(|a, b| a.dp_greedy.partial_cmp(&b.dp_greedy).unwrap())
            .map(|r| r.rho)
            .unwrap_or(0.0)
    }

    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 12 — ave_cost vs ρ = λ/μ (λ + μ = 6, θ = 0.3, α = 0.8)",
            &[
                "rho",
                "mu",
                "lambda",
                "DP_Greedy",
                "Optimal",
                "dpg_cache",
                "dpg_transfer",
                "dpg_pkg",
                "ms",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                fmt_f(r.rho),
                fmt_f(r.mu),
                fmt_f(r.lambda),
                fmt_f(r.dp_greedy),
                fmt_f(r.optimal),
                fmt_f(r.dpg_cache),
                fmt_f(r.dpg_transfer),
                fmt_f(r.dpg_package),
                fmt_f(r.runtime_ms),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(Fig12Row {
    rho,
    mu,
    lambda,
    dp_greedy,
    optimal,
    dpg_cache,
    dpg_transfer,
    dpg_package,
    runtime_ms
});
mcs_model::impl_to_json!(Fig12 { rows });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    fn small_sweep() -> Fig12 {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 800; // keep the test quick
        run(&cfg, &[0.2, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0])
    }

    #[test]
    fn curve_is_parabola_like_with_interior_peak() {
        let f = small_sweep();
        let first = f.rows.first().unwrap().dp_greedy;
        let last = f.rows.last().unwrap().dp_greedy;
        let peak = f.rows.iter().map(|r| r.dp_greedy).fold(0.0_f64, f64::max);
        assert!(peak > first && peak > last, "peak must be interior");
        let peak_rho = f.peak_rho();
        assert!(
            (0.5..=4.0).contains(&peak_rho),
            "peak at ρ={peak_rho}, expected an interior peak (paper: ≈2)"
        );
    }

    #[test]
    fn breakdown_columns_sum_to_the_dp_greedy_ave_cost() {
        let f = small_sweep();
        for r in &f.rows {
            let sum = r.dpg_cache + r.dpg_transfer + r.dpg_package;
            assert!(
                (sum - r.dp_greedy).abs() < 1e-9,
                "ρ={}: breakdown {} != ave_cost {}",
                r.rho,
                sum,
                r.dp_greedy
            );
            assert!(r.runtime_ms >= 0.0);
        }
    }

    #[test]
    fn dp_greedy_never_loses_to_optimal_on_average_here() {
        // With θ = 0.3 the packed pairs all have J above break-even, so the
        // full-sequence ave_cost of DP_Greedy should not exceed Optimal's
        // at any ρ (Fig. 12 shows DP_Greedy below Optimal throughout).
        let f = small_sweep();
        for r in &f.rows {
            assert!(
                r.dp_greedy <= r.optimal * 1.05 + 1e-9,
                "ρ={}: DP_Greedy {} ≫ Optimal {}",
                r.rho,
                r.dp_greedy,
                r.optimal
            );
        }
    }
}

//! Quality-side ablations of the design choices in DESIGN.md §7.
//!
//! * **Matching order** — Phase 1's greedy descending-J matching vs the
//!   exact maximum-weight matching: total packed similarity and resulting
//!   DP_Greedy cost on a 16-item workload.
//! * **Package arm** — Observation 2's third arm on/strict/off: switching
//!   it off degenerates the singleton greedy to the simple two-arm greedy.
//! * **Bridging / covering DP** — the substrate's covering DP vs the
//!   always-bridge greedy per item (the gap the cut argument bounds by 2×).
//! * **Threshold θ** — full-pipeline `ave_cost` across θ, motivating the
//!   paper's θ = 0.3.

use crate::par::{par_map, par_map_range};

use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_correlation::exact::{exact_matching, packing_weight};
use mcs_correlation::{greedy_matching, JaccardMatrix};
use mcs_model::{CostModel, ItemId};
use mcs_offline::{greedy::greedy, optimal};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// All ablation results.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// (greedy weight, exact weight, greedy pairs, exact pairs) on k = 16.
    pub matching: MatchingAblation,
    /// DP_Greedy totals: faithful / strict / no package arm.
    pub package_arm: PackageArmAblation,
    /// Per-item covering-DP vs always-bridge totals and the worst ratio.
    pub bridging: BridgingAblation,
    /// θ sweep: (θ, ave_cost).
    pub theta_sweep: Vec<(f64, f64)>,
}

/// Matching ablation outcome.
#[derive(Debug, Clone)]
pub struct MatchingAblation {
    /// Total packed similarity of greedy matching.
    pub greedy_weight: f64,
    /// Total packed similarity of exact matching.
    pub exact_weight: f64,
    /// Pairs packed by greedy.
    pub greedy_pairs: usize,
    /// Pairs packed by exact.
    pub exact_pairs: usize,
}

/// Package-arm ablation outcome.
#[derive(Debug, Clone)]
pub struct PackageArmAblation {
    /// Faithful (paper) total cost.
    pub faithful: f64,
    /// Strict-window total cost.
    pub strict: f64,
    /// Arm disabled (two-arm greedy) total cost.
    pub disabled: f64,
}

/// Bridging ablation outcome.
#[derive(Debug, Clone)]
pub struct BridgingAblation {
    /// Sum of per-item optimal costs.
    pub covering_dp: f64,
    /// Sum of per-item greedy costs.
    pub always_bridge: f64,
    /// Worst per-item greedy/optimal ratio observed (must be ≤ 2).
    pub worst_item_ratio: f64,
}

/// Runs every ablation.
pub fn run(config: &WorkloadConfig) -> Ablations {
    let seq = generate(config);
    let model = CostModel::new(2.0, 4.0, 0.8).expect("valid model");

    // -- Matching (needs a bigger item universe) --------------------------
    let mut cfg16 = config.clone();
    cfg16.taxis = 16;
    cfg16.pair_affinity = vec![0.9, 0.75, 0.6, 0.45, 0.3, 0.2, 0.1, 0.05];
    let seq16 = generate(&cfg16);
    let matrix = JaccardMatrix::from_sequence(&seq16);
    let g = greedy_matching(&matrix, 0.1);
    let e = exact_matching(&matrix, 0.1);
    let matching = MatchingAblation {
        greedy_weight: packing_weight(&matrix, &g),
        exact_weight: packing_weight(&matrix, &e),
        greedy_pairs: g.pairs.len(),
        exact_pairs: e.pairs.len(),
    };

    // -- Package arm -------------------------------------------------------
    let base = DpGreedyConfig::new(model).with_theta(0.3);
    let package_arm = PackageArmAblation {
        faithful: dp_greedy(&seq, &base).total_cost,
        strict: dp_greedy(&seq, &base.strict()).total_cost,
        disabled: dp_greedy(&seq, &base.without_package_arm()).total_cost,
    };

    // -- Bridging ----------------------------------------------------------
    let per_item: Vec<(f64, f64)> = par_map_range(seq.items() as usize, |i| {
        let trace = seq.item_trace(ItemId(i as u32));
        (optimal(&trace, &model).cost, greedy(&trace, &model).cost)
    });
    let covering_dp: f64 = per_item.iter().map(|&(o, _)| o).sum();
    let always_bridge: f64 = per_item.iter().map(|&(_, g)| g).sum();
    let worst_item_ratio = per_item
        .iter()
        .filter(|&&(o, _)| o > 0.0)
        .map(|&(o, g)| g / o)
        .fold(1.0, f64::max);
    let bridging = BridgingAblation {
        covering_dp,
        always_bridge,
        worst_item_ratio,
    };

    // -- θ sweep -----------------------------------------------------------
    let thetas = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9];
    let theta_sweep: Vec<(f64, f64)> = par_map(&thetas, |&theta| {
        let cfg = DpGreedyConfig::new(model).with_theta(theta);
        (theta, dp_greedy(&seq, &cfg).ave_cost())
    });

    Ablations {
        matching,
        package_arm,
        bridging,
        theta_sweep,
    }
}

impl Ablations {
    /// Renders all ablations into tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();

        let mut t = Table::new(
            "Ablation — Phase 1 matching: greedy vs exact (k = 16, θ = 0.1)",
            &["matcher", "pairs", "total packed J"],
        );
        t.push(vec![
            "greedy (paper)".into(),
            self.matching.greedy_pairs.to_string(),
            fmt_f(self.matching.greedy_weight),
        ]);
        t.push(vec![
            "exact max-weight".into(),
            self.matching.exact_pairs.to_string(),
            fmt_f(self.matching.exact_weight),
        ]);
        out.push(t);

        let mut t = Table::new(
            "Ablation — package arm of the singleton greedy",
            &["mode", "DP_Greedy total"],
        );
        t.push(vec![
            "faithful (paper)".into(),
            fmt_f(self.package_arm.faithful),
        ]);
        t.push(vec!["strict window".into(), fmt_f(self.package_arm.strict)]);
        t.push(vec![
            "disabled (2-arm)".into(),
            fmt_f(self.package_arm.disabled),
        ]);
        out.push(t);

        let mut t = Table::new(
            "Ablation — covering DP vs always-bridge greedy (per-item substrate)",
            &["algorithm", "total", "worst item ratio"],
        );
        t.push(vec![
            "covering DP (optimal)".into(),
            fmt_f(self.bridging.covering_dp),
            "1.0000".into(),
        ]);
        t.push(vec![
            "always-bridge greedy".into(),
            fmt_f(self.bridging.always_bridge),
            fmt_f(self.bridging.worst_item_ratio),
        ]);
        out.push(t);

        let mut t = Table::new(
            "Ablation — threshold θ sweep (why the paper picks θ = 0.3)",
            &["theta", "ave_cost"],
        );
        for &(theta, ave) in &self.theta_sweep {
            t.push(vec![fmt_f(theta), fmt_f(ave)]);
        }
        out.push(t);

        out
    }
}

mcs_model::impl_to_json!(Ablations {
    matching,
    package_arm,
    bridging,
    theta_sweep
});
mcs_model::impl_to_json!(MatchingAblation {
    greedy_weight,
    exact_weight,
    greedy_pairs,
    exact_pairs
});
mcs_model::impl_to_json!(PackageArmAblation {
    faithful,
    strict,
    disabled
});
mcs_model::impl_to_json!(BridgingAblation {
    covering_dp,
    always_bridge,
    worst_item_ratio
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    fn small() -> Ablations {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 600;
        run(&cfg)
    }

    #[test]
    fn exact_matching_dominates_greedy_weight() {
        let a = small();
        assert!(a.matching.exact_weight >= a.matching.greedy_weight - 1e-9);
    }

    #[test]
    fn package_arm_ordering_holds() {
        // faithful ≤ strict ≤ disabled: each mode removes options.
        let a = small();
        assert!(a.package_arm.faithful <= a.package_arm.strict + 1e-9);
        assert!(a.package_arm.strict <= a.package_arm.disabled + 1e-9);
    }

    #[test]
    fn covering_dp_beats_bridging_within_factor_two() {
        let a = small();
        assert!(a.bridging.covering_dp <= a.bridging.always_bridge + 1e-9);
        assert!(
            a.bridging.worst_item_ratio <= 2.0 + 1e-9,
            "cut-argument bound violated: {}",
            a.bridging.worst_item_ratio
        );
    }

    #[test]
    fn theta_sweep_has_an_interior_or_boundary_optimum() {
        let a = small();
        let best = a
            .theta_sweep
            .iter()
            .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .unwrap();
        // The best θ should not be the prohibitive 0.9 (packing helps).
        assert!(best.0 < 0.9, "best θ = {} (ave {})", best.0, best.1);
    }
}

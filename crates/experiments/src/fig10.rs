//! E3 / Fig. 10 — frequency and Jaccard similarity of frequent item pairs.
//!
//! The paper's Fig. 10 lists frequent two-item sets of the taxi trace with
//! their frequencies and Jaccard similarities (e.g. `J(d8, d9) = 0.5227`).
//! Our synthetic trace must produce the same qualitative artefact: a
//! handful of high-J designed pairs standing out of a low-J background.

use mcs_trace::stats::{pair_spectrum, PairSpectrumRow};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// Output of the Fig. 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// The full pair spectrum, descending Jaccard.
    pub spectrum: Vec<PairSpectrumRow>,
}

/// Runs the experiment.
pub fn run(config: &WorkloadConfig) -> Fig10 {
    let seq = generate(config);
    Fig10 {
        spectrum: pair_spectrum(&seq),
    }
}

impl Fig10 {
    /// Top-`n` pairs as a table.
    pub fn table(&self, n: usize) -> Table {
        let mut t = Table::new(
            format!("Fig. 10 — pair frequency and Jaccard similarity (top {n})"),
            &["pair", "frequency", "jaccard"],
        );
        for row in self.spectrum.iter().take(n) {
            t.push(vec![
                format!("({}, {})", row.a, row.b),
                row.frequency.to_string(),
                fmt_f(row.jaccard),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(Fig10 { spectrum });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};
    use mcs_model::ItemId;

    #[test]
    fn designed_pairs_top_the_spectrum() {
        let f = run(&paper_workload(DEFAULT_SEED));
        assert_eq!(f.spectrum.len(), 45);
        // The highest-J pair must be one of the five designed pairs.
        let top = f.spectrum[0];
        let designed = (0..5)
            .map(|p| (ItemId(2 * p), ItemId(2 * p + 1)))
            .collect::<Vec<_>>();
        assert!(
            designed.contains(&(top.a, top.b)),
            "top pair {top:?} is not a designed pair"
        );
        // Spectrum covers a wide Jaccard range, like the paper's mix.
        assert!(f.spectrum[0].jaccard > 0.4);
        assert!(f.spectrum.last().unwrap().jaccard < 0.1);
        let table = f.table(10);
        assert_eq!(table.rows.len(), 10);
    }
}

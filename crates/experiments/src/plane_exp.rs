//! Cost-plane sweep — the plane-aware solvers across heterogeneity knobs.
//!
//! Two families of planes over one bundle workload:
//!
//! * **hetero** — per-server `μ_s` spread geometrically around the
//!   default rate by a factor `spread ∈ {1, 2, 4, 8}` (uniform links);
//!   priced by `hetero_greedy` (and `hetero_exact` when the workload is
//!   under its request limit).
//! * **tiered** — the default L1/L2/archive waterfall with the L1 slot
//!   count swept over `{1, 2, 4, 8}`; priced by `tiered_waterfall`.
//!
//! Each plane point also prices its *homogeneous projection* with
//! `dp_greedy` — the cost a shape-blind model would claim for the same
//! workload. The gap between that row and the plane-aware row is the
//! projection error the `CostPlane` refactor exists to expose: mean
//! rates hide the expensive servers, and a flat `μ` hides tier moves
//! and origin fetches entirely.
//!
//! Deterministic for a given `(steps, seed)`; the committed artifact is
//! `results/tiered_sweep.tsv` (diffed by the CI costplane-smoke job).

use mcs_engine::{find, RunContext};
use mcs_model::defaults::{DEFAULT_ALPHA, DEFAULT_LAMBDA, DEFAULT_MU};
use mcs_model::{CostPlane, HeteroCostModelBuilder, RequestSeq, ServerId, TieredCostModel};

use crate::table::{fmt_f, Table};

/// Fleet size of the sweep workload (well under `hetero_exact`'s
/// 16-server fleet cap).
pub const SERVERS: u32 = 8;

/// The geometric `μ` spread factors of the hetero family.
pub const SPREADS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// The L1 slot counts of the tiered family.
pub const L1_SLOTS: [u32; 4] = [1, 2, 4, 8];

/// One `(plane, algo)` measurement.
#[derive(Debug, Clone)]
pub struct PlaneRow {
    /// Plane family: `"hetero"` or `"tiered"`.
    pub plane: String,
    /// The swept knob, e.g. `"spread=4"` or `"l1=2"`.
    pub param: String,
    /// Solver name (`dp_greedy` rows price the homogeneous projection).
    pub algo: String,
    /// The paper's headline metric.
    pub ave_cost: f64,
    /// Total cost.
    pub total_cost: f64,
    /// `|ledger total − total_cost|` — 0 up to float associativity.
    pub reconciliation_gap: f64,
}

/// Output of the cost-plane sweep.
#[derive(Debug, Clone)]
pub struct PlaneSweep {
    /// Rows, hetero family first, spreads then slots ascending; within a
    /// point the plane-aware solver(s) precede the projection row.
    pub rows: Vec<PlaneRow>,
    /// Solvers skipped because the workload exceeds their request limit
    /// (notably `hetero_exact` beyond 32 requests).
    pub skipped: Vec<String>,
}

/// The hetero plane at `spread`: `μ_s` geometrically spaced from
/// `μ/spread` to `μ·spread` across the fleet, uniform `λ` links, the
/// default `α`. `spread = 1` is the uniform embedding of the defaults.
pub fn spread_plane(spread: f64) -> CostPlane {
    let mut b = HeteroCostModelBuilder::new(SERVERS)
        .uniform_rates(DEFAULT_MU, DEFAULT_LAMBDA)
        .alpha(DEFAULT_ALPHA);
    for s in 0..SERVERS {
        let frac = s as f64 / (SERVERS - 1) as f64;
        let mu = DEFAULT_MU * spread.powf(2.0 * frac - 1.0);
        b = b.mu_at(ServerId(s), mu);
    }
    CostPlane::Hetero(b.build().expect("spread plane is valid"))
}

/// The tiered plane at `l1` L1 slots: the default waterfall with only
/// the fast-tier capacity changed.
pub fn l1_plane(l1: u32) -> CostPlane {
    use mcs_model::defaults::{DEFAULT_L2_SLOTS, DEFAULT_MOVE_COST, DEFAULT_ORIGIN_FETCH};
    use mcs_model::StorageTier;
    let m = SERVERS as usize;
    let ladder = vec![
        StorageTier::bounded(l1, 2.0 * DEFAULT_MU),
        StorageTier::bounded(DEFAULT_L2_SLOTS, DEFAULT_MU),
        StorageTier::unbounded(DEFAULT_MU / 4.0),
    ];
    let mut lambda = vec![DEFAULT_LAMBDA; m * m];
    for i in 0..m {
        lambda[i * m + i] = 0.0;
    }
    let model = TieredCostModel::new(
        vec![ladder; m],
        lambda,
        DEFAULT_MOVE_COST,
        DEFAULT_ORIGIN_FETCH,
        DEFAULT_ALPHA,
    )
    .expect("L1 sweep plane is valid");
    CostPlane::Tiered(model)
}

/// Prices one plane point: each plane-aware `algos` entry under the
/// plane itself, then `dp_greedy` under the plane's homogeneous
/// projection.
fn measure(
    seq: &RequestSeq,
    plane: &CostPlane,
    label: (&str, String),
    algos: &[&str],
    rows: &mut Vec<PlaneRow>,
    skipped: &mut Vec<String>,
) {
    let (family, param) = label;
    let ctx = RunContext::from_plane(plane.clone());
    let projected = RunContext::new(plane.projected_homogeneous());
    for (algo, ctx) in algos
        .iter()
        .map(|&a| (a, &ctx))
        .chain(std::iter::once(("dp_greedy", &projected)))
    {
        let solver = find(algo).expect("sweep solvers are registered");
        if solver
            .request_limit()
            .is_some_and(|limit| seq.requests().len() > limit)
        {
            let note = format!(
                "{family} {param}: {algo} ({} requests over its limit)",
                seq.requests().len()
            );
            skipped.push(note);
            continue;
        }
        let sol = solver.solve(seq, ctx);
        rows.push(PlaneRow {
            plane: family.to_string(),
            param: param.clone(),
            algo: algo.to_string(),
            ave_cost: sol.ave_cost(),
            total_cost: sol.total_cost,
            reconciliation_gap: sol.reconciliation_gap(),
        });
    }
}

/// Runs the sweep on a `steps`-request bundle workload.
pub fn run(steps: usize, seed: u64) -> PlaneSweep {
    let seq = crate::multi_exp::bundle_workload(SERVERS, 3, steps, 0.6, seed);
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for spread in SPREADS {
        measure(
            &seq,
            &spread_plane(spread),
            ("hetero", format!("spread={spread}")),
            &["hetero_greedy", "hetero_exact"],
            &mut rows,
            &mut skipped,
        );
    }
    for l1 in L1_SLOTS {
        measure(
            &seq,
            &l1_plane(l1),
            ("tiered", format!("l1={l1}")),
            &["tiered_waterfall"],
            &mut rows,
            &mut skipped,
        );
    }
    PlaneSweep { rows, skipped }
}

impl PlaneSweep {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Cost-plane sweep — plane-aware solvers vs the homogeneous projection",
            &["plane", "param", "algo", "ave_cost", "total", "gap"],
        );
        for r in &self.rows {
            t.push(vec![
                r.plane.clone(),
                r.param.clone(),
                r.algo.clone(),
                fmt_f(r.ave_cost),
                fmt_f(r.total_cost),
                format!("{:.1e}", r.reconciliation_gap),
            ]);
        }
        for s in &self.skipped {
            t.push(vec![
                "skipped".into(),
                s.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        t
    }

    /// Stable TSV (6-decimal costs) for the committed
    /// `results/tiered_sweep.tsv` artifact and the CI costplane-smoke
    /// diff. Skipped solvers are omitted.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("plane\tparam\talgo\tave_cost\ttotal\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:.6}\t{:.6}\n",
                r.plane, r.param, r.algo, r.ave_cost, r.total_cost
            ));
        }
        out
    }
}

mcs_model::impl_to_json!(PlaneRow {
    plane,
    param,
    algo,
    ave_cost,
    total_cost,
    reconciliation_gap
});
mcs_model::impl_to_json!(PlaneSweep { rows, skipped });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_reconciled() {
        let a = run(120, 7);
        let b = run(120, 7);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.total_cost.to_bits(), y.total_cost.to_bits());
        }
        // 120 requests exceed hetero_exact's limit: 4 skips, and per
        // point hetero keeps 2 rows (greedy + projection), tiered 2.
        assert_eq!(a.skipped.len(), SPREADS.len());
        assert_eq!(a.rows.len(), SPREADS.len() * 2 + L1_SLOTS.len() * 2);
        for r in &a.rows {
            assert!(r.reconciliation_gap < 1e-9, "{} {} gap", r.plane, r.param);
            assert!(r.ave_cost.is_finite() && r.ave_cost >= 0.0);
        }
        assert_eq!(a.to_tsv().lines().count(), a.rows.len() + 1);
    }

    #[test]
    fn uniform_spread_matches_the_homogeneous_plane() {
        // spread = 1 is the uniform embedding: hetero_greedy must price
        // it bit-identically to the homogeneous default plane.
        let seq = crate::multi_exp::bundle_workload(SERVERS, 3, 80, 0.6, 11);
        let solver = find("hetero_greedy").unwrap();
        let on_hetero = solver.solve(&seq, &RunContext::from_plane(spread_plane(1.0)));
        let on_homog = solver.solve(&seq, &RunContext::new(mcs_model::defaults::default_model()));
        assert_eq!(
            on_hetero.total_cost.to_bits(),
            on_homog.total_cost.to_bits()
        );
    }

    #[test]
    fn exact_runs_under_its_limit_and_lower_bounds_greedy() {
        let sweep = run(24, 7);
        assert!(sweep.skipped.is_empty());
        for spread in SPREADS {
            let param = format!("spread={spread}");
            let get = |algo: &str| {
                sweep
                    .rows
                    .iter()
                    .find(|r| r.param == param && r.algo == algo)
                    .unwrap_or_else(|| panic!("{param} {algo} row"))
                    .total_cost
            };
            assert!(
                get("hetero_exact") <= get("hetero_greedy") + 1e-9,
                "{param}"
            );
        }
    }

    #[test]
    fn tighter_l1_never_prices_below_a_roomier_one() {
        // Shrinking the fast tier can only push items down the ladder
        // (or out to the origin) — the waterfall cost is monotone
        // non-increasing in L1 capacity on a fixed workload... except
        // that a *tight* L1 also avoids the fast tier's 2μ holding rate.
        // Monotonicity therefore isn't guaranteed either way; pin the
        // weaker invariant that every point prices positively and the
        // knob actually moves the number somewhere in the sweep.
        let sweep = run(120, 7);
        let tiered: Vec<f64> = sweep
            .rows
            .iter()
            .filter(|r| r.plane == "tiered" && r.algo == "tiered_waterfall")
            .map(|r| r.total_cost)
            .collect();
        assert_eq!(tiered.len(), L1_SLOTS.len());
        assert!(tiered.iter().all(|&c| c > 0.0));
        assert!(
            tiered.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
            "L1 capacity knob had no effect: {tiered:?}"
        );
    }
}

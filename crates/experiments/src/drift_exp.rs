//! Correlation-drift experiment: global vs windowed packing.
//!
//! The paper's Phase 1 fixes one packing from the whole predicted
//! sequence. When the correlation structure *drifts* — an item changes
//! partners mid-trace — any single packing mis-serves part of the trace,
//! because packings are disjoint and the drifting item can only be packed
//! with one partner. The windowed variant
//! ([`dp_greedy::windowed`]) re-runs both phases per time window.
//!
//! Workload: item `d1` co-occurs with `d2` in the first half and with
//! `d3` in the second; `d4`/`d5` are stationary background. We compare
//! global DP_Greedy, windowed DP_Greedy (one window per phase), and the
//! non-packing Optimal across α, on both the drifting and a stationary
//! control workload.

use crate::par::par_map;
use mcs_model::rng::Rng;

use dp_greedy::two_phase::DpGreedyConfig;
use dp_greedy::windowed::{dp_greedy_windowed, WindowedConfig};
use mcs_engine::{find, CachingSolver, RunContext};
use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

use crate::table::{fmt_f, Table};

/// One α measurement on one workload kind.
#[derive(Debug, Clone, Copy)]
pub struct DriftRow {
    /// Discount factor.
    pub alpha: f64,
    /// True for the drifting workload, false for the stationary control.
    pub drifting: bool,
    /// Global DP_Greedy `ave_cost`.
    pub global: f64,
    /// Windowed DP_Greedy `ave_cost`.
    pub windowed: f64,
    /// Non-packing optimal `ave_cost`.
    pub optimal: f64,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct DriftExp {
    /// All rows.
    pub rows: Vec<DriftRow>,
    /// The phase boundary used as the window length.
    pub window: f64,
}

/// Builds the workload. `drifting = false` keeps `d1`–`d2` for both
/// halves (the control).
pub fn drift_workload(n: usize, drifting: bool, seed: u64) -> (RequestSeq, f64) {
    let mut rng = Rng::seed_from_u64(seed);
    let servers = 8u32;
    let mut b = RequestSeqBuilder::new(servers, 5);
    let mut t = 0.0_f64;
    let half = n / 2;
    for i in 0..n {
        t += 0.05 + rng.gen_f64() * 0.15;
        let server = rng.gen_range(0..servers);
        let partner = if drifting && i >= half { 2u32 } else { 1u32 };
        let items: Vec<u32> = match rng.gen_range(0u32..10) {
            0..=5 => vec![0, partner], // the active bundle
            6 => vec![0],              // lone d1
            7 => vec![partner],        // lone partner
            8 => vec![3],              // background
            _ => vec![4],              // background
        };
        b = b.push(server, t, items);
    }
    let seq = b.build().expect("drift workload is valid");
    // The phase boundary time (window length for the windowed run).
    let boundary = seq.get(half.min(seq.len() - 1)).time;
    (seq, boundary)
}

/// Runs the sweep with the registry's `dp_greedy` as the global packer
/// and `optimal` as the non-packing yardstick.
pub fn run(seed: u64) -> DriftExp {
    run_with(
        find("dp_greedy").expect("dp_greedy is registered"),
        find("optimal").expect("optimal is registered"),
        seed,
    )
}

/// Runs the sweep with any whole-sequence solver as the `global` column
/// and any baseline as the `optimal` column. The windowed column always
/// re-runs DP_Greedy per phase-boundary window (the drift-adaptive
/// variant under test); it is pinned to the workload's phase boundary,
/// which the registry's fixed quarter-horizon `windowed` solver cannot
/// express.
pub fn run_with(global: &dyn CachingSolver, optimal: &dyn CachingSolver, seed: u64) -> DriftExp {
    let alphas = [0.3, 0.5, 0.8];
    let mut window = 0.0;
    let mut rows = Vec::new();
    for drifting in [true, false] {
        let (seq, boundary) = drift_workload(800, drifting, seed);
        window = boundary;
        let batch: Vec<DriftRow> = par_map(&alphas, |&alpha| {
            let model = CostModel::new(2.0, 4.0, alpha).expect("valid");
            let ctx = RunContext::new(model).with_theta(0.3);
            let windowed = dp_greedy_windowed(
                &seq,
                &WindowedConfig {
                    inner: DpGreedyConfig::new(model).with_theta(0.3),
                    window: boundary,
                },
            );
            DriftRow {
                alpha,
                drifting,
                global: global.solve(&seq, &ctx).ave_cost(),
                windowed: windowed.ave_cost(),
                optimal: optimal.solve(&seq, &ctx).ave_cost(),
            }
        });
        rows.extend(batch);
    }
    DriftExp { rows, window }
}

impl DriftExp {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Correlation drift — global vs windowed packing (window = {:.1}, θ = 0.3, μ = 2, λ = 4)",
                self.window
            ),
            &["workload", "alpha", "global DP_Greedy", "windowed DP_Greedy", "Optimal"],
        );
        for r in &self.rows {
            t.push(vec![
                if r.drifting { "drifting" } else { "stationary" }.into(),
                fmt_f(r.alpha),
                fmt_f(r.global),
                fmt_f(r.windowed),
                fmt_f(r.optimal),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(DriftRow {
    alpha,
    drifting,
    global,
    windowed,
    optimal
});
mcs_model::impl_to_json!(DriftExp { rows, window });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_drifts() {
        let (a, _) = drift_workload(400, true, 3);
        let (b, _) = drift_workload(400, true, 3);
        assert_eq!(a, b);
        // First half correlates (0,1); second half correlates (0,2).
        let half_t = a.get(a.len() / 2).time;
        let early = a
            .requests()
            .iter()
            .filter(|r| r.time <= half_t)
            .filter(|r| r.contains(mcs_model::ItemId(0)) && r.contains(mcs_model::ItemId(1)))
            .count();
        let late = a
            .requests()
            .iter()
            .filter(|r| r.time > half_t)
            .filter(|r| r.contains(mcs_model::ItemId(0)) && r.contains(mcs_model::ItemId(2)))
            .count();
        assert!(early > 50);
        assert!(late > 50);
    }

    #[test]
    fn windowed_wins_on_drift_not_on_stationary() {
        let e = run(7);
        for alpha in [0.3, 0.5] {
            let drift = e
                .rows
                .iter()
                .find(|r| r.drifting && (r.alpha - alpha).abs() < 1e-9)
                .unwrap();
            assert!(
                drift.windowed < drift.global,
                "α={alpha}: windowed {} should beat global {} under drift",
                drift.windowed,
                drift.global
            );
        }
        // On the stationary control the global packing is right; windowing
        // can only add restart overhead (allow a tiny tolerance).
        for r in e.rows.iter().filter(|r| !r.drifting) {
            assert!(
                r.global <= r.windowed * 1.02 + 1e-9,
                "stationary α={}: global {} vs windowed {}",
                r.alpha,
                r.global,
                r.windowed
            );
        }
    }
}

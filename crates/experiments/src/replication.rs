//! Replication-value experiment: multi-copy optimal vs the single-copy
//! regime of the earlier literature (\[7\], \[8\]).
//!
//! The paper's model allows free replication ("a transfer operation often
//! implies a replication"); its predecessors studied a single migrating
//! copy. This experiment quantifies, per item of the city workload, what
//! replication is worth — and how far the always-migrate heuristic (the
//! upper end of \[8\]'s `1 + C/S` analysis) falls behind.

use crate::par::par_map_range;

use mcs_model::{CostModel, ItemId};
use mcs_offline::optimal;
use mcs_offline::single_copy::{single_copy_always_migrate, single_copy_optimal};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// Per-item measurement.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationRow {
    /// The item.
    pub item: u32,
    /// Requests in the item's trace.
    pub requests: usize,
    /// Multi-copy optimal cost (the paper's substrate).
    pub multi_copy: f64,
    /// Single-copy optimal cost.
    pub single_copy: f64,
    /// Always-migrate heuristic cost.
    pub always_migrate: f64,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct ReplicationExp {
    /// One row per item.
    pub rows: Vec<ReplicationRow>,
}

/// Runs the experiment under `μ = 2`, `λ = 4`.
pub fn run(config: &WorkloadConfig) -> ReplicationExp {
    let seq = generate(config);
    let model = CostModel::new(2.0, 4.0, 0.8).expect("valid");
    let rows: Vec<ReplicationRow> = par_map_range(seq.items() as usize, |i| {
        let i = i as u32;
        let trace = seq.item_trace(ItemId(i));
        ReplicationRow {
            item: i,
            requests: trace.len(),
            multi_copy: optimal(&trace, &model).cost,
            single_copy: single_copy_optimal(&trace, &model).cost,
            always_migrate: single_copy_always_migrate(&trace, &model),
        }
    });
    ReplicationExp { rows }
}

impl ReplicationExp {
    /// Aggregate savings of replication over the single-copy optimum.
    pub fn replication_saving(&self) -> f64 {
        let multi: f64 = self.rows.iter().map(|r| r.multi_copy).sum();
        let single: f64 = self.rows.iter().map(|r| r.single_copy).sum();
        if single == 0.0 {
            0.0
        } else {
            1.0 - multi / single
        }
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Replication value — multi-copy vs single-copy substrates (μ = 2, λ = 4)",
            &[
                "item",
                "n",
                "multi-copy opt",
                "single-copy opt",
                "always-migrate",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                format!("d{}", r.item + 1),
                r.requests.to_string(),
                fmt_f(r.multi_copy),
                fmt_f(r.single_copy),
                fmt_f(r.always_migrate),
            ]);
        }
        t.push(vec![
            "saving".into(),
            "-".into(),
            fmt_f(self.replication_saving()),
            "-".into(),
            "-".into(),
        ]);
        t
    }
}

mcs_model::impl_to_json!(ReplicationRow {
    item,
    requests,
    multi_copy,
    single_copy,
    always_migrate
});
mcs_model::impl_to_json!(ReplicationExp { rows });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    #[test]
    fn replication_strictly_helps_on_the_city_workload() {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 500;
        let e = run(&cfg);
        assert_eq!(e.rows.len(), 10);
        for r in &e.rows {
            assert!(r.multi_copy <= r.single_copy + 1e-9, "item d{}", r.item + 1);
            assert!(
                r.single_copy <= r.always_migrate + 1e-9,
                "item d{}",
                r.item + 1
            );
        }
        assert!(
            e.replication_saving() > 0.0,
            "expected positive saving, got {}",
            e.replication_saving()
        );
    }
}

//! # mcs-experiments — reproduction of the paper's evaluation section
//!
//! One module per figure/table of the paper (see the experiment index in
//! `DESIGN.md` §5 and the measured results in `EXPERIMENTS.md`):
//!
//! | Module       | Paper artefact | What it regenerates |
//! |--------------|----------------|---------------------|
//! | [`fig09`]    | Fig. 9  | spatial request distribution over the 50 zones |
//! | [`fig10`]    | Fig. 10 | pair frequency & Jaccard spectrum |
//! | [`fig11`]    | Fig. 11 | `ave_cost` vs Jaccard, DP_Greedy vs Optimal |
//! | [`fig12`]    | Fig. 12 | `ave_cost` vs `ρ = λ/μ` with `λ + μ = 6` |
//! | [`fig13`]    | Fig. 13 | `ave_cost` vs `α` for Package_Served / Optimal / DP_Greedy |
//! | [`ratio_exp`]| Thm. 1  | empirical `C_DPG/C*` against the `2/α` bound |
//! | [`online_exp`]| E10    | competitive ratios of the on-line policies |
//! | [`chaos_exp`]| —       | robustness: degradation under injected faults |
//! | [`solver_sweep`]| —    | every registered engine solver on one workload |
//! | [`plane_exp`]| —       | hetero/tiered cost planes vs the homogeneous projection |
//!
//! All sweeps are deterministic (seeded workloads) and parallelised with
//! the shared [`par`] helper (now hosted by `mcs_model::par`) where
//! points are independent. The `figures` binary drives them from the
//! command line. The whole-sequence runners (`fig12`, `drift_exp`,
//! `capacity_exp`, `chaos_exp`) resolve their algorithms from the
//! `mcs-engine` registry and expose `run_with(&dyn CachingSolver, ...)`
//! seams, so any registered solver can be swept without new runner code.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod capacity_exp;
pub mod chaos_exp;
pub mod drift_exp;
pub mod export;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod multi_exp;
pub mod online_exp;
pub mod par;
pub mod plane_exp;
pub mod ratio_exp;
pub mod replication;
pub mod solver_sweep;
pub mod table;

pub use table::Table;

use mcs_trace::workload::WorkloadConfig;

/// The default workload seed used by every figure (kept stable so
/// `EXPERIMENTS.md` numbers are reproducible; equals
/// [`mcs_model::defaults::DEFAULT_SEED`]).
pub const DEFAULT_SEED: u64 = mcs_model::defaults::DEFAULT_SEED; // CLUSTER 2019 conference date.

/// The shared paper-like workload configuration.
pub fn paper_workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig::paper_like(seed)
}

//! Registry sweep — every registered solver on one workload.
//!
//! The engine registry makes "run everything and compare" a one-liner;
//! this module is that one-liner, plus the table/TSV renderings the CI
//! registry-smoke job diffs against `results/registry_expected.tsv`.
//! Solvers whose [`mcs_engine::CachingSolver::request_limit`] is below
//! the workload size are skipped (and reported as skipped), so the sweep
//! is safe on arbitrarily large workloads.

use mcs_engine::{solvers, RunContext, Solution};
use mcs_model::RequestSeq;

use crate::table::{fmt_f, Table};

/// One solver's measurement.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Registry name.
    pub algo: String,
    /// `"offline"` / `"online"`.
    pub kind: String,
    /// The paper's headline metric.
    pub ave_cost: f64,
    /// Total cost.
    pub total_cost: f64,
    /// `Σ|d_i|`.
    pub total_accesses: usize,
    /// `|ledger total − total_cost|` — 0 up to float associativity.
    pub reconciliation_gap: f64,
    /// Wall-clock milliseconds of the solve.
    pub runtime_ms: f64,
}

/// Output of the registry sweep.
#[derive(Debug, Clone)]
pub struct SolverSweep {
    /// One row per solver that ran, in registry order.
    pub rows: Vec<SweepRow>,
    /// Solvers skipped because the workload exceeds their request limit.
    pub skipped: Vec<String>,
}

/// Runs every registered solver on `seq` under `ctx`.
pub fn run(seq: &RequestSeq, ctx: &RunContext) -> SolverSweep {
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for solver in solvers() {
        if solver
            .request_limit()
            .is_some_and(|limit| seq.requests().len() > limit)
        {
            skipped.push(solver.name().to_string());
            continue;
        }
        let t0 = std::time::Instant::now();
        let sol: Solution = solver.solve(seq, ctx);
        let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(SweepRow {
            algo: solver.name().to_string(),
            kind: solver.kind().label().to_string(),
            ave_cost: sol.ave_cost(),
            total_cost: sol.total_cost,
            total_accesses: sol.total_accesses,
            reconciliation_gap: sol.reconciliation_gap(),
            runtime_ms,
        });
    }
    SolverSweep { rows, skipped }
}

/// The sweep on the Section V-C running example — the fixture the CI
/// registry-smoke job pins (`results/registry_expected.tsv`).
pub fn paper_example() -> SolverSweep {
    run(
        &dp_greedy::paper_example::paper_sequence(),
        &RunContext::paper_example(),
    )
}

impl SolverSweep {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Registry sweep — every solver on one workload",
            &["algo", "kind", "ave_cost", "total", "accesses", "gap", "ms"],
        );
        for r in &self.rows {
            t.push(vec![
                r.algo.clone(),
                r.kind.clone(),
                fmt_f(r.ave_cost),
                fmt_f(r.total_cost),
                r.total_accesses.to_string(),
                format!("{:.1e}", r.reconciliation_gap),
                fmt_f(r.runtime_ms),
            ]);
        }
        for s in &self.skipped {
            t.push(vec![
                s.clone(),
                "-".into(),
                "skipped".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        t
    }

    /// Stable TSV (`algo<TAB>ave_cost` at 6 decimals) for the CI
    /// registry-smoke diff. Skipped solvers are omitted.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("algo\tave_cost\n");
        for r in &self.rows {
            out.push_str(&format!("{}\t{:.6}\n", r.algo, r.ave_cost));
        }
        out
    }
}

/// One `(trace density, K)` measurement of the fig12 K-sweep.
#[derive(Debug, Clone)]
pub struct KSweepRow {
    /// Workload label (`"sparse"` / `"dense"`).
    pub density: String,
    /// The bundle workload's co-access probability `q`.
    pub q: f64,
    /// `K` column label (`"2"`, `"3"`, …, or `"adaptive"`).
    pub k: String,
    /// The `max_group` the solver ran with.
    pub max_group: usize,
    /// The packing threshold actually used (prescan-derived when
    /// adaptive).
    pub theta: f64,
    /// Number of packages Phase 1 formed.
    pub packages: usize,
    /// Size of the largest package.
    pub largest: usize,
    /// The paper's headline metric under `dpg_k`.
    pub ave_cost: f64,
    /// Total cost under `dpg_k`.
    pub total_cost: f64,
}

/// Output of the fig12 K-sweep.
#[derive(Debug, Clone)]
pub struct KSweep {
    /// One row per `(density, K)` pair, densities outer, K inner.
    pub rows: Vec<KSweepRow>,
}

/// Sweeps the `dpg_k` solver over K ∈ {2, 3, 4, 8} plus the adaptive-θ
/// mode on two bundle-workload densities (co-access probability
/// `q = 0.35` vs `q = 0.8`) — the fig12-style "when do bigger bundles
/// win" experiment. Deterministic for a given `(steps, seed)`.
pub fn k_sweep(steps: usize, seed: u64) -> KSweep {
    use mcs_correlation::SparseCoOccurrence;
    use mcs_correlation::{adaptive_theta, greedy_matching_sparse, k_packages_sparse};

    let model = mcs_model::defaults::default_model();
    let solver = mcs_engine::find("dpg_k").expect("dpg_k is registered");
    let mut rows = Vec::new();
    for (density, q) in [("sparse", 0.35), ("dense", 0.8)] {
        let seq = crate::multi_exp::bundle_workload(12, 3, steps, q, seed);
        let co = SparseCoOccurrence::from_sequence(&seq);
        for (label, max_group, adaptive) in [
            ("2", 2usize, false),
            ("3", 3, false),
            ("4", 4, false),
            ("8", 8, false),
            ("adaptive", 8, true),
        ] {
            let mut ctx = RunContext::new(model).with_max_group(max_group);
            if adaptive {
                ctx = ctx.with_adaptive_theta();
            }
            let theta = if adaptive {
                adaptive_theta(&co, model.alpha())
            } else {
                ctx.theta
            };
            // Phase-1 shape under the same θ the solver resolves to.
            let (packages, largest) = if max_group == 2 {
                let p = greedy_matching_sparse(&co, theta);
                let n = p.pairs.len();
                (n, if n > 0 { 2 } else { 0 })
            } else {
                let ps = k_packages_sparse(&co, theta, max_group);
                (ps.package_count(), ps.largest_package())
            };
            let sol = solver.solve(&seq, &ctx);
            rows.push(KSweepRow {
                density: density.to_string(),
                q,
                k: label.to_string(),
                max_group,
                theta,
                packages,
                largest,
                ave_cost: sol.ave_cost(),
                total_cost: sol.total_cost,
            });
        }
    }
    KSweep { rows }
}

impl KSweep {
    /// Renders the K-sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "K-sweep — dpg_k cost vs package-size cap on two densities",
            &[
                "density", "q", "K", "theta", "packages", "largest", "ave_cost", "total",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                r.density.clone(),
                fmt_f(r.q),
                r.k.clone(),
                fmt_f(r.theta),
                r.packages.to_string(),
                r.largest.to_string(),
                fmt_f(r.ave_cost),
                fmt_f(r.total_cost),
            ]);
        }
        t
    }

    /// Stable TSV rendering (6-decimal costs) for the committed
    /// `results/fig12_ksweep.tsv` artifact and the CI kpack-smoke job.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("density\tq\tK\ttheta\tpackages\tlargest\tave_cost\ttotal\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{:.2}\t{}\t{:.6}\t{}\t{}\t{:.6}\t{:.6}\n",
                r.density, r.q, r.k, r.theta, r.packages, r.largest, r.ave_cost, r.total_cost
            ));
        }
        out
    }
}

mcs_model::impl_to_json!(KSweepRow {
    density,
    q,
    k,
    max_group,
    theta,
    packages,
    largest,
    ave_cost,
    total_cost
});
mcs_model::impl_to_json!(KSweep { rows });

mcs_model::impl_to_json!(SweepRow {
    algo,
    kind,
    ave_cost,
    total_cost,
    total_accesses,
    reconciliation_gap,
    runtime_ms
});
mcs_model::impl_to_json!(SolverSweep { rows, skipped });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_sweep_covers_the_whole_registry() {
        let sweep = paper_example();
        assert_eq!(
            sweep.rows.len() + sweep.skipped.len(),
            mcs_engine::solvers().len()
        );
        // The 7-request example is under every solver's limit.
        assert!(sweep.skipped.is_empty());
        let dpg = sweep.rows.iter().find(|r| r.algo == "dp_greedy").unwrap();
        assert!((dpg.total_cost - 14.96).abs() < 1e-9);
        for r in &sweep.rows {
            assert!(r.reconciliation_gap < 1e-9, "{} gap", r.algo);
        }
    }

    #[test]
    fn k_sweep_covers_both_densities_and_all_caps() {
        let sweep = k_sweep(160, 7);
        assert_eq!(sweep.rows.len(), 10);
        // Deterministic for a fixed (steps, seed).
        let again = k_sweep(160, 7);
        for (a, b) in sweep.rows.iter().zip(&again.rows) {
            assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
        }
        for r in &sweep.rows {
            assert!(r.largest <= r.max_group, "{}/{} overflowed", r.density, r.k);
            assert!(r.ave_cost.is_finite() && r.ave_cost >= 0.0);
        }
        // The dense bundle workload at K ≥ 3 must pack a full trio and
        // do no worse than the pairwise cap.
        let dense_k2 = &sweep.rows[5];
        let dense_k3 = &sweep.rows[6];
        assert_eq!(
            (dense_k2.density.as_str(), dense_k2.k.as_str()),
            ("dense", "2")
        );
        assert_eq!(dense_k3.largest, 3);
        assert!(dense_k3.total_cost <= dense_k2.total_cost + 1e-9);
        let tsv = sweep.to_tsv();
        assert_eq!(tsv.lines().count(), 11);
        assert!(tsv.starts_with("density\tq\tK\t"));
    }

    #[test]
    fn tsv_is_deterministic_and_matches_registry_order() {
        let a = paper_example().to_tsv();
        let b = paper_example().to_tsv();
        assert_eq!(a, b);
        let names: Vec<&str> = a
            .lines()
            .skip(1)
            .map(|l| l.split('\t').next().unwrap())
            .collect();
        let expected: Vec<&str> = mcs_engine::solvers().iter().map(|s| s.name()).collect();
        assert_eq!(names, expected);
    }
}

//! Registry sweep — every registered solver on one workload.
//!
//! The engine registry makes "run everything and compare" a one-liner;
//! this module is that one-liner, plus the table/TSV renderings the CI
//! registry-smoke job diffs against `results/registry_expected.tsv`.
//! Solvers whose [`mcs_engine::CachingSolver::request_limit`] is below
//! the workload size are skipped (and reported as skipped), so the sweep
//! is safe on arbitrarily large workloads.

use mcs_engine::{solvers, RunContext, Solution};
use mcs_model::RequestSeq;

use crate::table::{fmt_f, Table};

/// One solver's measurement.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Registry name.
    pub algo: String,
    /// `"offline"` / `"online"`.
    pub kind: String,
    /// The paper's headline metric.
    pub ave_cost: f64,
    /// Total cost.
    pub total_cost: f64,
    /// `Σ|d_i|`.
    pub total_accesses: usize,
    /// `|ledger total − total_cost|` — 0 up to float associativity.
    pub reconciliation_gap: f64,
    /// Wall-clock milliseconds of the solve.
    pub runtime_ms: f64,
}

/// Output of the registry sweep.
#[derive(Debug, Clone)]
pub struct SolverSweep {
    /// One row per solver that ran, in registry order.
    pub rows: Vec<SweepRow>,
    /// Solvers skipped because the workload exceeds their request limit.
    pub skipped: Vec<String>,
}

/// Runs every registered solver on `seq` under `ctx`.
pub fn run(seq: &RequestSeq, ctx: &RunContext) -> SolverSweep {
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for solver in solvers() {
        if solver
            .request_limit()
            .is_some_and(|limit| seq.requests().len() > limit)
        {
            skipped.push(solver.name().to_string());
            continue;
        }
        let t0 = std::time::Instant::now();
        let sol: Solution = solver.solve(seq, ctx);
        let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(SweepRow {
            algo: solver.name().to_string(),
            kind: solver.kind().label().to_string(),
            ave_cost: sol.ave_cost(),
            total_cost: sol.total_cost,
            total_accesses: sol.total_accesses,
            reconciliation_gap: sol.reconciliation_gap(),
            runtime_ms,
        });
    }
    SolverSweep { rows, skipped }
}

/// The sweep on the Section V-C running example — the fixture the CI
/// registry-smoke job pins (`results/registry_expected.tsv`).
pub fn paper_example() -> SolverSweep {
    run(
        &dp_greedy::paper_example::paper_sequence(),
        &RunContext::paper_example(),
    )
}

impl SolverSweep {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Registry sweep — every solver on one workload",
            &["algo", "kind", "ave_cost", "total", "accesses", "gap", "ms"],
        );
        for r in &self.rows {
            t.push(vec![
                r.algo.clone(),
                r.kind.clone(),
                fmt_f(r.ave_cost),
                fmt_f(r.total_cost),
                r.total_accesses.to_string(),
                format!("{:.1e}", r.reconciliation_gap),
                fmt_f(r.runtime_ms),
            ]);
        }
        for s in &self.skipped {
            t.push(vec![
                s.clone(),
                "-".into(),
                "skipped".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        t
    }

    /// Stable TSV (`algo<TAB>ave_cost` at 6 decimals) for the CI
    /// registry-smoke diff. Skipped solvers are omitted.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("algo\tave_cost\n");
        for r in &self.rows {
            out.push_str(&format!("{}\t{:.6}\n", r.algo, r.ave_cost));
        }
        out
    }
}

mcs_model::impl_to_json!(SweepRow {
    algo,
    kind,
    ave_cost,
    total_cost,
    total_accesses,
    reconciliation_gap,
    runtime_ms
});
mcs_model::impl_to_json!(SolverSweep { rows, skipped });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_sweep_covers_the_whole_registry() {
        let sweep = paper_example();
        assert_eq!(
            sweep.rows.len() + sweep.skipped.len(),
            mcs_engine::solvers().len()
        );
        // The 7-request example is under every solver's limit.
        assert!(sweep.skipped.is_empty());
        let dpg = sweep.rows.iter().find(|r| r.algo == "dp_greedy").unwrap();
        assert!((dpg.total_cost - 14.96).abs() < 1e-9);
        for r in &sweep.rows {
            assert!(r.reconciliation_gap < 1e-9, "{} gap", r.algo);
        }
    }

    #[test]
    fn tsv_is_deterministic_and_matches_registry_order() {
        let a = paper_example().to_tsv();
        let b = paper_example().to_tsv();
        assert_eq!(a, b);
        let names: Vec<&str> = a
            .lines()
            .skip(1)
            .map(|l| l.split('\t').next().unwrap())
            .collect();
        let expected: Vec<&str> = mcs_engine::solvers().iter().map(|s| s.name()).collect();
        assert_eq!(names, expected);
    }
}

//! E10 — competitive ratios of the on-line policies on the city workload.
//!
//! Each item's trace (its taxi's requests) is served on-line by
//! ski-rental, always-transfer and cache-everywhere; the table reports the
//! measured competitive ratio of each against the off-line optimum.

use crate::par::{par_map, par_map_range};

use mcs_model::{CostModel, ItemId};
use mcs_online::extremes::{always_transfer, cache_everywhere};
use mcs_online::harness::competitive_ratio;
use mcs_online::online_dpg::{online_dp_greedy, OnlineDpgConfig};
use mcs_online::ski_rental::ski_rental;
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// Ratios for one item trace.
#[derive(Debug, Clone, Copy)]
pub struct OnlineRow {
    /// The item.
    pub item: u32,
    /// Requests in the item's trace.
    pub requests: usize,
    /// Off-line optimal cost.
    pub offline: f64,
    /// Ski-rental competitive ratio.
    pub ski_rental: f64,
    /// Always-transfer ratio.
    pub always_transfer: f64,
    /// Cache-everywhere ratio.
    pub cache_everywhere: f64,
}

/// Whole-sequence comparison of correlation-aware vs blind on-line
/// serving at one α.
#[derive(Debug, Clone, Copy)]
pub struct OnlineDpgRow {
    /// Discount factor.
    pub alpha: f64,
    /// On-line DP_Greedy total cost.
    pub online_dpg: f64,
    /// Package transfers it batched.
    pub package_transfers: usize,
    /// Correlation-blind per-item ski-rental total.
    pub blind: f64,
}

/// Output of the on-line experiment.
#[derive(Debug, Clone)]
pub struct OnlineExp {
    /// One row per item.
    pub rows: Vec<OnlineRow>,
    /// Whole-sequence on-line DP_Greedy comparison per α.
    pub dpg_rows: Vec<OnlineDpgRow>,
}

/// Runs the experiment under `μ = λ = 3`.
pub fn run(config: &WorkloadConfig) -> OnlineExp {
    let seq = generate(config);
    let model = CostModel::new(3.0, 3.0, 0.8).expect("valid");
    let rows: Vec<OnlineRow> = par_map_range(seq.items() as usize, |i| {
        let i = i as u32;
        let trace = seq.item_trace(ItemId(i));
        let sr = competitive_ratio(&trace, &model, ski_rental);
        let at = competitive_ratio(&trace, &model, always_transfer);
        let ce = competitive_ratio(&trace, &model, cache_everywhere);
        OnlineRow {
            item: i,
            requests: trace.len(),
            offline: sr.offline,
            ski_rental: sr.ratio,
            always_transfer: at.ratio,
            cache_everywhere: ce.ratio,
        }
    });

    let dpg_rows: Vec<OnlineDpgRow> = par_map(&[0.3, 0.5, 0.8], |&alpha| {
        let model = CostModel::new(3.0, 3.0, alpha).expect("valid");
        let out = online_dp_greedy(
            &seq,
            &OnlineDpgConfig {
                model,
                theta: 0.3,
                refresh_every: 100,
                decay: 1.0,
            },
        );
        let blind: f64 = (0..seq.items())
            .map(|i| ski_rental(&seq.item_trace(ItemId(i)), &model).cost)
            .sum();
        OnlineDpgRow {
            alpha,
            online_dpg: out.cost,
            package_transfers: out.package_transfers,
            blind,
        }
    });

    OnlineExp { rows, dpg_rows }
}

impl OnlineExp {
    /// Worst ski-rental ratio across items.
    pub fn worst_ski_rental(&self) -> f64 {
        self.rows.iter().map(|r| r.ski_rental).fold(0.0, f64::max)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E10 — on-line competitive ratios vs off-line optimum (μ = λ = 3)",
            &[
                "item",
                "n",
                "offline cost",
                "ski-rental",
                "always-transfer",
                "cache-everywhere",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                format!("d{}", r.item + 1),
                r.requests.to_string(),
                fmt_f(r.offline),
                fmt_f(r.ski_rental),
                fmt_f(r.always_transfer),
                fmt_f(r.cache_everywhere),
            ]);
        }
        t.push(vec![
            "worst".into(),
            "-".into(),
            "-".into(),
            fmt_f(self.worst_ski_rental()),
            "-".into(),
            "-".into(),
        ]);
        t
    }

    /// Renders the on-line DP_Greedy comparison table.
    pub fn dpg_table(&self) -> Table {
        let mut t = Table::new(
            "On-line DP_Greedy vs correlation-blind ski-rental (whole sequence)",
            &[
                "alpha",
                "online DP_Greedy",
                "pkg transfers",
                "blind ski-rental",
                "saving",
            ],
        );
        for r in &self.dpg_rows {
            t.push(vec![
                fmt_f(r.alpha),
                fmt_f(r.online_dpg),
                r.package_transfers.to_string(),
                fmt_f(r.blind),
                format!("{:+.1}%", 100.0 * (1.0 - r.online_dpg / r.blind)),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(OnlineRow {
    item,
    requests,
    offline,
    ski_rental,
    always_transfer,
    cache_everywhere
});
mcs_model::impl_to_json!(OnlineDpgRow {
    alpha,
    online_dpg,
    package_transfers,
    blind
});
mcs_model::impl_to_json!(OnlineExp { rows, dpg_rows });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    #[test]
    fn ski_rental_stays_three_competitive_on_the_city_workload() {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 800;
        let e = run(&cfg);
        assert_eq!(e.rows.len(), 10);
        for r in &e.rows {
            assert!(r.ski_rental >= 1.0 - 1e-9);
            assert!(
                r.ski_rental <= 3.0 + 1e-9,
                "item d{} ratio {}",
                r.item + 1,
                r.ski_rental
            );
        }
        // The hedge should beat at least one extreme on average.
        let mean_sr: f64 = e.rows.iter().map(|r| r.ski_rental).sum::<f64>() / e.rows.len() as f64;
        let mean_at: f64 =
            e.rows.iter().map(|r| r.always_transfer).sum::<f64>() / e.rows.len() as f64;
        let mean_ce: f64 =
            e.rows.iter().map(|r| r.cache_everywhere).sum::<f64>() / e.rows.len() as f64;
        assert!(mean_sr <= mean_at.max(mean_ce) + 1e-9);
    }

    #[test]
    fn online_dpg_saves_over_blind_at_low_alpha() {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 600;
        let e = run(&cfg);
        let low = e.dpg_rows.iter().find(|r| r.alpha == 0.3).unwrap();
        assert!(
            low.online_dpg < low.blind,
            "α=0.3: online DPG {} should beat blind {}",
            low.online_dpg,
            low.blind
        );
        assert!(low.package_transfers > 0);
        // The table renders.
        assert!(e.dpg_table().rows.len() == e.dpg_rows.len());
    }
}

//! Cost-oriented vs capacity-oriented caching — the paper's framing claim.
//!
//! "The data caching strategy in the cloud is often cost-oriented, instead
//! of capacity-oriented as in classical caching problem." This experiment
//! prices classical slot-managed caching (LRU / GreedyDual at several
//! capacities) in the paper's monetary model and compares it against the
//! cost-oriented algorithms (per-item Optimal and DP_Greedy) on the same
//! city workload.

use crate::par::par_map;

use mcs_engine::{find, CachingSolver, RunContext};
use mcs_model::CostModel;
use mcs_online::capacity::{capacity_run, EvictionPolicy};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// One capacity point.
#[derive(Debug, Clone, Copy)]
pub struct CapacityRow {
    /// Slots per edge server.
    pub capacity: usize,
    /// LRU total monetary cost.
    pub lru: f64,
    /// GreedyDual total monetary cost.
    pub greedy_dual: f64,
    /// LRU hit ratio over item accesses.
    pub lru_hit_ratio: f64,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct CapacityExp {
    /// Capacity sweep rows.
    pub rows: Vec<CapacityRow>,
    /// Cost-oriented references on the same workload.
    pub optimal: f64,
    /// DP_Greedy total.
    pub dp_greedy: f64,
}

/// Runs the sweep under `μ = 2`, `λ = 4`, with the registry's `optimal`
/// and `dp_greedy` as the cost-oriented references.
pub fn run(config: &WorkloadConfig) -> CapacityExp {
    run_with(
        find("optimal").expect("optimal is registered"),
        find("dp_greedy").expect("dp_greedy is registered"),
        config,
    )
}

/// Runs the sweep with any two cost-oriented reference solvers — the
/// first fills the `optimal` column, the second `dp_greedy`.
pub fn run_with(
    optimal: &dyn CachingSolver,
    dp_greedy: &dyn CachingSolver,
    config: &WorkloadConfig,
) -> CapacityExp {
    let seq = generate(config);
    let model = CostModel::new(2.0, 4.0, 0.8).expect("valid");
    let accesses = seq.total_item_accesses() as f64;

    let rows: Vec<CapacityRow> = par_map(&[1usize, 2, 4, 8], |&capacity| {
        let lru = capacity_run(&seq, &model, capacity, EvictionPolicy::Lru);
        let gd = capacity_run(&seq, &model, capacity, EvictionPolicy::GreedyDual);
        CapacityRow {
            capacity,
            lru: lru.cost,
            greedy_dual: gd.cost,
            lru_hit_ratio: lru.hits as f64 / accesses,
        }
    });

    let ctx = RunContext::new(model).with_theta(0.3);
    CapacityExp {
        rows,
        optimal: optimal.solve(&seq, &ctx).total_cost,
        dp_greedy: dp_greedy.solve(&seq, &ctx).total_cost,
    }
}

impl CapacityExp {
    /// Best capacity-oriented cost across the sweep.
    pub fn best_capacity_cost(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| [r.lru, r.greedy_dual])
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Cost-oriented vs capacity-oriented caching (μ = 2, λ = 4)",
            &["strategy", "capacity", "total cost", "hit ratio"],
        );
        for r in &self.rows {
            t.push(vec![
                "LRU".into(),
                r.capacity.to_string(),
                fmt_f(r.lru),
                fmt_f(r.lru_hit_ratio),
            ]);
            t.push(vec![
                "GreedyDual".into(),
                r.capacity.to_string(),
                fmt_f(r.greedy_dual),
                "-".into(),
            ]);
        }
        t.push(vec![
            "Optimal (cost-oriented)".into(),
            "∞".into(),
            fmt_f(self.optimal),
            "-".into(),
        ]);
        t.push(vec![
            "DP_Greedy (cost-oriented)".into(),
            "∞".into(),
            fmt_f(self.dp_greedy),
            "-".into(),
        ]);
        t
    }
}

mcs_model::impl_to_json!(CapacityRow {
    capacity,
    lru,
    greedy_dual,
    lru_hit_ratio
});
mcs_model::impl_to_json!(CapacityExp {
    rows,
    optimal,
    dp_greedy
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    #[test]
    fn cost_oriented_beats_every_capacity_point() {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 500;
        let e = run(&cfg);
        assert_eq!(e.rows.len(), 4);
        let best_cap = e.best_capacity_cost();
        assert!(
            e.optimal < best_cap,
            "Optimal {} should beat best capacity-oriented {best_cap}",
            e.optimal
        );
        assert!(
            e.dp_greedy < e.optimal,
            "DP_Greedy beats Optimal on this workload"
        );
        // Hit ratio improves with capacity.
        for w in e.rows.windows(2) {
            assert!(w[0].lru_hit_ratio <= w[1].lru_hit_ratio + 1e-9);
        }
    }
}

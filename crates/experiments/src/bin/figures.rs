//! Command-line driver regenerating every figure/table of the paper.
//!
//! ```text
//! figures [--fig 9|10|11|12|13] [--ratio] [--online] [--all]
//!         [--seed N] [--steps N] [--json DIR]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--json DIR` additionally
//! writes each result as a JSON file for provenance (referenced from
//! EXPERIMENTS.md).

use std::path::PathBuf;

use mcs_experiments::{
    ablations, capacity_exp, chaos_exp, drift_exp, fig09, fig10, fig11, fig12, fig13, multi_exp,
    online_exp, plane_exp, ratio_exp, replication, solver_sweep,
};
use mcs_experiments::{paper_workload, DEFAULT_SEED};

#[derive(Debug)]
struct Args {
    figs: Vec<u32>,
    ratio: bool,
    online: bool,
    ablations: bool,
    chaos: bool,
    registry: bool,
    ksweep: bool,
    tiered: bool,
    seed: u64,
    steps: Option<usize>,
    json: Option<PathBuf>,
    dat: Option<PathBuf>,
    tsv: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figs: Vec::new(),
        ratio: false,
        online: false,
        ablations: false,
        chaos: false,
        registry: false,
        ksweep: false,
        tiered: false,
        seed: DEFAULT_SEED,
        steps: None,
        json: None,
        dat: None,
        tsv: None,
    };
    let mut it = std::env::args().skip(1);
    let mut any = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                let v = it.next().ok_or("--fig needs a number")?;
                args.figs.push(v.parse().map_err(|_| "bad --fig value")?);
                any = true;
            }
            "--ratio" => {
                args.ratio = true;
                any = true;
            }
            "--online" => {
                args.online = true;
                any = true;
            }
            "--ablations" => {
                args.ablations = true;
                any = true;
            }
            "--chaos" => {
                args.chaos = true;
                any = true;
            }
            "--registry" => {
                args.registry = true;
                any = true;
            }
            "--ksweep" => {
                args.ksweep = true;
                any = true;
            }
            "--tiered" => {
                args.tiered = true;
                any = true;
            }
            "--all" => {
                args.figs = vec![9, 10, 11, 12, 13];
                args.ratio = true;
                args.online = true;
                args.ablations = true;
                args.chaos = true;
                args.registry = true;
                args.ksweep = true;
                args.tiered = true;
                any = true;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| "bad --seed value")?;
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                args.steps = Some(v.parse().map_err(|_| "bad --steps value")?);
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a directory")?;
                args.json = Some(PathBuf::from(v));
            }
            "--dat" => {
                let v = it.next().ok_or("--dat needs a directory")?;
                args.dat = Some(PathBuf::from(v));
            }
            "--tsv" => {
                let v = it.next().ok_or("--tsv needs a file path")?;
                args.tsv = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "figures [--fig 9|10|11|12|13] [--ratio] [--online] [--ablations] \
                     [--chaos] [--registry] [--ksweep] [--tiered] [--all] [--seed N] \
                     [--steps N] [--json DIR] [--tsv FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !any {
        args.figs = vec![9, 10, 11, 12, 13];
        args.ratio = true;
        args.online = true;
        args.ablations = true;
        args.chaos = true;
        args.registry = true;
        args.ksweep = true;
        args.tiered = true;
    }
    Ok(args)
}

fn write_dat(dir: &Option<PathBuf>, name: &str, title: &str, columns: &[&str], rows: &[Vec<f64>]) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create dat dir");
        let path = dir.join(format!("{name}.dat"));
        mcs_experiments::export::write_dat(&path, title, columns, rows).expect("write dat");
        eprintln!("wrote {}", path.display());
    }
}

fn write_json<T: mcs_model::json::ToJson>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, value.to_json().to_string_pretty()).expect("write json");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut config = paper_workload(args.seed);
    if let Some(steps) = args.steps {
        config.steps = steps;
    }
    eprintln!(
        "workload: {} zones, {} taxis, {} steps, seed {}",
        config.grid.zones(),
        config.taxis,
        config.steps,
        args.seed
    );

    for fig in &args.figs {
        match fig {
            9 => {
                let f = fig09::run(&config);
                println!("{}", f.table());
                write_json(&args.json, "fig09", &f);
            }
            10 => {
                let f = fig10::run(&config);
                println!("{}", f.table(10));
                write_json(&args.json, "fig10", &f);
            }
            11 => {
                let f = fig11::run(&config);
                println!("{}", f.table());
                write_json(&args.json, "fig11", &f);
                write_dat(
                    &args.dat,
                    "fig11",
                    "ave_cost vs Jaccard",
                    &[
                        "jaccard",
                        "dp_greedy",
                        "optimal",
                        "dpg_cache",
                        "dpg_transfer",
                        "dpg_package",
                        "runtime_ms",
                    ],
                    &f.to_rows(),
                );
            }
            12 => {
                let f = fig12::run(&config, &fig12::default_rhos());
                println!("{}", f.table());
                println!("peak at rho = {:.2}\n", f.peak_rho());
                write_json(&args.json, "fig12", &f);
                write_dat(
                    &args.dat,
                    "fig12",
                    "ave_cost vs rho (lambda+mu=6)",
                    &[
                        "rho",
                        "dp_greedy",
                        "optimal",
                        "dpg_cache",
                        "dpg_transfer",
                        "dpg_package",
                        "runtime_ms",
                    ],
                    &f.to_rows(),
                );
            }
            13 => {
                let f = fig13::run(&config);
                println!("{}", f.table());
                write_json(&args.json, "fig13", &f);
                write_dat(
                    &args.dat,
                    "fig13",
                    "ave_cost vs alpha",
                    &[
                        "alpha",
                        "jaccard",
                        "package_served",
                        "optimal",
                        "dp_greedy",
                        "dpg_cache",
                        "dpg_transfer",
                        "dpg_package",
                        "runtime_ms",
                    ],
                    &f.to_rows(),
                );
            }
            other => eprintln!("no such figure: {other}"),
        }
    }
    if args.ratio {
        let e = ratio_exp::run(200, args.seed);
        println!("{}", e.table());
        write_json(&args.json, "ratio", &e);
    }
    if args.online {
        let e = online_exp::run(&config);
        println!("{}", e.table());
        println!("{}", e.dpg_table());
        write_json(&args.json, "online", &e);
    }
    if args.ablations {
        let a = ablations::run(&config);
        for t in a.tables() {
            println!("{t}");
        }
        write_json(&args.json, "ablations", &a);

        let r = replication::run(&config);
        println!("{}", r.table());
        write_json(&args.json, "replication", &r);

        let m = multi_exp::run(args.seed);
        println!("{}", m.table());
        write_json(&args.json, "multi_item", &m);

        let d = drift_exp::run(args.seed);
        println!("{}", d.table());
        write_json(&args.json, "drift", &d);

        let cap = capacity_exp::run(&config);
        println!("{}", cap.table());
        write_json(&args.json, "capacity", &cap);
    }
    if args.chaos {
        let c = chaos_exp::run(&config, args.seed);
        println!("{}", c.table());
        println!("worst degradation ratio: {:.4}\n", c.worst_ratio());
        write_json(&args.json, "chaos", &c);
    }
    if args.registry {
        // The paper-example sweep the CI registry-smoke job pins: every
        // registered solver, `ave_cost` at 6 decimals.
        let s = solver_sweep::paper_example();
        println!("{}", s.table());
        // No --json artefact here: SweepRow carries wall-clock runtimes,
        // which would make the provenance directory non-reproducible.
        // The deterministic projection is the TSV.
        if let Some(path) = &args.tsv {
            std::fs::write(path, s.to_tsv()).expect("write tsv");
            eprintln!("wrote {}", path.display());
        }
    }
    if args.ksweep {
        // The fig12 K-sweep: dpg_k over K ∈ {2,3,4,8} + adaptive on two
        // bundle densities. Fully deterministic, so both the JSON
        // provenance artefact and the TSV are reproducible.
        let steps = args.steps.unwrap_or(600);
        let k = solver_sweep::k_sweep(steps, args.seed);
        println!("{}", k.table());
        write_json(&args.json, "ksweep", &k);
        // `--tsv` belongs to the registry sweep when both are selected
        // (the CI registry-smoke contract); ksweep writes it otherwise.
        if !args.registry {
            if let Some(path) = &args.tsv {
                std::fs::write(path, k.to_tsv()).expect("write tsv");
                eprintln!("wrote {}", path.display());
            }
        }
    }
    if args.tiered {
        // The cost-plane sweep: hetero μ-spread and tiered L1-capacity
        // planes vs their homogeneous projections. Deterministic, so
        // both the JSON provenance artefact and the TSV are
        // reproducible (`results/tiered_sweep.tsv`).
        let steps = args.steps.unwrap_or(400);
        let p = plane_exp::run(steps, args.seed);
        println!("{}", p.table());
        write_json(&args.json, "tiered", &p);
        // `--tsv` precedence mirrors the ksweep rule: the registry
        // sweep owns it first, then ksweep, then this sweep.
        if !args.registry && !args.ksweep {
            if let Some(path) = &args.tsv {
                std::fs::write(path, p.to_tsv()).expect("write tsv");
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

//! E7 / Theorem 1 — empirical approximation ratio `C_DPG / C*` vs `2/α`.
//!
//! Random small two-item instances (where the exact packed optimum is
//! computable) are solved by both DP_Greedy and the exact packed-model DP;
//! the worst observed ratio per α is reported against the theorem's bound.

use crate::par::par_map_range;
use mcs_model::rng::Rng;

use dp_greedy::ratio::ratio_check;
use dp_greedy::two_phase::DpGreedyConfig;
use mcs_model::{CostModel, ItemId, RequestSeq, RequestSeqBuilder};

use crate::table::{fmt_f, Table};

/// Aggregated ratios for one α.
#[derive(Debug, Clone, Copy)]
pub struct RatioRow {
    /// Discount factor.
    pub alpha: f64,
    /// Theorem 1's bound `2/α`.
    pub bound: f64,
    /// Worst observed `C_DPG / C*`.
    pub max_ratio: f64,
    /// Mean observed ratio.
    pub mean_ratio: f64,
    /// Number of instances.
    pub samples: usize,
}

/// Output of the ratio experiment.
#[derive(Debug, Clone)]
pub struct RatioExp {
    /// One row per α.
    pub rows: Vec<RatioRow>,
}

/// Generates one random two-item instance.
fn random_instance(rng: &mut Rng, servers: u32, max_n: usize) -> RequestSeq {
    let n = rng.gen_range(2..=max_n);
    let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1..=80)).collect();
    ticks.sort_unstable();
    ticks.dedup();
    let mut b = RequestSeqBuilder::new(servers, 2);
    for &t in &ticks {
        let items: Vec<u32> = match rng.gen_range(0u32..3) {
            0 => vec![0],
            1 => vec![1],
            _ => vec![0, 1],
        };
        b = b.push(rng.gen_range(0..servers), t as f64 / 10.0, items);
    }
    b.build().expect("instance is valid")
}

/// Runs `samples` random instances per α (parallel across instances).
pub fn run(samples: usize, seed: u64) -> RatioExp {
    let alphas = [0.2, 0.4, 0.6, 0.8, 1.0];
    let rows = alphas
        .iter()
        .map(|&alpha| {
            let ratios: Vec<f64> = par_map_range(samples, |i| {
                let mut rng = Rng::seed_from_u64(seed ^ (i as u64) << 8 ^ (alpha * 100.0) as u64);
                let seq = random_instance(&mut rng, 3, 9);
                let model = CostModel::new(
                    rng.gen_range(1u32..=30) as f64 / 10.0,
                    rng.gen_range(1u32..=30) as f64 / 10.0,
                    alpha,
                )
                .expect("valid");
                let config = DpGreedyConfig::new(model);
                ratio_check(&seq, ItemId(0), ItemId(1), &config).ratio
            });
            let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            RatioRow {
                alpha,
                bound: 2.0 / alpha,
                max_ratio,
                mean_ratio,
                samples: ratios.len(),
            }
        })
        .collect();
    RatioExp { rows }
}

impl RatioExp {
    /// Renders the summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Theorem 1 — empirical approximation ratio vs the 2/α bound",
            &["alpha", "bound 2/α", "max ratio", "mean ratio", "samples"],
        );
        for r in &self.rows {
            t.push(vec![
                fmt_f(r.alpha),
                fmt_f(r.bound),
                fmt_f(r.max_ratio),
                fmt_f(r.mean_ratio),
                r.samples.to_string(),
            ]);
        }
        t
    }
}

mcs_model::impl_to_json!(RatioRow {
    alpha,
    bound,
    max_ratio,
    mean_ratio,
    samples
});
mcs_model::impl_to_json!(RatioExp { rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_across_alphas() {
        let e = run(60, 77);
        assert_eq!(e.rows.len(), 5);
        for r in &e.rows {
            assert!(
                r.max_ratio <= r.bound + 1e-9,
                "α={}: max ratio {} exceeds bound {}",
                r.alpha,
                r.max_ratio,
                r.bound
            );
            assert!(r.mean_ratio >= 0.9, "degenerate mean {}", r.mean_ratio);
        }
    }
}

//! Minimal markdown table emitter for experiment output.

use std::fmt;

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the headers.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }
}

/// Formats a float for table cells.
pub fn fmt_f(x: f64) -> String {
    format!("{x:.4}")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let body = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", fmt_row(&sep))?;
        for r in &self.rows {
            writeln!(f, "{}", fmt_row(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.push(vec!["1".into(), fmt_f(1.5)]);
        t.push(vec!["22".into(), fmt_f(0.25)]);
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("| 22 | 0.2500 |"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_misshapen_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}

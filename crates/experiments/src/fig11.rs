//! E4 / Fig. 11 — impact of the Jaccard similarity on DP_Greedy.
//!
//! For every item pair of the workload, we measure the per-pair `ave_cost`
//! of DP_Greedy (the pair packed, Phase 2 applied) against the Optimal
//! yardstick (both items served individually by the optimal off-line
//! algorithm). The paper's finding: DP_Greedy improves with the pair's
//! Jaccard similarity, with break-even around `J ≈ 0.3` — which is exactly
//! why its experiments set `θ = 0.3`.

use crate::par::par_map;

use dp_greedy::baselines::optimal_pair;
use dp_greedy::ledger::pair_ledger;
use dp_greedy::two_phase::{dp_greedy_pair, DpGreedyConfig};
use mcs_model::{CostModel, ItemId};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// One pair measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// First item of the pair.
    pub a: u32,
    /// Second item.
    pub b: u32,
    /// Measured Jaccard similarity.
    pub jaccard: f64,
    /// DP_Greedy `ave_cost` over the pair's accesses.
    pub dp_greedy: f64,
    /// Optimal (non-packing) `ave_cost` over the same accesses.
    pub optimal: f64,
    /// Cache share of the DP_Greedy per-access cost (decision ledger).
    pub dpg_cache: f64,
    /// Transfer share of the DP_Greedy per-access cost.
    pub dpg_transfer: f64,
    /// Package-delivery share of the DP_Greedy per-access cost.
    pub dpg_package: f64,
    /// Wall-clock milliseconds of the DP_Greedy Phase-2 run on this pair.
    pub runtime_ms: f64,
}

/// Output of the Fig. 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Rows sorted by ascending Jaccard.
    pub rows: Vec<Fig11Row>,
    /// Estimated break-even Jaccard (first J where DP_Greedy wins for all
    /// higher-J pairs), if any.
    pub break_even: Option<f64>,
}

/// Runs the experiment with the paper's `α = 0.8` and the Fig.-12-family
/// rates at the peak ratio `ρ = 2` (`μ = 2`, `λ = 4`, `λ + μ = 6`).
pub fn run(config: &WorkloadConfig) -> Fig11 {
    let seq = generate(config);
    let model = CostModel::new(2.0, 4.0, 0.8).expect("valid model");
    let dpg_config = DpGreedyConfig::new(model).with_theta(0.3);

    let k = seq.items();
    let pairs: Vec<(u32, u32)> = (0..k)
        .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
        .collect();

    let mut rows: Vec<Fig11Row> = par_map(&pairs, |&(i, j)| {
        let (a, b) = (ItemId(i), ItemId(j));
        let pv = seq.pair_view(a, b);
        let accesses = pv.count_a() + pv.count_b();
        if accesses == 0 {
            return None;
        }
        let t0 = std::time::Instant::now();
        let report = dp_greedy_pair(&seq, a, b, &dpg_config);
        let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
        let opt = optimal_pair(&seq, a, b, &model);
        let breakdown = pair_ledger(&report, &model).breakdown();
        let per_access = 1.0 / accesses as f64;
        Some(Fig11Row {
            a: i,
            b: j,
            jaccard: pv.jaccard(),
            dp_greedy: report.total() * per_access,
            optimal: opt * per_access,
            dpg_cache: breakdown.cache * per_access,
            dpg_transfer: breakdown.transfer * per_access,
            dpg_package: breakdown.package_delivery * per_access,
            runtime_ms,
        })
    })
    .into_iter()
    .flatten()
    .collect();
    rows.sort_by(|x, y| x.jaccard.partial_cmp(&y.jaccard).unwrap());

    // Break-even: smallest J such that every row with J' >= J has
    // dp_greedy <= optimal.
    let mut break_even = None;
    for (idx, row) in rows.iter().enumerate() {
        if rows[idx..].iter().all(|r| r.dp_greedy <= r.optimal + 1e-12) {
            break_even = Some(row.jaccard);
            break;
        }
    }

    Fig11 { rows, break_even }
}

impl Fig11 {
    /// Renders the measurement table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 11 — ave_cost vs Jaccard similarity (θ = 0.3, α = 0.8, μ = 2, λ = 4)",
            &[
                "pair",
                "jaccard",
                "DP_Greedy",
                "Optimal",
                "winner",
                "dpg_cache",
                "dpg_transfer",
                "dpg_pkg",
                "ms",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                format!("(d{}, d{})", r.a + 1, r.b + 1),
                fmt_f(r.jaccard),
                fmt_f(r.dp_greedy),
                fmt_f(r.optimal),
                if r.dp_greedy <= r.optimal {
                    "DP_Greedy".into()
                } else {
                    "Optimal".into()
                },
                fmt_f(r.dpg_cache),
                fmt_f(r.dpg_transfer),
                fmt_f(r.dpg_package),
                fmt_f(r.runtime_ms),
            ]);
        }
        if let Some(be) = self.break_even {
            let mut row = vec!["break-even".into(), fmt_f(be)];
            row.extend(std::iter::repeat_n("-".to_string(), 7));
            t.push(row);
        }
        t
    }
}

mcs_model::impl_to_json!(Fig11Row {
    a,
    b,
    jaccard,
    dp_greedy,
    optimal,
    dpg_cache,
    dpg_transfer,
    dpg_package,
    runtime_ms
});
mcs_model::impl_to_json!(Fig11 { rows, break_even });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    #[test]
    fn dp_greedy_wins_at_high_jaccard_and_not_at_low() {
        let f = run(&paper_workload(DEFAULT_SEED));
        assert!(f.rows.len() >= 10);
        // Highest-J pair: DP_Greedy must beat Optimal (the Fig. 11 trend).
        let hi = f.rows.last().unwrap();
        assert!(
            hi.dp_greedy < hi.optimal,
            "at J={} DP_Greedy {} should beat Optimal {}",
            hi.jaccard,
            hi.dp_greedy,
            hi.optimal
        );
        // The gain at the top exceeds the gain at the bottom: the curve has
        // the paper's downward-relative trend.
        let lo = &f.rows[0];
        let gain_hi = hi.optimal - hi.dp_greedy;
        let gain_lo = lo.optimal - lo.dp_greedy;
        assert!(
            gain_hi > gain_lo,
            "gain should grow with J: hi {gain_hi} vs lo {gain_lo}"
        );
    }

    #[test]
    fn break_even_exists_in_a_plausible_band() {
        let f = run(&paper_workload(DEFAULT_SEED));
        let be = f.break_even.expect("a break-even Jaccard should exist");
        // The paper reports ≈ 0.3 on its dataset; accept a generous band
        // for the synthetic one (the in-tree PRNG's workload lands its
        // break-even a little above the old generator's).
        assert!(
            (0.1..=0.65).contains(&be),
            "break-even {be} out of plausible band"
        );
    }
}

//! E6 / Fig. 13 — impact of the discount factor `α`.
//!
//! For `α ∈ {0.2, 0.4, 0.6, 0.8}` and every designed item pair (x-axis:
//! measured Jaccard similarity), compare three algorithms per the paper:
//!
//! * **Package_Served** — always pack (one extreme);
//! * **Optimal** — never pack (the other extreme);
//! * **DP_Greedy** — selective packing.
//!
//! Expected shape: at small `α` packing is nearly free, Package_Served and
//! DP_Greedy win everywhere and Optimal is worst; as `α` grows
//! Package_Served deteriorates while DP_Greedy tracks the better of the
//! two extremes thanks to its selective packing.

use crate::par::par_map;

use dp_greedy::baselines::{optimal_pair, package_served_pair};
use dp_greedy::ledger::{optimal_pair_ledger, pair_ledger};
use dp_greedy::two_phase::{dp_greedy_pair, DpGreedyConfig};
use mcs_model::{CostModel, ItemId};
use mcs_trace::workload::{generate, WorkloadConfig};

use crate::table::{fmt_f, Table};

/// One (α, pair) measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig13Row {
    /// Discount factor.
    pub alpha: f64,
    /// First item.
    pub a: u32,
    /// Second item.
    pub b: u32,
    /// Measured Jaccard similarity.
    pub jaccard: f64,
    /// Package_Served per-access cost.
    pub package_served: f64,
    /// Optimal (non-packing) per-access cost.
    pub optimal: f64,
    /// DP_Greedy per-access cost.
    pub dp_greedy: f64,
    /// Cache share of the DP_Greedy per-access cost (decision ledger).
    pub dpg_cache: f64,
    /// Transfer share of the DP_Greedy per-access cost.
    pub dpg_transfer: f64,
    /// Package-delivery share of the DP_Greedy per-access cost.
    pub dpg_package: f64,
    /// Wall-clock milliseconds of the DP_Greedy path for this (α, pair).
    pub runtime_ms: f64,
}

/// Output of the Fig. 13 experiment.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// All rows, grouped by α then ascending Jaccard.
    pub rows: Vec<Fig13Row>,
}

/// The paper's α grid.
pub const ALPHAS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

/// The threshold DP_Greedy packs above (the paper's `θ = 0.3`).
pub const THETA: f64 = 0.3;

/// Runs the experiment over the designed pairs with `μ = 2`, `λ = 4`.
pub fn run(config: &WorkloadConfig) -> Fig13 {
    let seq = generate(config);
    let k = seq.items();
    let pairs: Vec<(u32, u32)> = (0..k / 2).map(|p| (2 * p, 2 * p + 1)).collect();

    let combos: Vec<(f64, u32, u32)> = ALPHAS
        .iter()
        .flat_map(|&alpha| pairs.iter().map(move |&(i, j)| (alpha, i, j)))
        .collect();
    let mut rows: Vec<Fig13Row> = par_map(&combos, |&(alpha, i, j)| {
        let seq = &seq;
        let model = CostModel::new(2.0, 4.0, alpha).expect("valid");
        let (a, b) = (ItemId(i), ItemId(j));
        let pv = seq.pair_view(a, b);
        let accesses = (pv.count_a() + pv.count_b()) as f64;
        if accesses == 0.0 {
            return None;
        }
        let optimal = optimal_pair(seq, a, b, &model) / accesses;
        // Selective packing per Algorithm 1: Phase 2 only runs
        // on pairs whose similarity strictly exceeds θ; below
        // it DP_Greedy serves both items individually.
        let t0 = std::time::Instant::now();
        let (dp_greedy, breakdown) = if pv.jaccard() > THETA {
            let report = dp_greedy_pair(seq, a, b, &DpGreedyConfig::new(model).with_theta(THETA));
            let breakdown = pair_ledger(&report, &model).breakdown();
            (report.total() / accesses, breakdown)
        } else {
            (optimal, optimal_pair_ledger(seq, a, b, &model).breakdown())
        };
        let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
        Some(Fig13Row {
            alpha,
            a: i,
            b: j,
            jaccard: pv.jaccard(),
            package_served: package_served_pair(seq, a, b, &model) / accesses,
            optimal,
            dp_greedy,
            dpg_cache: breakdown.cache / accesses,
            dpg_transfer: breakdown.transfer / accesses,
            dpg_package: breakdown.package_delivery / accesses,
            runtime_ms,
        })
    })
    .into_iter()
    .flatten()
    .collect();
    rows.sort_by(|x, y| {
        x.alpha
            .partial_cmp(&y.alpha)
            .unwrap()
            .then(x.jaccard.partial_cmp(&y.jaccard).unwrap())
    });
    Fig13 { rows }
}

impl Fig13 {
    /// Renders the grouped table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 13 — ave_cost vs α (θ = 0.3, μ = 2, λ = 4)",
            &[
                "alpha",
                "pair",
                "jaccard",
                "Package_Served",
                "Optimal",
                "DP_Greedy",
                "dpg_cache",
                "dpg_transfer",
                "dpg_pkg",
                "ms",
            ],
        );
        for r in &self.rows {
            t.push(vec![
                fmt_f(r.alpha),
                format!("(d{}, d{})", r.a + 1, r.b + 1),
                fmt_f(r.jaccard),
                fmt_f(r.package_served),
                fmt_f(r.optimal),
                fmt_f(r.dp_greedy),
                fmt_f(r.dpg_cache),
                fmt_f(r.dpg_transfer),
                fmt_f(r.dpg_package),
                fmt_f(r.runtime_ms),
            ]);
        }
        t
    }

    /// Mean per-algorithm cost at one α (averaged over pairs).
    pub fn mean_at(&self, alpha: f64) -> Option<(f64, f64, f64)> {
        let rows: Vec<&Fig13Row> = self
            .rows
            .iter()
            .filter(|r| (r.alpha - alpha).abs() < 1e-9)
            .collect();
        if rows.is_empty() {
            return None;
        }
        let n = rows.len() as f64;
        Some((
            rows.iter().map(|r| r.package_served).sum::<f64>() / n,
            rows.iter().map(|r| r.optimal).sum::<f64>() / n,
            rows.iter().map(|r| r.dp_greedy).sum::<f64>() / n,
        ))
    }
}

mcs_model::impl_to_json!(Fig13Row {
    alpha,
    a,
    b,
    jaccard,
    package_served,
    optimal,
    dp_greedy,
    dpg_cache,
    dpg_transfer,
    dpg_package,
    runtime_ms
});
mcs_model::impl_to_json!(Fig13 { rows });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, DEFAULT_SEED};

    fn small_run() -> Fig13 {
        let mut cfg = paper_workload(DEFAULT_SEED);
        cfg.steps = 800;
        run(&cfg)
    }

    #[test]
    fn small_alpha_favours_packing_large_alpha_punishes_it() {
        let f = small_run();
        let (ps02, opt02, dpg02) = f.mean_at(0.2).unwrap();
        let (ps08, opt08, dpg08) = f.mean_at(0.8).unwrap();
        // α = 0.2: packing nearly free → Package_Served beats Optimal and
        // DP_Greedy tracks it.
        assert!(ps02 < opt02, "α=0.2: PS {ps02} should beat Optimal {opt02}");
        assert!(
            dpg02 < opt02,
            "α=0.2: DPG {dpg02} should beat Optimal {opt02}"
        );
        // Package_Served deteriorates as α grows; Optimal is α-invariant
        // for its own cost (no packing) so the gap must shrink or flip.
        assert!(ps08 > ps02);
        assert!((opt08 - opt02).abs() < 1e-9, "Optimal is α-independent");
        // DP_Greedy is never the worst of the three on average.
        assert!(dpg08 <= ps08.max(opt08) + 1e-9);
        assert!(dpg02 <= ps02.max(opt02) + 1e-9);
    }

    #[test]
    fn breakdown_columns_sum_to_the_dp_greedy_cost() {
        let f = small_run();
        for r in &f.rows {
            let sum = r.dpg_cache + r.dpg_transfer + r.dpg_package;
            assert!(
                (sum - r.dp_greedy).abs() < 1e-9,
                "α={} pair ({},{}): breakdown {} != dp_greedy {}",
                r.alpha,
                r.a,
                r.b,
                sum,
                r.dp_greedy
            );
        }
    }

    #[test]
    fn package_served_cost_grows_monotonically_with_alpha() {
        let f = small_run();
        let means: Vec<f64> = ALPHAS.iter().map(|&a| f.mean_at(a).unwrap().0).collect();
        for w in means.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "PS mean must grow with α: {means:?}");
        }
    }
}

//! Explicit space-time schedules (Fig. 1/2 of the paper) and their
//! independent feasibility validation and cost accounting.
//!
//! A [`Schedule`] describes how one *commodity* — a single data item, or a
//! package of correlated items moving as one unit — is cached and
//! transferred over time: horizontal *cache intervals* (a copy held at a
//! server over a time span) and vertical *transfers* (a copy shipped
//! between servers at an instant).
//!
//! The validator in this module knows nothing about any algorithm's
//! internals; it only checks the physics of the model:
//!
//! 1. copies can only be created from existing copies (connectivity back to
//!    the origin placement at `(s_1, t = 0)`),
//! 2. every request point is actually servable (a copy is present at the
//!    requesting server at the request time), and
//! 3. the cost equals `rate_cache · Σ interval lengths + cost_transfer · #transfers`,
//!    exactly the accounting of Fig. 1 (`C = (1.4+3.5+0.3)μ + 4λ`).
//!
//! Every algorithm crate emits schedules and cross-checks its internal cost
//! bookkeeping against this accountant in tests.

use crate::error::ModelError;
use crate::ids::ServerId;
use crate::request::SingleItemTrace;
use crate::time::{approx_eq, approx_le, TimePoint, TimeSpan};

/// A copy of the commodity held at `server` for the span `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheInterval {
    /// Hosting server.
    pub server: ServerId,
    /// Time span the copy is held.
    pub span: TimeSpan,
}

/// A transfer of the commodity from `from` to `to` at instant `time`
/// (standard form: transfers occur at request times, per \[7\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Source server; must hold a copy at `time`.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// Instant of the transfer.
    pub time: TimePoint,
}

/// Cost breakdown of a schedule under a given `(cache rate, transfer cost)`
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleCost {
    /// Total copy-holding time `Σ (end − start)` across intervals.
    pub cache_time: f64,
    /// Number of transfers.
    pub transfers: usize,
    /// `rate_cache · cache_time + cost_transfer · transfers`.
    pub total: f64,
}

/// An explicit space-time schedule for one commodity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Cache intervals, in no particular order.
    pub intervals: Vec<CacheInterval>,
    /// Transfers, in no particular order.
    pub transfers: Vec<Transfer>,
}

crate::impl_json!(CacheInterval { server, span });
crate::impl_json!(Transfer { from, to, time });
crate::impl_json!(ScheduleCost {
    cache_time,
    transfers,
    total
});
crate::impl_json!(Schedule {
    intervals,
    transfers
});

impl Schedule {
    /// An empty schedule (commodity never moves off the origin and is never
    /// cached past `t = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cache interval.
    pub fn cache(&mut self, server: ServerId, start: TimePoint, end: TimePoint) -> &mut Self {
        self.intervals.push(CacheInterval {
            server,
            span: TimeSpan::new(start, end),
        });
        self
    }

    /// Adds a transfer.
    pub fn transfer(&mut self, from: ServerId, to: ServerId, time: TimePoint) -> &mut Self {
        self.transfers.push(Transfer { from, to, time });
        self
    }

    /// Total copy-holding time across all intervals.
    pub fn cache_time(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.span.len()).sum()
    }

    /// Cost under the given cache rate and per-transfer cost.
    ///
    /// For a single item pass `(μ, λ)`; for a two-item package pass
    /// `(2αμ, 2αλ)` per Table II.
    pub fn cost(&self, rate_cache: f64, cost_transfer: f64) -> ScheduleCost {
        let cache_time = self.cache_time();
        let transfers = self.transfers.len();
        ScheduleCost {
            cache_time,
            transfers,
            total: rate_cache * cache_time + cost_transfer * transfers as f64,
        }
    }

    /// True if a copy is present at `server` at `time` under this schedule:
    /// the origin placement, a covering cache interval, or a transfer
    /// arriving exactly then.
    pub fn copy_present(&self, server: ServerId, time: TimePoint) -> bool {
        (server == ServerId::ORIGIN && approx_eq(time, 0.0))
            || self
                .intervals
                .iter()
                .any(|iv| iv.server == server && iv.span.contains(time))
            || self
                .transfers
                .iter()
                .any(|tr| tr.to == server && approx_eq(tr.time, time))
    }

    /// Validates physical feasibility against a request trace.
    ///
    /// Rules checked (see module docs): interval starts are anchored to an
    /// existing copy; transfer sources hold a copy at the transfer instant
    /// (supplied by the origin, an interval, or an earlier-validated
    /// transfer chained at the same instant); every request point is
    /// servable; all times are within `[0, horizon]` and finite.
    ///
    /// # Errors
    ///
    /// [`ModelError::InfeasibleSchedule`] with a human-readable reason.
    pub fn validate(&self, trace: &SingleItemTrace) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InfeasibleSchedule { reason });

        for iv in &self.intervals {
            if iv.server.0 >= trace.servers {
                return fail(format!("interval on unknown server {}", iv.server));
            }
            if iv.span.start < -crate::time::EPSILON {
                return fail(format!("interval starts before t=0 at {}", iv.span.start));
            }
        }
        for tr in &self.transfers {
            if tr.from.0 >= trace.servers || tr.to.0 >= trace.servers {
                return fail(format!(
                    "transfer touches unknown server {} -> {}",
                    tr.from, tr.to
                ));
            }
            if tr.time < -crate::time::EPSILON {
                return fail(format!("transfer before t=0 at {}", tr.time));
            }
        }

        // 1. Interval anchoring: a copy must exist at (server, start).
        //    Sources: origin, a transfer arriving at `start`, or another
        //    interval at the same server covering `start`.
        for (i, iv) in self.intervals.iter().enumerate() {
            let anchored = (iv.server == ServerId::ORIGIN && approx_eq(iv.span.start, 0.0))
                || self
                    .transfers
                    .iter()
                    .any(|tr| tr.to == iv.server && approx_eq(tr.time, iv.span.start))
                || self.intervals.iter().enumerate().any(|(j, other)| {
                    j != i
                        && other.server == iv.server
                        && other.span.contains(iv.span.start)
                        // Break symmetry between two intervals that merely
                        // touch: the earlier-starting one anchors the later.
                        && other.span.start < iv.span.start + crate::time::EPSILON
                        && !(approx_eq(other.span.start, iv.span.start) && j > i)
                });
            if !anchored {
                return fail(format!(
                    "cache interval at {} starting t={} has no copy source",
                    iv.server, iv.span.start
                ));
            }
        }

        // 2. Transfer sources. Transfers at the same instant may chain; we
        //    resolve chains by fixpoint iteration to reject cycles that
        //    would bootstrap a copy out of nothing.
        let mut source_ok = vec![false; self.transfers.len()];
        let mut progressed = true;
        while progressed {
            progressed = false;
            for i in 0..self.transfers.len() {
                if source_ok[i] {
                    continue;
                }
                let tr = &self.transfers[i];
                let from_origin = tr.from == ServerId::ORIGIN && approx_eq(tr.time, 0.0);
                let from_interval = self
                    .intervals
                    .iter()
                    .any(|iv| iv.server == tr.from && iv.span.contains(tr.time));
                let from_chained = self.transfers.iter().enumerate().any(|(j, other)| {
                    j != i && source_ok[j] && other.to == tr.from && approx_eq(other.time, tr.time)
                });
                if from_origin || from_interval || from_chained {
                    source_ok[i] = true;
                    progressed = true;
                }
            }
        }
        if let Some(i) = source_ok.iter().position(|ok| !ok) {
            let tr = &self.transfers[i];
            return fail(format!(
                "transfer {} -> {} at t={} has no live source copy",
                tr.from, tr.to, tr.time
            ));
        }

        // 3. Every request point is servable.
        for p in &trace.points {
            if !self.copy_present(p.server, p.time) {
                return fail(format!(
                    "request at {} t={} is not served by any copy",
                    p.server, p.time
                ));
            }
        }

        Ok(())
    }

    /// Normalises the schedule by merging overlapping/touching intervals on
    /// the same server, preserving total coverage (cost can only decrease —
    /// overlap double-pays).
    pub fn normalize(&mut self) {
        self.intervals.sort_by(|a, b| {
            a.server
                .cmp(&b.server)
                .then(crate::time::total_cmp(a.span.start, b.span.start))
        });
        let mut merged: Vec<CacheInterval> = Vec::with_capacity(self.intervals.len());
        for iv in self.intervals.drain(..) {
            match merged.last_mut() {
                Some(last)
                    if last.server == iv.server && approx_le(iv.span.start, last.span.end) =>
                {
                    if iv.span.end > last.span.end {
                        last.span = TimeSpan::new(last.span.start, iv.span.end);
                    }
                }
                _ => merged.push(iv),
            }
        }
        self.intervals = merged;
        self.transfers
            .sort_by(|a, b| crate::time::total_cmp(a.time, b.time).then(a.to.cmp(&b.to)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's feasible schedule: `C = (1.4 + 3.5 + 0.3)μ + 4λ`.
    /// We reconstruct an equivalent schedule shape and check the accountant
    /// reports exactly that cost decomposition.
    #[test]
    fn fig1_cost_accounting() {
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.4)
            .cache(ServerId(1), 0.5, 4.0)
            .cache(ServerId(2), 3.7, 4.0)
            .transfer(ServerId(0), ServerId(1), 0.5)
            .transfer(ServerId(1), ServerId(2), 3.7)
            .transfer(ServerId(0), ServerId(3), 1.4)
            .transfer(ServerId(1), ServerId(3), 2.2);
        let c = s.cost(1.0, 1.0);
        assert!(approx_eq(c.cache_time, 1.4 + 3.5 + 0.3));
        assert_eq!(c.transfers, 4);
        assert!(approx_eq(c.total, 5.2 + 4.0));
        // Under μ=2, λ=3 the same schedule costs 5.2·2 + 4·3.
        let c = s.cost(2.0, 3.0);
        assert!(approx_eq(c.total, 10.4 + 12.0));
    }

    #[test]
    fn validates_serving_and_connectivity() {
        // Item starts at s1; requests at (s2, 1.0) and (s1, 2.0).
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 0)]);

        // Feasible: keep at s1 for [0,2], transfer to s2 at 1.0.
        let mut ok = Schedule::new();
        ok.cache(ServerId(0), 0.0, 2.0)
            .transfer(ServerId(0), ServerId(1), 1.0);
        assert!(ok.validate(&trace).is_ok());

        // Infeasible: nothing serves the request at s2.
        let mut missing = Schedule::new();
        missing.cache(ServerId(0), 0.0, 2.0);
        let err = missing.validate(&trace).unwrap_err();
        assert!(err.to_string().contains("not served"));

        // Infeasible: transfer from a server that has no copy.
        let mut bad_src = Schedule::new();
        bad_src
            .cache(ServerId(0), 0.0, 2.0)
            .transfer(ServerId(1), ServerId(1), 1.0);
        let err = bad_src.validate(&trace).unwrap_err();
        assert!(err.to_string().contains("no live source"));

        // Infeasible: interval materialising out of nothing at s2.
        let mut bad_anchor = Schedule::new();
        bad_anchor
            .cache(ServerId(0), 0.0, 2.0)
            .cache(ServerId(1), 0.5, 1.0);
        let err = bad_anchor.validate(&trace).unwrap_err();
        assert!(err.to_string().contains("no copy source"));
    }

    #[test]
    fn origin_placement_only_exists_at_time_zero() {
        // A request at the origin server later than 0 with no caching is NOT
        // served: holding the copy costs μ per unit time and must be explicit.
        let trace = SingleItemTrace::from_pairs(1, &[(1.0, 0)]);
        let s = Schedule::new();
        assert!(s.validate(&trace).is_err());

        let mut held = Schedule::new();
        held.cache(ServerId(0), 0.0, 1.0);
        assert!(held.validate(&trace).is_ok());
    }

    #[test]
    fn transfer_chains_at_same_instant_are_allowed_but_cycles_rejected() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 2)]);
        // s1 --(1.0)--> s2 --(1.0)--> s3: valid chain.
        let mut chain = Schedule::new();
        chain
            .cache(ServerId(0), 0.0, 1.0)
            .transfer(ServerId(0), ServerId(1), 1.0)
            .transfer(ServerId(1), ServerId(2), 1.0);
        assert!(chain.validate(&trace).is_ok());

        // s2 -> s3 and s3 -> s2 at the same instant with no real source:
        // a bootstrap cycle, rejected.
        let mut cycle = Schedule::new();
        cycle
            .transfer(ServerId(1), ServerId(2), 1.0)
            .transfer(ServerId(2), ServerId(1), 1.0);
        assert!(cycle.validate(&trace).is_err());
    }

    #[test]
    fn zero_length_interval_serves_transient_copy() {
        // A transfer delivers a transient copy that serves the request at the
        // same instant without any interval.
        let trace = SingleItemTrace::from_pairs(2, &[(1.5, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.5)
            .transfer(ServerId(0), ServerId(1), 1.5);
        assert!(s.validate(&trace).is_ok());
        assert!(approx_eq(s.cost(1.0, 1.0).total, 1.5 + 1.0));
    }

    #[test]
    fn normalize_merges_same_server_intervals() {
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0)
            .cache(ServerId(0), 0.5, 2.0)
            .cache(ServerId(0), 2.0, 3.0)
            .cache(ServerId(1), 0.5, 1.0);
        // Anchor for the s2 interval.
        s.transfer(ServerId(0), ServerId(1), 0.5);
        s.normalize();
        assert_eq!(s.intervals.len(), 2);
        let total: f64 = s.cache_time();
        assert!(approx_eq(total, 3.0 + 0.5));
    }

    #[test]
    fn validate_rejects_out_of_range_entities() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let mut s = Schedule::new();
        s.cache(ServerId(7), 0.0, 1.0);
        assert!(s.validate(&trace).is_err());

        let mut s = Schedule::new();
        s.transfer(ServerId(0), ServerId(9), 1.0);
        assert!(s.validate(&trace).is_err());

        let mut s = Schedule::new();
        s.cache(ServerId(0), -1.0, 1.0);
        assert!(s.validate(&trace).is_err());
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{parse, FromJson, ToJson};
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.4)
            .transfer(ServerId(0), ServerId(1), 1.4);
        let j = s.to_json().to_string();
        let back = Schedule::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(s, back);
    }
}

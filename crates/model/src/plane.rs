//! The cost plane — one seam over every cost-model shape.
//!
//! Three shapes price a request trajectory in this workspace:
//!
//! * [`CostPlane::Homogeneous`] — the paper's `(μ, λ, α)` model
//!   ([`CostModel`]), the shape every Section III–V algorithm is proven
//!   against;
//! * [`CostPlane::Hetero`] — per-server `μ_s`, per-link `λ_{st}`
//!   ([`HeteroCostModel`]), the general problem the paper cites as
//!   (believed) NP-complete;
//! * [`CostPlane::Tiered`] — per-server L1/L2/L3 storage waterfalls
//!   ([`TieredCostModel`]).
//!
//! The plane gives solvers *views*: a homogeneous solver asks for
//! [`CostPlane::collapse_homogeneous`] (exact, bitwise — uniform
//! embeddings of the two richer shapes collapse back to the `CostModel`
//! they embed, so results stay byte-identical), a heterogeneous solver
//! for [`CostPlane::hetero_view`], and a tiered solver for
//! [`CostPlane::tiered_view`]. Views that would change semantics return
//! [`ModelError::IncompatibleCostPlane`] instead of guessing.
//!
//! On disk, a plane is a JSON object tagged by a `"shape"` field —
//! `"homogeneous"`, `"hetero"`, or `"tiered"` — with the shape's own
//! fields alongside; loading routes through each shape's validating
//! constructor (`dpg run --cost-model FILE` is the consumer).

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::hetero::HeteroCostModel;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::tiered::TieredCostModel;

/// One cost model of any shape (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum CostPlane {
    /// The paper's homogeneous `(μ, λ, α)` model.
    Homogeneous(CostModel),
    /// Per-server rates, per-link transfer costs.
    Hetero(HeteroCostModel),
    /// Per-server storage waterfalls.
    Tiered(TieredCostModel),
}

impl From<CostModel> for CostPlane {
    fn from(m: CostModel) -> Self {
        CostPlane::Homogeneous(m)
    }
}

impl CostPlane {
    /// Stable lowercase shape tag (`"homogeneous"` / `"hetero"` /
    /// `"tiered"`) — the JSON discriminator and the spelling error
    /// messages use.
    pub fn shape(&self) -> &'static str {
        match self {
            CostPlane::Homogeneous(_) => "homogeneous",
            CostPlane::Hetero(_) => "hetero",
            CostPlane::Tiered(_) => "tiered",
        }
    }

    /// The package discount factor `α`, shared by every shape.
    pub fn alpha(&self) -> f64 {
        match self {
            CostPlane::Homogeneous(m) => m.alpha(),
            CostPlane::Hetero(m) => m.alpha(),
            CostPlane::Tiered(m) => m.alpha(),
        }
    }

    /// The server count the plane is sized for, or `None` for the
    /// homogeneous shape (which prices any fleet).
    pub fn servers(&self) -> Option<u32> {
        match self {
            CostPlane::Homogeneous(_) => None,
            CostPlane::Hetero(m) => Some(m.servers()),
            CostPlane::Tiered(m) => Some(m.servers()),
        }
    }

    /// The exact homogeneous view: the wrapped model for
    /// [`CostPlane::Homogeneous`], and the *bitwise* uniform collapse for
    /// the richer shapes ([`HeteroCostModel::collapse_uniform`] /
    /// [`TieredCostModel::collapse_homogeneous`]). `None` when the plane
    /// is genuinely non-uniform — the caller must not fall back to an
    /// average, because costs would silently change.
    pub fn collapse_homogeneous(&self) -> Option<CostModel> {
        match self {
            CostPlane::Homogeneous(m) => Some(*m),
            CostPlane::Hetero(m) => m.collapse_uniform(),
            CostPlane::Tiered(m) => m.collapse_homogeneous(),
        }
    }

    /// A deterministic homogeneous *projection* for display and
    /// summaries: the exact collapse when one exists, otherwise the mean
    /// `μ` (over servers; for tiered shapes, over every tier of every
    /// server) and the mean off-diagonal `λ` (folding in `origin_fetch`
    /// for tiered shapes). Solvers never price work with this — the
    /// engine's validation path rejects non-collapsible planes for
    /// homogeneous solvers — but the CLI header needs *some* `(μ, λ)` to
    /// echo.
    pub fn projected_homogeneous(&self) -> CostModel {
        if let Some(m) = self.collapse_homogeneous() {
            return m;
        }
        let (mu, lambda, alpha) = match self {
            CostPlane::Homogeneous(m) => (m.mu(), m.lambda(), m.alpha()),
            CostPlane::Hetero(m) => (
                mean(m.mu_rates().iter().copied()),
                mean_off_diagonal(m.lambda_matrix(), m.servers() as usize),
                m.alpha(),
            ),
            CostPlane::Tiered(m) => {
                let mu = mean(
                    m.ladders()
                        .iter()
                        .flat_map(|ladder| ladder.iter().map(|t| t.mu)),
                );
                let m_servers = m.servers() as usize;
                let lambda = if m_servers < 2 {
                    m.origin_fetch()
                } else {
                    mean(
                        std::iter::once(m.origin_fetch())
                            .chain(off_diagonal(m.lambda_matrix(), m_servers)),
                    )
                };
                (mu, lambda, m.alpha())
            }
        };
        CostModel::new(mu, lambda, alpha).expect("means of validated rates are valid")
    }

    /// The heterogeneous view for a fleet of `m` servers: uniform
    /// embedding for the homogeneous shape, a server-count check for the
    /// hetero shape, and the single-unbounded-tier reduction for the
    /// tiered shape (deeper ladders have no per-server-rate equivalent;
    /// `origin_fetch` is not part of the hetero vocabulary and is
    /// dropped by the reduction).
    ///
    /// # Errors
    ///
    /// [`ModelError::ServerCountMismatch`] when a sized shape disagrees
    /// with `m`; [`ModelError::IncompatibleCostPlane`] when a tiered
    /// shape has bounded or multi-level ladders.
    pub fn hetero_view(&self, m: u32) -> Result<HeteroCostModel, ModelError> {
        match self {
            CostPlane::Homogeneous(c) => HeteroCostModel::uniform(m, c.mu(), c.lambda(), c.alpha()),
            CostPlane::Hetero(h) => {
                if h.servers() != m {
                    return Err(ModelError::ServerCountMismatch {
                        model: h.servers(),
                        trace: m,
                    });
                }
                Ok(h.clone())
            }
            CostPlane::Tiered(t) => {
                if t.servers() != m {
                    return Err(ModelError::ServerCountMismatch {
                        model: t.servers(),
                        trace: m,
                    });
                }
                if !t.is_single_unbounded_tier() {
                    return Err(ModelError::IncompatibleCostPlane {
                        what: "a multi-tier (or bounded-tier) model has no per-server-rate \
                               equivalent; heterogeneous solvers need one unbounded tier per \
                               server"
                            .to_string(),
                    });
                }
                let mu: Vec<f64> = t.ladders().iter().map(|ladder| ladder[0].mu).collect();
                HeteroCostModel::new(mu, t.lambda_matrix().to_vec(), t.alpha())
            }
        }
    }

    /// The tiered view for a fleet of `m` servers: the
    /// [`TieredCostModel::uniform_single_tier`] embedding for the
    /// homogeneous shape, a server-count check for the tiered shape.
    /// Heterogeneous shapes are rejected — per-server `μ_s` would need an
    /// arbitrary `origin_fetch` to become a waterfall, and inventing one
    /// would silently change costs.
    ///
    /// # Errors
    ///
    /// [`ModelError::ServerCountMismatch`] when the tiered shape
    /// disagrees with `m`; [`ModelError::IncompatibleCostPlane`] for the
    /// hetero shape.
    pub fn tiered_view(&self, m: u32) -> Result<TieredCostModel, ModelError> {
        match self {
            CostPlane::Homogeneous(c) => {
                TieredCostModel::uniform_single_tier(m, c.mu(), c.lambda(), c.alpha())
            }
            CostPlane::Hetero(_) => Err(ModelError::IncompatibleCostPlane {
                what: "a per-server-rate model carries no origin-fetch cost, so it cannot be \
                       viewed as a storage waterfall; use shape \"tiered\" instead"
                    .to_string(),
            }),
            CostPlane::Tiered(t) => {
                if t.servers() != m {
                    return Err(ModelError::ServerCountMismatch {
                        model: t.servers(),
                        trace: m,
                    });
                }
                Ok(t.clone())
            }
        }
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = it.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    sum / n as f64
}

fn off_diagonal(matrix: &[f64], m: usize) -> impl Iterator<Item = f64> + '_ {
    (0..m * m).filter_map(move |idx| {
        if idx / m == idx % m {
            None
        } else {
            Some(matrix[idx])
        }
    })
}

fn mean_off_diagonal(matrix: &[f64], m: usize) -> f64 {
    mean(off_diagonal(matrix, m))
}

impl ToJson for CostPlane {
    fn to_json(&self) -> Json {
        let tag = ("shape".to_string(), Json::Str(self.shape().to_string()));
        match self {
            CostPlane::Homogeneous(m) => Json::Obj(vec![
                tag,
                ("mu".to_string(), Json::Num(m.mu())),
                ("lambda".to_string(), Json::Num(m.lambda())),
                ("alpha".to_string(), Json::Num(m.alpha())),
            ]),
            CostPlane::Hetero(m) => Json::Obj(vec![
                tag,
                ("mu".to_string(), m.mu_rates().to_vec().to_json()),
                ("lambda".to_string(), m.lambda_matrix().to_vec().to_json()),
                ("alpha".to_string(), Json::Num(m.alpha())),
            ]),
            CostPlane::Tiered(m) => {
                let Json::Obj(mut fields) = m.to_json() else {
                    unreachable!("TieredCostModel serialises to an object");
                };
                fields.insert(0, tag);
                Json::Obj(fields)
            }
        }
    }
}

impl FromJson for CostPlane {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let shape = String::from_json(v.field("shape")?)?;
        match shape.as_str() {
            "homogeneous" => CostModel::from_json(v).map(CostPlane::Homogeneous),
            "hetero" => {
                // Route through the validating constructor; the bare
                // HeteroCostModel JSON shape (a struct dump) is not
                // accepted here so files cannot bypass validation.
                let mu = Vec::<f64>::from_json(v.field("mu")?)?;
                let lambda = Vec::<f64>::from_json(v.field("lambda")?)?;
                let alpha = f64::from_json(v.field("alpha")?)?;
                HeteroCostModel::new(mu, lambda, alpha)
                    .map(CostPlane::Hetero)
                    .map_err(|e| JsonError::conv(format!("invalid cost model: {e}")))
            }
            "tiered" => TieredCostModel::from_json(v).map(CostPlane::Tiered),
            other => Err(JsonError::conv(format!(
                "unknown cost-plane shape {other:?}; expected \"homogeneous\", \"hetero\", or \
                 \"tiered\""
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::tiered::StorageTier;

    fn spread_hetero() -> HeteroCostModel {
        HeteroCostModel::new(
            vec![1.0, 2.0, 4.0],
            vec![
                0.0, 1.0, 2.0, //
                1.0, 0.0, 3.0, //
                2.0, 3.0, 0.0,
            ],
            0.8,
        )
        .unwrap()
    }

    #[test]
    fn uniform_planes_collapse_to_the_embedded_model() {
        let base = CostModel::new(2.0, 4.0, 0.8).unwrap();
        let planes = [
            CostPlane::Homogeneous(base),
            CostPlane::Hetero(HeteroCostModel::uniform(4, 2.0, 4.0, 0.8).unwrap()),
            CostPlane::Tiered(TieredCostModel::uniform_single_tier(4, 2.0, 4.0, 0.8).unwrap()),
        ];
        for p in &planes {
            let c = p.collapse_homogeneous().unwrap_or_else(|| {
                panic!("{} uniform plane must collapse", p.shape());
            });
            assert_eq!(c.mu().to_bits(), base.mu().to_bits(), "{}", p.shape());
            assert_eq!(
                c.lambda().to_bits(),
                base.lambda().to_bits(),
                "{}",
                p.shape()
            );
            assert_eq!(c.alpha().to_bits(), base.alpha().to_bits(), "{}", p.shape());
            // The projection is the collapse when one exists.
            assert_eq!(p.projected_homogeneous(), c);
        }
    }

    #[test]
    fn non_uniform_planes_do_not_collapse_but_still_project() {
        let h = CostPlane::Hetero(spread_hetero());
        assert!(h.collapse_homogeneous().is_none());
        let proj = h.projected_homogeneous();
        assert!((proj.mu() - 7.0 / 3.0).abs() < 1e-12);
        assert!((proj.lambda() - 2.0).abs() < 1e-12);

        let t = CostPlane::Tiered(
            TieredCostModel::new(
                vec![vec![StorageTier::bounded(2, 4.0), StorageTier::unbounded(1.0)]; 2],
                vec![0.0, 4.0, 4.0, 0.0],
                1.0,
                8.0,
                0.8,
            )
            .unwrap(),
        );
        assert!(t.collapse_homogeneous().is_none());
        let proj = t.projected_homogeneous();
        assert!((proj.mu() - 2.5).abs() < 1e-12);
        // origin_fetch folds into the λ mean: (8 + 4 + 4) / 3.
        assert!((proj.lambda() - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hetero_view_embeds_checks_and_reduces() {
        let base = CostModel::new(2.0, 4.0, 0.8).unwrap();
        // Homogeneous → uniform embedding at any m.
        let h = CostPlane::Homogeneous(base).hetero_view(5).unwrap();
        assert_eq!(h.servers(), 5);
        assert_eq!(h.collapse_uniform().unwrap(), base);
        // Hetero → size check.
        let plane = CostPlane::Hetero(spread_hetero());
        assert!(plane.hetero_view(3).is_ok());
        assert!(matches!(
            plane.hetero_view(4),
            Err(ModelError::ServerCountMismatch { model: 3, trace: 4 })
        ));
        // Tiered single-unbounded-tier → per-server rates.
        let t = CostPlane::Tiered(
            TieredCostModel::new(
                vec![
                    vec![StorageTier::unbounded(1.0)],
                    vec![StorageTier::unbounded(2.0)],
                ],
                vec![0.0, 4.0, 4.0, 0.0],
                0.0,
                8.0,
                0.8,
            )
            .unwrap(),
        );
        let h = t.hetero_view(2).unwrap();
        assert_eq!(h.mu_rates(), &[1.0, 2.0]);
        // Multi-tier ladders are rejected.
        let deep = CostPlane::Tiered(
            TieredCostModel::new(
                vec![vec![StorageTier::bounded(2, 4.0), StorageTier::unbounded(1.0)]; 2],
                vec![0.0, 4.0, 4.0, 0.0],
                1.0,
                8.0,
                0.8,
            )
            .unwrap(),
        );
        assert!(matches!(
            deep.hetero_view(2),
            Err(ModelError::IncompatibleCostPlane { .. })
        ));
    }

    #[test]
    fn tiered_view_embeds_checks_and_rejects_hetero() {
        let base = CostModel::new(2.0, 4.0, 0.8).unwrap();
        let t = CostPlane::Homogeneous(base).tiered_view(3).unwrap();
        assert_eq!(t.collapse_homogeneous().unwrap(), base);
        assert!(matches!(
            CostPlane::Hetero(spread_hetero()).tiered_view(3),
            Err(ModelError::IncompatibleCostPlane { .. })
        ));
        let tiered =
            CostPlane::Tiered(TieredCostModel::uniform_single_tier(3, 2.0, 4.0, 0.8).unwrap());
        assert!(tiered.tiered_view(3).is_ok());
        assert!(tiered.tiered_view(2).is_err());
    }

    #[test]
    fn json_round_trips_every_shape() {
        let planes = [
            CostPlane::Homogeneous(CostModel::new(2.0, 4.0, 0.8).unwrap()),
            CostPlane::Hetero(spread_hetero()),
            CostPlane::Tiered(
                TieredCostModel::new(
                    vec![vec![StorageTier::bounded(2, 4.0), StorageTier::unbounded(0.5)]; 2],
                    vec![0.0, 4.0, 4.0, 0.0],
                    1.0,
                    8.0,
                    0.8,
                )
                .unwrap(),
            ),
        ];
        for p in &planes {
            let text = p.to_json().to_string();
            let back = CostPlane::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(*p, back, "{} shape", p.shape());
        }
    }

    #[test]
    fn json_rejects_unknown_shapes_and_invalid_models() {
        let bad_shape = parse(r#"{"shape": "quantum", "mu": 1.0}"#).unwrap();
        let err = CostPlane::from_json(&bad_shape).unwrap_err();
        assert!(err.msg.contains("quantum"));
        // Hetero with an asymmetric matrix routes through validation.
        let bad = parse(
            r#"{"shape": "hetero", "mu": [1.0, 1.0],
                "lambda": [0.0, 2.0, 3.0, 0.0], "alpha": 0.8}"#,
        )
        .unwrap();
        let err = CostPlane::from_json(&bad).unwrap_err();
        assert!(err.msg.contains("symmetric"));
        // Missing shape field.
        let tagless = parse(r#"{"mu": 1.0, "lambda": 1.0, "alpha": 0.8}"#).unwrap();
        assert!(CostPlane::from_json(&tagless).is_err());
    }
}

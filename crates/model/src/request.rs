//! Requests and request sequences (`r_i = <s_i, t_i, D_i>`, Section III-A).
//!
//! A [`RequestSeq`] is the fundamental input of every algorithm in this
//! workspace: a time-ordered trajectory of requests, each naming the server
//! it is made at and the subset of data items it accesses. The builder
//! enforces the standing assumptions of the paper: strictly increasing
//! positive times (at most one request per time instance, with `t = 0`
//! reserved for the origin placement on `s_1`), non-empty duplicate-free
//! item sets, and in-range identifiers.

use crate::error::ModelError;
use crate::ids::{ItemId, ServerId};
use crate::time::TimePoint;

/// One data request `r_i = <s_i, t_i, D_i>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Server the request is made at (`s_i`).
    pub server: ServerId,
    /// Time the request is made (`t_i`), strictly positive.
    pub time: TimePoint,
    /// The accessed item subset (`D_i`), sorted and duplicate-free.
    pub items: Vec<ItemId>,
}

crate::impl_json!(Request {
    server,
    time,
    items
});
crate::impl_to_json!(RequestSeq {
    servers,
    items,
    requests
});

/// Deserialisation runs through [`RequestSeqBuilder`], so a hand-edited or
/// corrupted file cannot smuggle in a sequence violating the standing
/// assumptions (ordered times, in-range ids, …). Violations are reported
/// with the offending request's index via [`ModelError`].
impl crate::json::FromJson for RequestSeq {
    fn from_json(v: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        use crate::json::JsonError;
        let field = |name: &str| -> Result<_, JsonError> { v.field(name) };
        let servers = u32::from_json(field("servers")?)
            .map_err(|e| JsonError::conv(format!("field `servers`: {}", e.msg)))?;
        let items = u32::from_json(field("items")?)
            .map_err(|e| JsonError::conv(format!("field `items`: {}", e.msg)))?;
        let requests = Vec::<Request>::from_json(field("requests")?)
            .map_err(|e| JsonError::conv(format!("field `requests`: {}", e.msg)))?;
        let mut b = RequestSeqBuilder::new(servers, items);
        for r in requests {
            b = b.push(r.server, r.time, r.items.iter().map(|i| i.0));
        }
        b.build()
            .map_err(|e| JsonError::conv(format!("invalid request sequence: {e}")))
    }
}
crate::impl_json!(TracePoint { time, server });
crate::impl_json!(SingleItemTrace { servers, points });

impl Request {
    /// True if the request accesses `item`.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        // Items are sorted by the builder; binary search keeps large D_i fast.
        self.items.binary_search(&item).is_ok()
    }

    /// True if the request accesses both `a` and `b`.
    #[inline]
    pub fn contains_both(&self, a: ItemId, b: ItemId) -> bool {
        self.contains(a) && self.contains(b)
    }
}

/// A validated, time-ordered sequence of requests over `m` servers and
/// `k` items.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSeq {
    servers: u32,
    items: u32,
    requests: Vec<Request>,
}

impl RequestSeq {
    /// Number of cache servers `m`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Number of distinct data items `k`.
    #[inline]
    pub fn items(&self) -> u32 {
        self.items
    }

    /// Number of requests `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the sequence contains no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, in strictly increasing time order.
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The request at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> &Request {
        &self.requests[index]
    }

    /// Time of the last request, or `0` for an empty sequence.
    pub fn horizon(&self) -> TimePoint {
        self.requests.last().map_or(0.0, |r| r.time)
    }

    /// Number of requests containing `item` — the `|d_i|` of Eq. (5).
    pub fn count_containing(&self, item: ItemId) -> usize {
        self.requests.iter().filter(|r| r.contains(item)).count()
    }

    /// Number of requests containing both `a` and `b` — the `|(d_i, d_j)|`
    /// of Eq. (5).
    pub fn count_pair(&self, a: ItemId, b: ItemId) -> usize {
        self.requests
            .iter()
            .filter(|r| r.contains_both(a, b))
            .count()
    }

    /// Total number of *item accesses*, `Σ_i |d_i|` — the denominator of the
    /// paper's `ave_cost` metric (Algorithm 1, line 50).
    pub fn total_item_accesses(&self) -> usize {
        self.requests.iter().map(|r| r.items.len()).sum()
    }

    /// Projects the sequence onto a single item: the time-ordered
    /// `(time, server)` trace of every request containing `item`.
    ///
    /// This is the input shape consumed by the single-item off-line
    /// algorithms (the substrate of \[6\]).
    pub fn item_trace(&self, item: ItemId) -> SingleItemTrace {
        let points = self
            .requests
            .iter()
            .filter(|r| r.contains(item))
            .map(|r| TracePoint {
                time: r.time,
                server: r.server,
            })
            .collect();
        SingleItemTrace {
            servers: self.servers,
            points,
        }
    }

    /// Projects the sequence onto an item pair, partitioning the requests
    /// that touch either item into *co-requests* (both items, candidates for
    /// package service) and per-item *singleton* requests.
    pub fn pair_view(&self, a: ItemId, b: ItemId) -> PairView {
        let mut both = Vec::new();
        let mut only_a = Vec::new();
        let mut only_b = Vec::new();
        for (i, r) in self.requests.iter().enumerate() {
            match (r.contains(a), r.contains(b)) {
                (true, true) => both.push(i),
                (true, false) => only_a.push(i),
                (false, true) => only_b.push(i),
                (false, false) => {}
            }
        }
        PairView {
            a,
            b,
            both,
            only_a,
            only_b,
        }
    }

    /// The `(time, server)` trace of the co-requests of a pair, at package
    /// granularity — the subsequence Phase 2 hands to the algorithm of \[6\]
    /// under package rates.
    pub fn package_trace(&self, a: ItemId, b: ItemId) -> SingleItemTrace {
        let points = self
            .requests
            .iter()
            .filter(|r| r.contains_both(a, b))
            .map(|r| TracePoint {
                time: r.time,
                server: r.server,
            })
            .collect();
        SingleItemTrace {
            servers: self.servers,
            points,
        }
    }

    /// The union trace of every request containing `a` or `b` (or both) —
    /// the input of the Package_Served baseline, which always ships the
    /// whole package.
    pub fn union_trace(&self, a: ItemId, b: ItemId) -> SingleItemTrace {
        let points = self
            .requests
            .iter()
            .filter(|r| r.contains(a) || r.contains(b))
            .map(|r| TracePoint {
                time: r.time,
                server: r.server,
            })
            .collect();
        SingleItemTrace {
            servers: self.servers,
            points,
        }
    }
}

/// A `(time, server)` point of a single-item (or single-package) trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Request time.
    pub time: TimePoint,
    /// Server the request is made at.
    pub server: ServerId,
}

/// A single-item projection of a request sequence: what the off-line
/// single-item caching algorithms operate on.
///
/// The item is implicitly located at [`ServerId::ORIGIN`] at time `0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleItemTrace {
    /// Number of servers `m` in the network.
    pub servers: u32,
    /// Time-ordered request points.
    pub points: Vec<TracePoint>,
}

impl SingleItemTrace {
    /// Builds a trace directly from `(time, server-index)` pairs; intended
    /// for tests and small examples. Panics on unordered input.
    pub fn from_pairs(servers: u32, pairs: &[(f64, u32)]) -> Self {
        let mut last = 0.0_f64;
        let points = pairs
            .iter()
            .map(|&(t, s)| {
                assert!(t > last, "trace times must strictly increase");
                assert!(s < servers, "server index out of range");
                last = t;
                TracePoint {
                    time: t,
                    server: ServerId(s),
                }
            })
            .collect();
        SingleItemTrace { servers, points }
    }

    /// Number of request points `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the trace has no request points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// For each point, the index of the most recent *earlier* point at the
    /// same server — the `r_{p(i)}` of Definition 1 — or `None` when the
    /// previous same-server event is the origin placement (for
    /// [`ServerId::ORIGIN`]) or nothing at all.
    ///
    /// The origin placement at `(s_1, 0)` is encoded as `Some(usize::MAX)`
    /// sentinel-free: instead we return a [`Predecessor`] structure that
    /// distinguishes the three cases explicitly.
    pub fn predecessors(&self) -> Vec<Predecessor> {
        let mut last_at: std::collections::HashMap<ServerId, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(self.points.len());
        for (i, p) in self.points.iter().enumerate() {
            let pred = match last_at.get(&p.server) {
                Some(&j) => Predecessor::Request(j),
                None if p.server == ServerId::ORIGIN => Predecessor::Origin,
                None => Predecessor::None,
            };
            out.push(pred);
            last_at.insert(p.server, i);
        }
        out
    }
}

/// The most recent same-server event before a trace point (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predecessor {
    /// A previous request point at the same server, by index.
    Request(usize),
    /// The origin placement of the item at `(s_1, t = 0)`.
    Origin,
    /// No copy has ever been at this server before.
    None,
}

/// Partition of the requests touching an item pair (see
/// [`RequestSeq::pair_view`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PairView {
    /// First item of the pair.
    pub a: ItemId,
    /// Second item of the pair.
    pub b: ItemId,
    /// Indices (into the full sequence) of requests containing both items.
    pub both: Vec<usize>,
    /// Indices of requests containing `a` but not `b`.
    pub only_a: Vec<usize>,
    /// Indices of requests containing `b` but not `a`.
    pub only_b: Vec<usize>,
}

impl PairView {
    /// `|d_a|` — total requests containing `a`.
    pub fn count_a(&self) -> usize {
        self.both.len() + self.only_a.len()
    }

    /// `|d_b|` — total requests containing `b`.
    pub fn count_b(&self) -> usize {
        self.both.len() + self.only_b.len()
    }

    /// The Jaccard similarity of the pair per Eq. (5), `0` when neither item
    /// is ever requested.
    pub fn jaccard(&self) -> f64 {
        let union = self.both.len() + self.only_a.len() + self.only_b.len();
        if union == 0 {
            0.0
        } else {
            self.both.len() as f64 / union as f64
        }
    }
}

/// Validating builder for [`RequestSeq`].
#[derive(Debug, Clone)]
pub struct RequestSeqBuilder {
    servers: u32,
    items: u32,
    requests: Vec<Request>,
    error: Option<ModelError>,
}

impl RequestSeqBuilder {
    /// Starts a sequence over `m` servers and `k` items.
    pub fn new(servers: u32, items: u32) -> Self {
        RequestSeqBuilder {
            servers,
            items,
            requests: Vec::new(),
            error: None,
        }
    }

    /// Appends a request; errors are deferred to [`Self::build`] so calls
    /// can be chained.
    pub fn push(
        mut self,
        server: impl Into<ServerId>,
        time: TimePoint,
        items: impl IntoIterator<Item = u32>,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let index = self.requests.len();
        let server = server.into();
        if !time.is_finite() {
            self.error = Some(ModelError::NonFiniteTime { index });
            return self;
        }
        if time <= 0.0 {
            self.error = Some(ModelError::NonPositiveTime { index, time });
            return self;
        }
        if let Some(prev) = self.requests.last() {
            if time <= prev.time {
                self.error = Some(ModelError::NonIncreasingTime {
                    index,
                    prev: prev.time,
                    next: time,
                });
                return self;
            }
        }
        if server.0 >= self.servers {
            self.error = Some(ModelError::ServerOutOfRange {
                index,
                server,
                servers: self.servers,
            });
            return self;
        }
        let mut item_ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
        item_ids.sort_unstable();
        if item_ids.is_empty() {
            self.error = Some(ModelError::EmptyItemSet { index });
            return self;
        }
        for w in item_ids.windows(2) {
            if w[0] == w[1] {
                self.error = Some(ModelError::DuplicateItem { index, item: w[0] });
                return self;
            }
        }
        if let Some(&max) = item_ids.last() {
            if max.0 >= self.items {
                self.error = Some(ModelError::ItemOutOfRange {
                    index,
                    item: max,
                    items: self.items,
                });
                return self;
            }
        }
        self.requests.push(Request {
            server,
            time,
            items: item_ids,
        });
        self
    }

    /// Finalises the sequence.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure recorded by [`Self::push`].
    pub fn build(self) -> Result<RequestSeq, ModelError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(RequestSeq {
                servers: self.servers,
                items: self.items,
                requests: self.requests,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::approx_eq;

    /// The request sequence of the paper's running example (Fig. 2 / Fig. 8,
    /// Section V-C), reconstructed from the worked arithmetic:
    /// packages (d1+d2) at t = 0.8, 1.4, 4.0; d1 singletons at 0.5, 2.6;
    /// d2 singletons at 1.1, 3.2.
    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0]) // d1 @ s2
            .push(2u32, 0.8, [0, 1]) // package @ s3
            .push(3u32, 1.1, [1]) // d2 @ s4
            .push(0u32, 1.4, [0, 1]) // package @ s1
            .push(1u32, 2.6, [0]) // d1 @ s2
            .push(1u32, 3.2, [1]) // d2 @ s2
            .push(2u32, 4.0, [0, 1]) // package @ s3
            .build()
            .unwrap()
    }

    #[test]
    fn builder_accepts_valid_sequence() {
        let seq = paper_sequence();
        assert_eq!(seq.len(), 7);
        assert_eq!(seq.servers(), 4);
        assert_eq!(seq.items(), 2);
        assert!(approx_eq(seq.horizon(), 4.0));
    }

    #[test]
    fn paper_counts_give_jaccard_three_sevenths() {
        let seq = paper_sequence();
        assert_eq!(seq.count_containing(ItemId(0)), 5);
        assert_eq!(seq.count_containing(ItemId(1)), 5);
        assert_eq!(seq.count_pair(ItemId(0), ItemId(1)), 3);
        let pv = seq.pair_view(ItemId(0), ItemId(1));
        assert!(approx_eq(pv.jaccard(), 3.0 / 7.0));
        assert_eq!(pv.count_a(), 5);
        assert_eq!(pv.count_b(), 5);
        // ave_cost denominator |d1| + |d2| = 10.
        assert_eq!(seq.total_item_accesses(), 10);
    }

    #[test]
    fn pair_view_partitions_correctly() {
        let seq = paper_sequence();
        let pv = seq.pair_view(ItemId(0), ItemId(1));
        assert_eq!(pv.both, vec![1, 3, 6]);
        assert_eq!(pv.only_a, vec![0, 4]);
        assert_eq!(pv.only_b, vec![2, 5]);
    }

    #[test]
    fn traces_project_correctly() {
        let seq = paper_sequence();
        let t1 = seq.item_trace(ItemId(0));
        let times: Vec<f64> = t1.points.iter().map(|p| p.time).collect();
        assert_eq!(times, vec![0.5, 0.8, 1.4, 2.6, 4.0]);
        let pkg = seq.package_trace(ItemId(0), ItemId(1));
        let times: Vec<f64> = pkg.points.iter().map(|p| p.time).collect();
        assert_eq!(times, vec![0.8, 1.4, 4.0]);
        let uni = seq.union_trace(ItemId(0), ItemId(1));
        assert_eq!(uni.len(), 7);
    }

    #[test]
    fn predecessors_follow_definition_1() {
        let seq = paper_sequence();
        let pkg = seq.package_trace(ItemId(0), ItemId(1));
        // Points: 0.8@s3, 1.4@s1, 4.0@s3.
        let preds = pkg.predecessors();
        assert_eq!(preds[0], Predecessor::None); // s3 never visited
        assert_eq!(preds[1], Predecessor::Origin); // s1 holds the origin copy
        assert_eq!(preds[2], Predecessor::Request(0)); // back to 0.8@s3
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(matches!(
            RequestSeqBuilder::new(2, 2).push(0u32, 0.0, [0]).build(),
            Err(ModelError::NonPositiveTime { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2)
                .push(0u32, 1.0, [0])
                .push(0u32, 1.0, [1])
                .build(),
            Err(ModelError::NonIncreasingTime { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2).push(5u32, 1.0, [0]).build(),
            Err(ModelError::ServerOutOfRange { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2).push(0u32, 1.0, [7]).build(),
            Err(ModelError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2)
                .push(0u32, 1.0, std::iter::empty::<u32>())
                .build(),
            Err(ModelError::EmptyItemSet { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2).push(0u32, 1.0, [0, 0]).build(),
            Err(ModelError::DuplicateItem { .. })
        ));
        assert!(matches!(
            RequestSeqBuilder::new(2, 2)
                .push(0u32, f64::NAN, [0])
                .build(),
            Err(ModelError::NonFiniteTime { .. })
        ));
    }

    #[test]
    fn builder_keeps_first_error() {
        let err = RequestSeqBuilder::new(2, 2)
            .push(0u32, -1.0, [0])
            .push(9u32, 2.0, [5])
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NonPositiveTime { .. }));
    }

    #[test]
    fn request_items_are_sorted_for_binary_search() {
        let seq = RequestSeqBuilder::new(1, 5)
            .push(0u32, 1.0, [4, 0, 2])
            .build()
            .unwrap();
        assert_eq!(seq.get(0).items, vec![ItemId(0), ItemId(2), ItemId(4)]);
        assert!(seq.get(0).contains(ItemId(2)));
        assert!(!seq.get(0).contains(ItemId(1)));
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{parse, FromJson, ToJson};
        let seq = paper_sequence();
        let j = seq.to_json().to_string_pretty();
        let back = RequestSeq::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(seq, back);
    }

    #[test]
    fn trace_from_pairs_validates() {
        let t = SingleItemTrace::from_pairs(3, &[(0.5, 1), (0.8, 2)]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn trace_from_pairs_rejects_unordered() {
        let _ = SingleItemTrace::from_pairs(3, &[(0.8, 1), (0.5, 2)]);
    }
}

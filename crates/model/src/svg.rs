//! SVG space-time diagrams — publication-quality renderings of schedules
//! in the style of the paper's Figs. 1/2/7.
//!
//! Servers are horizontal lanes, time runs rightward; cache intervals are
//! thick horizontal bars, transfers are vertical arrows, requests are
//! dots. Pure string generation with no dependencies; output opens in any
//! browser.

use crate::ids::ServerId;
use crate::request::SingleItemTrace;
use crate::schedule::Schedule;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Lane height per server in pixels.
    pub lane_height: u32,
    /// Left margin for lane labels.
    pub margin: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800,
            lane_height: 48,
            margin: 56,
        }
    }
}

/// Renders a schedule/trace pair as a standalone SVG document.
pub fn render_svg(schedule: &Schedule, trace: &SingleItemTrace, opts: &SvgOptions) -> String {
    let m = trace.servers.max(1);
    let horizon = trace
        .points
        .iter()
        .map(|p| p.time)
        .chain(schedule.intervals.iter().map(|iv| iv.span.end))
        .chain(schedule.transfers.iter().map(|tr| tr.time))
        .fold(1.0_f64, f64::max);

    let plot_w = (opts.width - opts.margin - 16) as f64;
    let height = opts.lane_height * m + 40;
    let x = |t: f64| opts.margin as f64 + (t / horizon) * plot_w;
    let lane_y = |s: ServerId| (opts.lane_height * s.0 + opts.lane_height / 2 + 8) as f64;

    let mut out = String::new();
    out.push_str(&format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"##,
        w = opts.width,
        h = height
    ));
    out.push_str(r##"<rect width="100%" height="100%" fill="white"/>"##);

    // Lanes and labels.
    for s in 0..m {
        let y = lane_y(ServerId(s));
        out.push_str(&format!(
            r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#ddd"/>"##,
            x0 = opts.margin,
            x1 = opts.width - 8,
        ));
        out.push_str(&format!(
            r##"<text x="8" y="{ty}" fill="#444">s{label}</text>"##,
            ty = y + 4.0,
            label = s + 1
        ));
    }

    // Cache intervals.
    for iv in &schedule.intervals {
        let y = lane_y(iv.server);
        out.push_str(&format!(
            r##"<line x1="{x0:.1}" y1="{y}" x2="{x1:.1}" y2="{y}" stroke="#2b6cb0" stroke-width="6" stroke-linecap="round" opacity="0.85"/>"##,
            x0 = x(iv.span.start),
            x1 = x(iv.span.end),
        ));
    }

    // Transfers.
    for tr in &schedule.transfers {
        let (y0, y1) = (lane_y(tr.from), lane_y(tr.to));
        let xt = x(tr.time);
        out.push_str(&format!(
            r##"<line x1="{xt:.1}" y1="{y0}" x2="{xt:.1}" y2="{y1}" stroke="#c05621" stroke-width="2" stroke-dasharray="4 3"/>"##,
        ));
        // Arrowhead toward the destination.
        let dir = if y1 > y0 { -6.0 } else { 6.0 };
        out.push_str(&format!(
            r##"<path d="M {x0:.1} {y1} l -4 {dir} l 8 0 z" fill="#c05621"/>"##,
            x0 = xt,
        ));
    }

    // Requests.
    for p in &trace.points {
        let y = lane_y(p.server);
        out.push_str(&format!(
            r##"<circle cx="{cx:.1}" cy="{y}" r="4" fill="#1a202c"/>"##,
            cx = x(p.time),
        ));
        out.push_str(&format!(
            r##"<text x="{cx:.1}" y="{ty}" fill="#1a202c" text-anchor="middle" font-size="10">{t}</text>"##,
            cx = x(p.time),
            ty = y - 8.0,
            t = p.time,
        ));
    }

    // Time axis.
    out.push_str(&format!(
        r##"<text x="{x0}" y="{ty}" fill="#444">t=0</text><text x="{x1}" y="{ty}" fill="#444" text-anchor="end">t={horizon:.2}</text>"##,
        x0 = opts.margin,
        x1 = opts.width - 8,
        ty = height - 8,
    ));
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Schedule, SingleItemTrace) {
        let trace = SingleItemTrace::from_pairs(4, &[(0.8, 2), (1.4, 0), (4.0, 2)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.4)
            .cache(ServerId(2), 0.8, 4.0)
            .transfer(ServerId(0), ServerId(2), 0.8);
        (s, trace)
    }

    #[test]
    fn renders_well_formed_svg() {
        let (s, trace) = sample();
        let svg = render_svg(&s, &trace, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One circle per request, one thick bar per interval, one dashed
        // line per transfer.
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("stroke-width=\"6\"").count(), 2);
        assert_eq!(svg.matches("stroke-dasharray").count(), 1);
        // Every lane labelled.
        for s in 1..=4 {
            assert!(svg.contains(&format!(">s{s}</text>")));
        }
    }

    #[test]
    fn custom_options_change_geometry() {
        let (s, trace) = sample();
        let small = render_svg(
            &s,
            &trace,
            &SvgOptions {
                width: 400,
                lane_height: 24,
                margin: 40,
            },
        );
        assert!(small.contains(r##"width="400""##));
        let h = 24 * 4 + 40;
        assert!(small.contains(&format!(r##"height="{h}""##)));
    }

    #[test]
    fn empty_schedule_still_renders() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let svg = render_svg(&Schedule::new(), &trace, &SvgOptions::default());
        assert!(svg.contains("<circle"));
        assert!(svg.contains("t=1.00"));
    }
}

//! Strongly-typed identifiers for data items and cache servers.
//!
//! The paper indexes items `d_1..d_k` and servers `s_1..s_m` from one; we
//! index from zero internally and render one-based in [`std::fmt::Display`]
//! so that diagrams and experiment output match the paper's notation.

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Identifier of a data item (`d_p` in the paper), zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(pub u32);

/// Identifier of a cache server (`s_j` in the paper), zero-based.
///
/// By convention — matching Section III-A of the paper — every data item
/// initially resides on server `s_1`, i.e. `ServerId::ORIGIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u32);

impl ItemId {
    /// Zero-based index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ServerId {
    /// The server on which every item initially resides (`s_1`).
    pub const ORIGIN: ServerId = ServerId(0);

    /// Zero-based index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

// Ids serialize transparently as their raw number, matching the on-disk
// format the previous `#[serde(transparent)]` derives produced.
impl ToJson for ItemId {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(self.0))
    }
}

impl FromJson for ItemId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(ItemId)
    }
}

impl ToJson for ServerId {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(self.0))
    }
}

impl FromJson for ServerId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(ServerId)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for ServerId {
    fn from(v: u32) -> Self {
        ServerId(v)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One-based, matching the paper's d_1..d_k.
        write!(f, "d{}", self.0 + 1)
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One-based, matching the paper's s_1..s_m.
        write!(f, "s{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(ItemId(0).to_string(), "d1");
        assert_eq!(ItemId(9).to_string(), "d10");
        assert_eq!(ServerId(0).to_string(), "s1");
        assert_eq!(ServerId::ORIGIN.to_string(), "s1");
        assert_eq!(ServerId(49).to_string(), "s50");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ItemId(7).index(), 7);
        assert_eq!(ServerId(3).index(), 3);
        assert_eq!(ItemId::from(5), ItemId(5));
        assert_eq!(ServerId::from(5), ServerId(5));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ItemId(1) < ItemId(2));
        assert!(ServerId(0) < ServerId(10));
    }

    #[test]
    fn json_is_transparent() {
        use crate::json::{parse, FromJson, ToJson};
        let j = ItemId(4).to_json().to_string();
        assert_eq!(j, "4");
        let back = ItemId::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(back, ItemId(4));
        assert_eq!(ServerId(7).to_json().to_string(), "7");
    }
}

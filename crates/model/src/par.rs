//! Minimal data parallelism on `std::thread::scope`.
//!
//! Replaces the rayon `par_iter().map(..).collect()` pattern the
//! experiment runners used (rayon is unavailable in the no-network
//! build). Work is split into contiguous chunks, one scoped thread per
//! chunk, and results land in their input positions — so output order,
//! and therefore every experiment table, is identical to a sequential
//! run.
//!
//! This lives in `mcs-model` (the bottom of the dependency graph) so any
//! layer — the off-line cross-validation sweeps, the bench harness, the
//! engine registry, the experiment runners — can parallel-map without a
//! new dependency edge.

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most `available_parallelism()` scoped threads; falls back to
/// a plain sequential map for tiny inputs.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slots, chunk_items) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            s.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled by its chunk's thread"))
        .collect()
}

/// [`par_map`] over the index range `0..n`.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(&xs, |&x| x * 2);
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn range_variant_matches() {
        assert_eq!(par_map_range(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }
}

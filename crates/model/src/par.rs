//! Minimal data parallelism on `std::thread::scope`.
//!
//! Replaces the rayon `par_iter().map(..).collect()` pattern the
//! experiment runners used (rayon is unavailable in the no-network
//! build). Work is split into contiguous chunks, one scoped thread per
//! chunk, and results land in their input positions — so output order,
//! and therefore every experiment table, is identical to a sequential
//! run.
//!
//! This lives in `mcs-model` (the bottom of the dependency graph) so any
//! layer — the off-line cross-validation sweeps, the bench harness, the
//! engine registry, the experiment runners — can parallel-map without a
//! new dependency edge.
//!
//! ## Thread-count knob
//!
//! The worker count defaults to `std::thread::available_parallelism()`
//! and can be overridden with the `MCS_THREADS` environment variable
//! (`MCS_THREADS=1` forces every parallel path in the workspace to run
//! serially; larger values oversubscribe, which the perf bench uses to
//! sweep thread counts on any machine). The variable is re-read on every
//! call, so a process can change it between measurements.

/// Name of the environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "MCS_THREADS";

/// The number of worker threads parallel sections use: `MCS_THREADS` if
/// set to a positive integer, otherwise `available_parallelism()`
/// (falling back to 1). Never 0.
pub fn max_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most [`max_threads`] scoped threads; falls back to a plain
/// sequential map for tiny inputs. Because every output lands in its
/// input position, the result is **identical** to `items.iter().map(f)`
/// for any thread count — parallelism here never changes figures.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_with_threads(items, max_threads(), f)
}

/// [`par_map`] with an explicit worker-thread cap (the perf bench sweeps
/// this directly; everything else goes through the env-driven default).
pub fn par_map_with_threads<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slots, chunk_items) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            s.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled by its chunk's thread"))
        .collect()
}

/// [`par_map`] over the index range `0..n`.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

/// Splits `0..len` into at most `shards` contiguous `(start, end)` ranges
/// of near-equal size, in order. Used by the sharded statistics counters:
/// each shard is counted independently and the per-shard results merged.
/// Returns an empty vector for `len == 0`.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..len)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(&xs, |&x| x * 2);
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn range_variant_matches() {
        assert_eq!(par_map_range(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let xs: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_with_threads(&xs, threads, |&x| x * x), want);
        }
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        assert!(shard_ranges(0, 4).is_empty());
        for (len, shards) in [(1, 1), (1, 9), (10, 3), (100, 7), (5, 5), (8, 64)] {
            let ranges = shard_ranges(len, shards);
            assert!(ranges.len() <= shards.max(1));
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous at {w:?}");
            }
            let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}

//! Property tests over the model layer: builder/json round trips,
//! schedule normalisation invariants, diagram totality.

#![cfg(all(test, feature = "proptest"))]

use proptest::prelude::*;

use crate::cost::CostModel;
use crate::ids::ServerId;
use crate::request::{RequestSeq, RequestSeqBuilder, SingleItemTrace};
use crate::schedule::Schedule;
use crate::time::approx_eq;

fn seq_strategy() -> impl Strategy<Value = RequestSeq> {
    (1u32..=5, 1u32..=4, 0usize..=20).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            proptest::collection::vec(1u32..=300, n),
            proptest::collection::vec(0u32..m, n),
            proptest::collection::vec(proptest::collection::btree_set(0u32..k, 1..=k as usize), n),
        )
            .prop_map(|(m, k, mut ticks, servers, item_sets)| {
                ticks.sort_unstable();
                ticks.dedup();
                let mut b = RequestSeqBuilder::new(m, k);
                for ((&t, &s), items) in ticks.iter().zip(&servers).zip(&item_sets) {
                    b = b.push(s, t as f64 / 10.0, items.iter().copied());
                }
                b.build().expect("constructed within invariants")
            })
    })
}

/// A feasible random schedule: a growing frontier of intervals chained by
/// transfers from the origin.
fn schedule_strategy() -> impl Strategy<Value = (Schedule, SingleItemTrace)> {
    (2u32..=4, 1usize..=8).prop_flat_map(|(m, hops)| {
        proptest::collection::vec((0u32..m, 1u32..=40), hops).prop_map(move |steps| {
            let mut s = Schedule::new();
            let mut trace_pts = Vec::new();
            let mut cur = ServerId::ORIGIN;
            let mut t = 0.0_f64;
            for (srv, dt) in steps {
                let next_t = t + dt as f64 / 10.0;
                s.cache(cur, t, next_t);
                let dst = ServerId(srv);
                if dst != cur {
                    s.transfer(cur, dst, next_t);
                }
                trace_pts.push((next_t, dst.0));
                cur = dst;
                t = next_t;
            }
            let trace = SingleItemTrace::from_pairs(m, &trace_pts);
            (s, trace)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sequence_json_round_trips(seq in seq_strategy()) {
        use crate::json::{parse, FromJson, ToJson};
        let json = seq.to_json().to_string();
        let back = RequestSeq::from_json(&parse(&json).unwrap()).unwrap();
        prop_assert_eq!(seq, back);
    }

    #[test]
    fn item_traces_partition_accesses(seq in seq_strategy()) {
        let total: usize = (0..seq.items())
            .map(|i| seq.item_trace(crate::ids::ItemId(i)).len())
            .sum();
        prop_assert_eq!(total, seq.total_item_accesses());
    }

    #[test]
    fn pair_views_are_consistent(seq in seq_strategy()) {
        for a in 0..seq.items() {
            for b in (a + 1)..seq.items() {
                let (a, b) = (crate::ids::ItemId(a), crate::ids::ItemId(b));
                let pv = seq.pair_view(a, b);
                prop_assert_eq!(pv.count_a(), seq.count_containing(a));
                prop_assert_eq!(pv.count_b(), seq.count_containing(b));
                prop_assert_eq!(pv.both.len(), seq.count_pair(a, b));
                let j = pv.jaccard();
                prop_assert!((0.0..=1.0).contains(&j));
            }
        }
    }

    #[test]
    fn generated_schedules_validate_and_account(
        (schedule, trace) in schedule_strategy(),
        mu in 1u32..=30,
        la in 1u32..=30,
    ) {
        prop_assert!(schedule.validate(&trace).is_ok());
        let model = CostModel::new(mu as f64 / 10.0, la as f64 / 10.0, 0.8).unwrap();
        let c = schedule.cost(model.mu(), model.lambda());
        prop_assert!(approx_eq(
            c.total,
            model.mu() * c.cache_time + model.lambda() * c.transfers as f64
        ));
    }

    #[test]
    fn normalize_preserves_validity_and_never_raises_cost(
        (mut schedule, trace) in schedule_strategy(),
    ) {
        let before = schedule.cost(1.0, 1.0).total;
        schedule.normalize();
        let after = schedule.cost(1.0, 1.0).total;
        prop_assert!(after <= before + 1e-9, "normalize raised cost {before} -> {after}");
        prop_assert!(schedule.validate(&trace).is_ok(), "normalize broke feasibility");
        // Idempotent.
        let mut again = schedule.clone();
        again.normalize();
        prop_assert_eq!(&again, &schedule);
    }

    #[test]
    fn diagram_renders_all_inputs((schedule, trace) in schedule_strategy()) {
        let art = crate::diagram::render(&schedule, &trace, 48);
        prop_assert_eq!(art.lines().count(), trace.servers as usize + 2);
        prop_assert!(art.contains('*'));
    }
}

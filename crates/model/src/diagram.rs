//! ASCII space-time diagrams in the style of Fig. 1/2/7/8 of the paper.
//!
//! Servers are rows, time runs left to right; `=` marks a cache interval,
//! `|`-ish markers (`v`) mark transfer arrival columns, and `*` marks
//! request points. These renderings are used by examples and by debugging
//! output; they are deliberately coarse (fixed column count) but faithful
//! about ordering and overlap.

use crate::ids::ServerId;
use crate::request::SingleItemTrace;
use crate::schedule::Schedule;

/// Renders `schedule` against `trace` as a multi-line ASCII diagram.
///
/// `width` is the number of character columns used for the time axis
/// (minimum 20; the scale is printed on the last line).
pub fn render(schedule: &Schedule, trace: &SingleItemTrace, width: usize) -> String {
    let width = width.max(20);
    let horizon = trace
        .points
        .iter()
        .map(|p| p.time)
        .chain(schedule.intervals.iter().map(|iv| iv.span.end))
        .chain(schedule.transfers.iter().map(|tr| tr.time))
        .fold(1.0_f64, f64::max);
    let col = |t: f64| -> usize {
        (((t / horizon) * (width - 1) as f64).round() as usize).min(width - 1)
    };

    let m = trace.servers as usize;
    let mut rows: Vec<Vec<char>> = vec![vec![' '; width]; m];

    for iv in &schedule.intervals {
        let (a, b) = (col(iv.span.start), col(iv.span.end));
        let row = &mut rows[iv.server.index()];
        for c in row.iter_mut().take(b + 1).skip(a) {
            *c = '=';
        }
    }
    for tr in &schedule.transfers {
        let c = col(tr.time);
        let row = &mut rows[tr.to.index()];
        if row[c] == ' ' {
            row[c] = 'v';
        }
    }
    for p in &trace.points {
        let c = col(p.time);
        rows[p.server.index()][c] = '*';
    }
    // Origin marker.
    if m > 0 && rows[ServerId::ORIGIN.index()][0] == ' ' {
        rows[ServerId::ORIGIN.index()][0] = 'o';
    }

    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("{:>4} |", ServerId(i as u32)));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      t=0{:>pad$}\n",
        "-".repeat(width),
        format!("t={horizon:.2}"),
        pad = width - 3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_intervals_transfers_and_requests() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 2.0)
            .transfer(ServerId(0), ServerId(1), 1.0)
            .transfer(ServerId(0), ServerId(2), 2.0);
        let art = render(&s, &trace, 40);
        assert_eq!(art.lines().count(), 3 + 2);
        assert!(art.contains("s1 |"));
        assert!(art.contains('='));
        assert!(art.contains('*'));
        assert!(art.contains("t=2.00"));
    }

    #[test]
    fn request_markers_override_interval_glyphs() {
        let trace = SingleItemTrace::from_pairs(1, &[(1.0, 0)]);
        let mut s = Schedule::new();
        s.cache(ServerId(0), 0.0, 1.0);
        let art = render(&s, &trace, 20);
        // The last column of row s1 is the request marker, not '='.
        let row = art.lines().next().unwrap();
        assert!(row.trim_end().ends_with('*'));
    }

    #[test]
    fn width_is_clamped() {
        let trace = SingleItemTrace::from_pairs(1, &[(1.0, 0)]);
        let s = Schedule::new();
        // Tiny width does not panic and is raised to the minimum.
        let art = render(&s, &trace, 1);
        assert!(art.lines().next().unwrap().len() >= 20);
    }

    #[test]
    fn empty_schedule_marks_origin() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let s = Schedule::new();
        let art = render(&s, &trace, 30);
        let first = art.lines().next().unwrap();
        assert!(first.contains('o'));
    }
}

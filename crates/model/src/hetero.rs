//! Heterogeneous cost model — the general form the paper's Section III-C
//! relates to the rectilinear Steiner arborescence problem.
//!
//! The DP_Greedy paper works under homogeneous costs, but defines its
//! hardness by reference to the heterogeneous problem of \[7\]: per-server
//! caching rates `μ_s` and per-pair transfer costs `λ_{st}`. This module
//! supplies that model as a first-class citizen so the workspace can (a)
//! check that every homogeneous algorithm is the uniform special case of
//! a heterogeneous one, and (b) host the exact/heuristic heterogeneous
//! solvers of `mcs-offline::hetero`.

use crate::error::ModelError;
use crate::ids::ServerId;

/// Per-server, per-link cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroCostModel {
    /// `μ_s` — caching rate per copy per unit time at each server.
    mu: Vec<f64>,
    /// `λ_{st}` — symmetric transfer cost matrix with zero diagonal,
    /// row-major `m×m`.
    lambda: Vec<f64>,
    /// Package discount factor `α ∈ (0, 1]` (kept for parity with the
    /// homogeneous model; the heterogeneous solvers here are single-item).
    alpha: f64,
    servers: u32,
}

crate::impl_json!(HeteroCostModel {
    mu,
    lambda,
    alpha,
    servers
});

impl HeteroCostModel {
    /// Validates and builds a heterogeneous model.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCostModel`] when any rate is non-finite or
    /// non-positive, the matrix is misshapen/asymmetric, a diagonal entry
    /// is non-zero, or `α ∉ (0, 1]`.
    pub fn new(mu: Vec<f64>, lambda: Vec<f64>, alpha: f64) -> Result<Self, ModelError> {
        let m = mu.len();
        if m == 0 {
            return Err(ModelError::InvalidCostModel {
                what: "need at least one server",
            });
        }
        if lambda.len() != m * m {
            return Err(ModelError::InvalidCostModel {
                what: "λ matrix must be m×m",
            });
        }
        for &r in &mu {
            if !(r.is_finite() && r > 0.0) {
                return Err(ModelError::InvalidCostModel {
                    what: "every μ_s must be finite and positive",
                });
            }
        }
        for i in 0..m {
            for j in 0..m {
                let v = lambda[i * m + j];
                if i == j {
                    if v != 0.0 {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ diagonal must be zero",
                        });
                    }
                } else {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(ModelError::InvalidCostModel {
                            what: "every off-diagonal λ must be finite and positive",
                        });
                    }
                    if (v - lambda[j * m + i]).abs() > crate::time::EPSILON {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ matrix must be symmetric",
                        });
                    }
                }
            }
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(ModelError::InvalidCostModel {
                what: "α must lie in (0, 1]",
            });
        }
        Ok(HeteroCostModel {
            mu,
            lambda,
            alpha,
            servers: m as u32,
        })
    }

    /// Embeds a homogeneous model over `m` servers (all `μ_s = μ`, all
    /// `λ_{st} = λ`).
    pub fn uniform(m: u32, mu: f64, lambda: f64, alpha: f64) -> Result<Self, ModelError> {
        let msize = m as usize;
        let mut lam = vec![lambda; msize * msize];
        for i in 0..msize {
            lam[i * msize + i] = 0.0;
        }
        Self::new(vec![mu; msize], lam, alpha)
    }

    /// Number of servers `m`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Caching rate at `s`.
    #[inline]
    pub fn mu(&self, s: ServerId) -> f64 {
        self.mu[s.index()]
    }

    /// Transfer cost between `a` and `b` (zero when equal).
    #[inline]
    pub fn lambda(&self, a: ServerId, b: ServerId) -> f64 {
        self.lambda[a.index() * self.servers as usize + b.index()]
    }

    /// Discount factor.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The raw per-server rate vector, indexed by server.
    #[inline]
    pub fn mu_rates(&self) -> &[f64] {
        &self.mu
    }

    /// The raw row-major `m×m` transfer matrix.
    #[inline]
    pub fn lambda_matrix(&self) -> &[f64] {
        &self.lambda
    }

    /// Recovers the homogeneous [`crate::CostModel`] when this model is
    /// exactly a [`Self::uniform`] embedding: all `μ_s` *bitwise* equal
    /// and all off-diagonal `λ_{st}` bitwise equal. Bitwise (not
    /// approximate) equality is what makes the collapse a byte-identity
    /// guarantee rather than a numerical coincidence. A single-server
    /// model never collapses (it has no off-diagonal λ to recover).
    pub fn collapse_uniform(&self) -> Option<crate::CostModel> {
        let m = self.servers as usize;
        if m < 2 {
            return None;
        }
        let mu = self.mu[0];
        if !self.mu.iter().all(|&r| r.to_bits() == mu.to_bits()) {
            return None;
        }
        let lambda = self.lambda[1];
        for i in 0..m {
            for j in 0..m {
                if i != j && self.lambda[i * m + j].to_bits() != lambda.to_bits() {
                    return None;
                }
            }
        }
        crate::CostModel::new(mu, lambda, self.alpha).ok()
    }

    /// Cheapest caching rate across servers — a lower-bound building block.
    pub fn min_mu(&self) -> f64 {
        self.mu.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// True if the transfer matrix satisfies the triangle inequality
    /// (metric networks; relays never pay off within a single instant).
    pub fn is_metric(&self) -> bool {
        let m = self.servers as usize;
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    if self.lambda[i * m + j]
                        > self.lambda[i * m + k] + self.lambda[k * m + j] + crate::time::EPSILON
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Fluent builder for [`HeteroCostModel`] — the per-server counterpart of
/// [`crate::CostModelBuilder`], so sweeps construct heterogeneous models
/// the same way as the homogeneous path (including the Fig.-12
/// [`Self::from_rho`] parameterisation).
#[derive(Debug, Clone)]
pub struct HeteroCostModelBuilder {
    mu: Vec<f64>,
    lambda: Vec<f64>,
    alpha: f64,
    servers: usize,
}

impl HeteroCostModelBuilder {
    /// Starts from a uniform embedding of the defaults `μ = λ = 1`,
    /// `α = 0.8` over `m` servers.
    pub fn new(m: u32) -> Self {
        let servers = m as usize;
        let mut lambda = vec![1.0; servers * servers];
        for i in 0..servers {
            lambda[i * servers + i] = 0.0;
        }
        HeteroCostModelBuilder {
            mu: vec![1.0; servers],
            lambda,
            alpha: 0.8,
            servers,
        }
    }

    /// Sets every `μ_s` and every off-diagonal `λ_{st}` uniformly.
    pub fn uniform_rates(mut self, mu: f64, lambda: f64) -> Self {
        self.mu.fill(mu);
        for i in 0..self.servers {
            for j in 0..self.servers {
                self.lambda[i * self.servers + j] = if i == j { 0.0 } else { lambda };
            }
        }
        self
    }

    /// Sets uniform rates from the ratio `ρ = λ/μ` under the Fig.-12
    /// constraint `λ + μ = sum` — the same parameterisation as
    /// [`crate::CostModelBuilder::from_rho`].
    pub fn from_rho(self, rho: f64, sum: f64) -> Self {
        let mu = sum / (1.0 + rho);
        let lambda = sum * rho / (1.0 + rho);
        self.uniform_rates(mu, lambda)
    }

    /// Overrides one server's caching rate.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn mu_at(mut self, s: ServerId, mu: f64) -> Self {
        self.mu[s.index()] = mu;
        self
    }

    /// Overrides one link's transfer cost (kept symmetric).
    ///
    /// # Panics
    ///
    /// Panics if either server is out of range.
    pub fn lambda_between(mut self, a: ServerId, b: ServerId, lambda: f64) -> Self {
        self.lambda[a.index() * self.servers + b.index()] = lambda;
        self.lambda[b.index() * self.servers + a.index()] = lambda;
        self
    }

    /// Sets the discount factor `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builds the validated model.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::InvalidCostModel`] from
    /// [`HeteroCostModel::new`].
    pub fn build(self) -> Result<HeteroCostModel, ModelError> {
        HeteroCostModel::new(self.mu, self.lambda, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_embedding_round_trips() {
        let h = HeteroCostModel::uniform(3, 2.0, 5.0, 0.8).unwrap();
        assert_eq!(h.servers(), 3);
        assert_eq!(h.mu(ServerId(1)), 2.0);
        assert_eq!(h.lambda(ServerId(0), ServerId(2)), 5.0);
        assert_eq!(h.lambda(ServerId(2), ServerId(2)), 0.0);
        assert_eq!(h.min_mu(), 2.0);
        assert!(h.is_metric());
    }

    #[test]
    fn rejects_malformed_models() {
        assert!(HeteroCostModel::new(vec![], vec![], 0.8).is_err());
        assert!(HeteroCostModel::new(vec![1.0], vec![0.0, 1.0], 0.8).is_err());
        assert!(HeteroCostModel::new(vec![0.0], vec![0.0], 0.8).is_err());
        // Asymmetric.
        assert!(HeteroCostModel::new(vec![1.0, 1.0], vec![0.0, 2.0, 3.0, 0.0], 0.8).is_err());
        // Non-zero diagonal.
        assert!(HeteroCostModel::new(vec![1.0, 1.0], vec![1.0, 2.0, 2.0, 0.0], 0.8).is_err());
        // Bad alpha.
        assert!(HeteroCostModel::uniform(2, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn metric_detection() {
        // A violating matrix: going around (0→2→1 = 1+1) is cheaper than
        // direct (0→1 = 5).
        let h = HeteroCostModel::new(
            vec![1.0, 1.0, 1.0],
            vec![
                0.0, 5.0, 1.0, //
                5.0, 0.0, 1.0, //
                1.0, 1.0, 0.0,
            ],
            0.8,
        )
        .unwrap();
        assert!(!h.is_metric());
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{parse, FromJson, ToJson};
        let h = HeteroCostModel::uniform(2, 1.5, 2.5, 0.7).unwrap();
        let j = h.to_json().to_string();
        let back = HeteroCostModel::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn uniform_models_collapse_bitwise_and_spreads_do_not() {
        let h = HeteroCostModel::uniform(3, 1.2, 2.3, 0.8).unwrap();
        let c = h.collapse_uniform().unwrap();
        assert_eq!(c.mu().to_bits(), 1.2f64.to_bits());
        assert_eq!(c.lambda().to_bits(), 2.3f64.to_bits());
        assert_eq!(c.alpha().to_bits(), 0.8f64.to_bits());
        // A spread in μ or λ breaks the collapse.
        let spread = HeteroCostModelBuilder::new(3)
            .uniform_rates(1.2, 2.3)
            .mu_at(ServerId(2), 1.3)
            .build()
            .unwrap();
        assert!(spread.collapse_uniform().is_none());
        let asym = HeteroCostModelBuilder::new(3)
            .uniform_rates(1.2, 2.3)
            .lambda_between(ServerId(0), ServerId(2), 9.0)
            .build()
            .unwrap();
        assert!(asym.collapse_uniform().is_none());
        // One server has no λ to recover.
        assert!(HeteroCostModel::uniform(1, 1.0, 1.0, 0.8)
            .unwrap()
            .collapse_uniform()
            .is_none());
    }

    #[test]
    fn builder_matches_the_homogeneous_parameterisation() {
        use crate::CostModelBuilder;
        let homo = CostModelBuilder::new().from_rho(2.0, 6.0).build().unwrap();
        let het = HeteroCostModelBuilder::new(4)
            .from_rho(2.0, 6.0)
            .build()
            .unwrap();
        let collapsed = het.collapse_uniform().unwrap();
        assert_eq!(collapsed.mu().to_bits(), homo.mu().to_bits());
        assert_eq!(collapsed.lambda().to_bits(), homo.lambda().to_bits());
        // Per-server / per-link overrides land where they should.
        let h = HeteroCostModelBuilder::new(3)
            .uniform_rates(2.0, 4.0)
            .mu_at(ServerId(1), 0.5)
            .lambda_between(ServerId(1), ServerId(2), 7.0)
            .alpha(0.9)
            .build()
            .unwrap();
        assert_eq!(h.mu(ServerId(1)), 0.5);
        assert_eq!(h.mu(ServerId(0)), 2.0);
        assert_eq!(h.lambda(ServerId(2), ServerId(1)), 7.0);
        assert_eq!(h.lambda(ServerId(0), ServerId(1)), 4.0);
        assert_eq!(h.alpha(), 0.9);
    }
}

//! Heterogeneous cost model — the general form the paper's Section III-C
//! relates to the rectilinear Steiner arborescence problem.
//!
//! The DP_Greedy paper works under homogeneous costs, but defines its
//! hardness by reference to the heterogeneous problem of \[7\]: per-server
//! caching rates `μ_s` and per-pair transfer costs `λ_{st}`. This module
//! supplies that model as a first-class citizen so the workspace can (a)
//! check that every homogeneous algorithm is the uniform special case of
//! a heterogeneous one, and (b) host the exact/heuristic heterogeneous
//! solvers of `mcs-offline::hetero`.

use crate::error::ModelError;
use crate::ids::ServerId;

/// Per-server, per-link cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroCostModel {
    /// `μ_s` — caching rate per copy per unit time at each server.
    mu: Vec<f64>,
    /// `λ_{st}` — symmetric transfer cost matrix with zero diagonal,
    /// row-major `m×m`.
    lambda: Vec<f64>,
    /// Package discount factor `α ∈ (0, 1]` (kept for parity with the
    /// homogeneous model; the heterogeneous solvers here are single-item).
    alpha: f64,
    servers: u32,
}

crate::impl_json!(HeteroCostModel {
    mu,
    lambda,
    alpha,
    servers
});

impl HeteroCostModel {
    /// Validates and builds a heterogeneous model.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCostModel`] when any rate is non-finite or
    /// non-positive, the matrix is misshapen/asymmetric, a diagonal entry
    /// is non-zero, or `α ∉ (0, 1]`.
    pub fn new(mu: Vec<f64>, lambda: Vec<f64>, alpha: f64) -> Result<Self, ModelError> {
        let m = mu.len();
        if m == 0 {
            return Err(ModelError::InvalidCostModel {
                what: "need at least one server",
            });
        }
        if lambda.len() != m * m {
            return Err(ModelError::InvalidCostModel {
                what: "λ matrix must be m×m",
            });
        }
        for &r in &mu {
            if !(r.is_finite() && r > 0.0) {
                return Err(ModelError::InvalidCostModel {
                    what: "every μ_s must be finite and positive",
                });
            }
        }
        for i in 0..m {
            for j in 0..m {
                let v = lambda[i * m + j];
                if i == j {
                    if v != 0.0 {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ diagonal must be zero",
                        });
                    }
                } else {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(ModelError::InvalidCostModel {
                            what: "every off-diagonal λ must be finite and positive",
                        });
                    }
                    if (v - lambda[j * m + i]).abs() > crate::time::EPSILON {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ matrix must be symmetric",
                        });
                    }
                }
            }
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(ModelError::InvalidCostModel {
                what: "α must lie in (0, 1]",
            });
        }
        Ok(HeteroCostModel {
            mu,
            lambda,
            alpha,
            servers: m as u32,
        })
    }

    /// Embeds a homogeneous model over `m` servers (all `μ_s = μ`, all
    /// `λ_{st} = λ`).
    pub fn uniform(m: u32, mu: f64, lambda: f64, alpha: f64) -> Result<Self, ModelError> {
        let msize = m as usize;
        let mut lam = vec![lambda; msize * msize];
        for i in 0..msize {
            lam[i * msize + i] = 0.0;
        }
        Self::new(vec![mu; msize], lam, alpha)
    }

    /// Number of servers `m`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Caching rate at `s`.
    #[inline]
    pub fn mu(&self, s: ServerId) -> f64 {
        self.mu[s.index()]
    }

    /// Transfer cost between `a` and `b` (zero when equal).
    #[inline]
    pub fn lambda(&self, a: ServerId, b: ServerId) -> f64 {
        self.lambda[a.index() * self.servers as usize + b.index()]
    }

    /// Discount factor.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Cheapest caching rate across servers — a lower-bound building block.
    pub fn min_mu(&self) -> f64 {
        self.mu.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// True if the transfer matrix satisfies the triangle inequality
    /// (metric networks; relays never pay off within a single instant).
    pub fn is_metric(&self) -> bool {
        let m = self.servers as usize;
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    if self.lambda[i * m + j]
                        > self.lambda[i * m + k] + self.lambda[k * m + j] + crate::time::EPSILON
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_embedding_round_trips() {
        let h = HeteroCostModel::uniform(3, 2.0, 5.0, 0.8).unwrap();
        assert_eq!(h.servers(), 3);
        assert_eq!(h.mu(ServerId(1)), 2.0);
        assert_eq!(h.lambda(ServerId(0), ServerId(2)), 5.0);
        assert_eq!(h.lambda(ServerId(2), ServerId(2)), 0.0);
        assert_eq!(h.min_mu(), 2.0);
        assert!(h.is_metric());
    }

    #[test]
    fn rejects_malformed_models() {
        assert!(HeteroCostModel::new(vec![], vec![], 0.8).is_err());
        assert!(HeteroCostModel::new(vec![1.0], vec![0.0, 1.0], 0.8).is_err());
        assert!(HeteroCostModel::new(vec![0.0], vec![0.0], 0.8).is_err());
        // Asymmetric.
        assert!(HeteroCostModel::new(vec![1.0, 1.0], vec![0.0, 2.0, 3.0, 0.0], 0.8).is_err());
        // Non-zero diagonal.
        assert!(HeteroCostModel::new(vec![1.0, 1.0], vec![1.0, 2.0, 2.0, 0.0], 0.8).is_err());
        // Bad alpha.
        assert!(HeteroCostModel::uniform(2, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn metric_detection() {
        // A violating matrix: going around (0→2→1 = 1+1) is cheaper than
        // direct (0→1 = 5).
        let h = HeteroCostModel::new(
            vec![1.0, 1.0, 1.0],
            vec![
                0.0, 5.0, 1.0, //
                5.0, 0.0, 1.0, //
                1.0, 1.0, 0.0,
            ],
            0.8,
        )
        .unwrap();
        assert!(!h.is_metric());
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{parse, FromJson, ToJson};
        let h = HeteroCostModel::uniform(2, 1.5, 2.5, 0.7).unwrap();
        let j = h.to_json().to_string();
        let back = HeteroCostModel::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(h, back);
    }
}

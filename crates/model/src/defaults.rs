//! Workspace-wide default parameters.
//!
//! The paper's evaluation pins one canonical operating point — `μ = 2`,
//! `λ = 4` (the `ρ = 2` peak of Fig. 12 under `λ + μ = 6`), `α = 0.8`
//! and `θ = 0.3` — and every runner, bench, and CLI default should agree
//! on it. These constants are the single source of truth; re-declaring
//! them locally (the pre-engine state of `dpg.rs` and several experiment
//! runners) risks silent drift between figures.

use crate::cost::CostModel;
use crate::hetero::HeteroCostModel;
use crate::tiered::{StorageTier, TieredCostModel};

/// Default cache rate `μ` (Fig. 12's ρ = 2 operating point).
pub const DEFAULT_MU: f64 = 2.0;

/// Default transfer cost `λ` (Fig. 12's ρ = 2 operating point).
pub const DEFAULT_LAMBDA: f64 = 4.0;

/// Default package discount `α` (the paper's headline setting).
pub const DEFAULT_ALPHA: f64 = 0.8;

/// Default packing threshold `θ` (justified by the Fig. 11 sweep).
pub const DEFAULT_THETA: f64 = 0.3;

/// Default workload seed (the CLUSTER 2019 conference date; kept stable
/// so `EXPERIMENTS.md` numbers are reproducible).
pub const DEFAULT_SEED: u64 = 20190923;

/// The rate-sum constraint of the Fig. 12 sweep: `λ + μ = 6`.
pub const RATE_SUM: f64 = 6.0;

/// The default cost model assembled from the constants above.
pub fn default_model() -> CostModel {
    CostModel::new(DEFAULT_MU, DEFAULT_LAMBDA, DEFAULT_ALPHA).expect("default model is valid")
}

/// Default intra-server tier move cost (one level crossing) for the
/// tiered waterfall — a quarter of a cross-server transfer, so promotion
/// is cheap relative to a re-fetch but not free.
pub const DEFAULT_MOVE_COST: f64 = 1.0;

/// Default origin-fetch cost for the tiered waterfall: `2λ` — the
/// backing store is farther than any peer server.
pub const DEFAULT_ORIGIN_FETCH: f64 = 2.0 * DEFAULT_LAMBDA;

/// Default L1 slot count per server for the tiered waterfall.
pub const DEFAULT_L1_SLOTS: u32 = 2;

/// Default L2 slot count per server for the tiered waterfall.
pub const DEFAULT_L2_SLOTS: u32 = 4;

/// The uniform heterogeneous embedding of [`default_model`] over `m`
/// servers — the starting point every hetero sweep perturbs, mirroring
/// how the homogeneous sweeps start from the defaults.
pub fn default_hetero_model(m: u32) -> HeteroCostModel {
    HeteroCostModel::uniform(m, DEFAULT_MU, DEFAULT_LAMBDA, DEFAULT_ALPHA)
        .expect("default hetero model is valid")
}

/// The default L1/L2/L3 waterfall over `m` servers: a small fast tier at
/// a RAM premium (`2μ`, [`DEFAULT_L1_SLOTS`] slots), a mid tier at the
/// base rate (`μ`, [`DEFAULT_L2_SLOTS`] slots), and an unbounded slow
/// tier at `μ/4`; uniform `λ` links, [`DEFAULT_MOVE_COST`] per level
/// crossing, [`DEFAULT_ORIGIN_FETCH`] from the backing store.
pub fn default_tiered_model(m: u32) -> TieredCostModel {
    let msize = m as usize;
    let ladder = vec![
        StorageTier::bounded(DEFAULT_L1_SLOTS, 2.0 * DEFAULT_MU),
        StorageTier::bounded(DEFAULT_L2_SLOTS, DEFAULT_MU),
        StorageTier::unbounded(DEFAULT_MU / 4.0),
    ];
    let mut lambda = vec![DEFAULT_LAMBDA; msize * msize];
    for i in 0..msize {
        lambda[i * msize + i] = 0.0;
    }
    TieredCostModel::new(
        vec![ladder; msize],
        lambda,
        DEFAULT_MOVE_COST,
        DEFAULT_ORIGIN_FETCH,
        DEFAULT_ALPHA,
    )
    .expect("default tiered model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_the_constants() {
        let m = default_model();
        assert_eq!(m.mu(), DEFAULT_MU);
        assert_eq!(m.lambda(), DEFAULT_LAMBDA);
        assert_eq!(m.alpha(), DEFAULT_ALPHA);
    }

    #[test]
    fn defaults_sit_on_the_fig12_constraint() {
        assert_eq!(DEFAULT_MU + DEFAULT_LAMBDA, RATE_SUM);
    }

    #[test]
    fn default_hetero_model_is_the_uniform_embedding() {
        let h = default_hetero_model(4);
        let c = h.collapse_uniform().expect("uniform embedding collapses");
        assert_eq!(c, default_model());
    }

    #[test]
    fn default_tiered_model_is_a_three_level_waterfall() {
        let t = default_tiered_model(3);
        assert_eq!(t.servers(), 3);
        for s in 0..3u32 {
            let ladder = t.ladder(crate::ids::ServerId(s));
            assert_eq!(ladder.len(), 3);
            assert_eq!(ladder[0].capacity, DEFAULT_L1_SLOTS);
            assert_eq!(ladder[1].capacity, DEFAULT_L2_SLOTS);
            assert!(ladder[2].is_unbounded());
            // Faster tiers cost more per unit time.
            assert!(ladder[0].mu > ladder[1].mu && ladder[1].mu > ladder[2].mu);
        }
        assert_eq!(t.move_cost(), DEFAULT_MOVE_COST);
        assert_eq!(t.origin_fetch(), DEFAULT_ORIGIN_FETCH);
        // Multi-tier: deliberately not collapsible.
        assert!(t.collapse_homogeneous().is_none());
    }
}

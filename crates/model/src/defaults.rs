//! Workspace-wide default parameters.
//!
//! The paper's evaluation pins one canonical operating point — `μ = 2`,
//! `λ = 4` (the `ρ = 2` peak of Fig. 12 under `λ + μ = 6`), `α = 0.8`
//! and `θ = 0.3` — and every runner, bench, and CLI default should agree
//! on it. These constants are the single source of truth; re-declaring
//! them locally (the pre-engine state of `dpg.rs` and several experiment
//! runners) risks silent drift between figures.

use crate::cost::CostModel;

/// Default cache rate `μ` (Fig. 12's ρ = 2 operating point).
pub const DEFAULT_MU: f64 = 2.0;

/// Default transfer cost `λ` (Fig. 12's ρ = 2 operating point).
pub const DEFAULT_LAMBDA: f64 = 4.0;

/// Default package discount `α` (the paper's headline setting).
pub const DEFAULT_ALPHA: f64 = 0.8;

/// Default packing threshold `θ` (justified by the Fig. 11 sweep).
pub const DEFAULT_THETA: f64 = 0.3;

/// Default workload seed (the CLUSTER 2019 conference date; kept stable
/// so `EXPERIMENTS.md` numbers are reproducible).
pub const DEFAULT_SEED: u64 = 20190923;

/// The rate-sum constraint of the Fig. 12 sweep: `λ + μ = 6`.
pub const RATE_SUM: f64 = 6.0;

/// The default cost model assembled from the constants above.
pub fn default_model() -> CostModel {
    CostModel::new(DEFAULT_MU, DEFAULT_LAMBDA, DEFAULT_ALPHA).expect("default model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_the_constants() {
        let m = default_model();
        assert_eq!(m.mu(), DEFAULT_MU);
        assert_eq!(m.lambda(), DEFAULT_LAMBDA);
        assert_eq!(m.alpha(), DEFAULT_ALPHA);
    }

    #[test]
    fn defaults_sit_on_the_fig12_constraint() {
        assert_eq!(DEFAULT_MU + DEFAULT_LAMBDA, RATE_SUM);
    }
}

//! Minimal in-tree JSON: a value tree, a strict parser, compact and pretty
//! writers, and [`ToJson`]/[`FromJson`] conversion traits.
//!
//! The build environment resolves no external crates, so `serde_json`
//! cannot sit in the dependency graph; this module carries the small
//! subset the workspace needs — trace persistence (`mcs-trace::io`) and
//! experiment-result export (`mcs-experiments`). The on-disk shape matches
//! what the previous serde derives produced (objects keyed by field name,
//! transparent newtype ids), so existing trace/result files keep loading.
//!
//! Object keys preserve insertion order, numbers are `f64` (adequate for
//! costs, times, counts ≤ 2⁵³ and the `u64` seeds we store, which are
//! user-chosen small values — the writer round-trips integers exactly when
//! they fit the `f64` mantissa).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for conversion errors).
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (not parse-position) error.
    pub fn conv(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            at: 0,
        }
    }
}

/// 1-based `(line, column)` of byte offset `at` in `input`, for reporting
/// parse positions in a form editors understand. Offsets past the end
/// clamp to the final position; columns count bytes, which matches the
/// ASCII trace/checkpoint files this workspace writes.
#[must_use]
pub fn line_col(input: &str, at: usize) -> (usize, usize) {
    let at = at.min(input.len());
    let prefix = &input.as_bytes()[..at];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let line_start = prefix
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    (line, at - line_start + 1)
}

impl Json {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::conv(format!("missing field `{key}`")))
    }

    /// The number inside, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serialize as null like serde_json's lossy modes.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            msg: "trailing characters after document".into(),
            at: pos,
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(msg: &str, at: usize) -> JsonError {
    JsonError {
        msg: msg.into(),
        at,
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields: Vec<(String, Json)> = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err("expected `:`", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or_else(|| err("bad escape", *pos))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| err("non-utf8 \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(err("unknown escape", *pos - 1)),
                }
            }
            Some(&c) if c < 0x20 => return Err(err("control character in string", *pos)),
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let s =
                    std::str::from_utf8(&b[start..]).map_err(|_| err("invalid utf-8", start))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        b.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("bad number", start))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("bad number", start))
}

/// Conversion into [`Json`]. The replacement for `serde::Serialize` in this
/// workspace; implement by hand or through [`crate::impl_to_json!`].
pub trait ToJson {
    /// Converts `self` to a JSON value tree.
    fn to_json(&self) -> Json;
}

/// Conversion out of [`Json`]. The replacement for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, validating shape and ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::conv("expected number for f64"))
    }
}

macro_rules! impl_int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            /// Strict: rejects non-integers and values outside the target
            /// range (in particular, negatives for the unsigned kinds)
            /// instead of silently truncating through `as`.
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| JsonError::conv(concat!("expected number for ", stringify!($t))))?;
                if !n.is_finite() || n.fract() != 0.0 {
                    return Err(JsonError::conv(format!(
                        concat!("expected integer for ", stringify!($t), ", got {}"),
                        n
                    )));
                }
                // `MAX as f64` rounds *up* for the 64-bit kinds (2^63−1
                // and 2^64−1 are not representable), so the upper bound
                // must be exclusive there — otherwise exactly 2^63/2^64
                // would pass and saturate through `as`. A round-trip
                // check alone has the same blind spot: the saturated
                // MAX rounds back to exactly 2^63/2^64. For the 32-bit
                // kinds MAX is exact and inclusive is correct. MIN is
                // exactly representable for every kind (0 or −2^63).
                let in_range = if (<$t>::MAX as u128) < (1u128 << 53) {
                    n >= <$t>::MIN as f64 && n <= <$t>::MAX as f64
                } else {
                    n >= <$t>::MIN as f64 && n < <$t>::MAX as f64
                };
                if !in_range {
                    return Err(JsonError::conv(format!(
                        concat!("{} out of range for ", stringify!($t)),
                        n
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int_json!(u32, u64, usize, i64, i32);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::conv("expected bool")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::conv("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::conv("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Fixed-arity array lookup shared by the tuple [`FromJson`] impls.
fn tuple_elems<const N: usize>(v: &Json) -> Result<&[Json], JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError::conv(format!("expected {N}-element array")))?;
    if arr.len() != N {
        return Err(JsonError::conv(format!(
            "expected {N}-element array, got {}",
            arr.len()
        )));
    }
    Ok(arr)
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let arr = tuple_elems::<2>(v)?;
        Ok((A::from_json(&arr[0])?, B::from_json(&arr[1])?))
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let arr = tuple_elems::<3>(v)?;
        Ok((
            A::from_json(&arr[0])?,
            B::from_json(&arr[1])?,
            C::from_json(&arr[2])?,
        ))
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Derives [`ToJson`] for a struct with named public-to-the-macro fields:
///
/// ```ignore
/// impl_to_json!(Row { theta, cost, label });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

/// Derives both [`ToJson`] and [`FromJson`] for a struct whose fields all
/// implement the respective trait and are all required.
#[macro_export]
macro_rules! impl_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        $crate::impl_to_json!($ty { $($field),* });
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(v.field(stringify!($field))?)
                        .map_err(|e| $crate::json::JsonError::conv(
                            format!("field `{}`: {}", stringify!($field), e.msg)))?,)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.field("c").unwrap().as_str(), Some("x"));
        let arr = v.field("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = parse(r#"{"name":"dpg","xs":[1,2.5,-3],"flag":false,"none":null}"#).unwrap();
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(-0.1).to_string(), "-0.1");
        // Shortest-round-trip keeps full precision.
        let x = 0.1 + 0.2;
        assert_eq!(parse(&Json::Num(x).to_string()).unwrap(), Json::Num(x));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote\" slash\\ tab\t nl\n unicode é";
        let j = Json::Str(s.into());
        assert_eq!(parse(&j.to_string()).unwrap(), j);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        x: f64,
        n: u32,
        tag: String,
        seq: Vec<u32>,
        opt: Option<f64>,
    }
    impl_json!(Demo {
        x,
        n,
        tag,
        seq,
        opt
    });

    #[test]
    fn macro_derived_round_trip() {
        let d = Demo {
            x: 1.5,
            n: 7,
            tag: "hello".into(),
            seq: vec![1, 2, 3],
            opt: None,
        };
        let text = d.to_json().to_string_pretty();
        let back = Demo::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let v = parse(r#"{"x": 1}"#).unwrap();
        let e = Demo::from_json(&v).unwrap_err();
        assert!(e.msg.contains('n'), "{e}");
    }

    /// The integer kinds must reject what `as` would silently mangle:
    /// negatives into unsigned, fractions, and out-of-range magnitudes.
    #[test]
    fn integer_conversion_is_strict() {
        assert_eq!(u32::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert_eq!(i32::from_json(&Json::Num(-7.0)).unwrap(), -7);
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        assert!(u64::from_json(&Json::Num(-0.5)).is_err());
        assert!(usize::from_json(&Json::Num(2.5)).is_err());
        assert!(u32::from_json(&Json::Num(4.3e9)).is_err()); // > u32::MAX
        assert!(i32::from_json(&Json::Num(-3.0e9)).is_err()); // < i32::MIN
        assert!(u32::from_json(&Json::Num(f64::NAN)).is_err());
        assert!(u32::from_json(&Json::Str("7".into())).is_err());
        // f64 remains permissive: any number is a number.
        assert_eq!(f64::from_json(&Json::Num(2.5)).unwrap(), 2.5);
    }

    /// The 64-bit saturation boundary: exactly 2^63 (i64) and 2^64 (u64)
    /// are what `MAX as f64` rounds up to, so a naive `n > MAX as f64`
    /// check lets them slip through and saturate to MAX via `as`.
    #[test]
    fn integer_conversion_rejects_the_saturating_boundary() {
        let two63 = 9_223_372_036_854_775_808.0_f64; // 2^63
        let two64 = 18_446_744_073_709_551_616.0_f64; // 2^64
        assert!(i64::from_json(&Json::Num(two63)).is_err());
        assert!(u64::from_json(&Json::Num(two64)).is_err());
        assert!(usize::from_json(&Json::Num(two64)).is_err());
        assert!(u64::from_json(&Json::Num(two64 * 2.0)).is_err());
        // The nearest valid values on either side still pass exactly.
        assert_eq!(i64::from_json(&Json::Num(-two63)).unwrap(), i64::MIN);
        assert_eq!(
            i64::from_json(&Json::Num(9_223_372_036_854_774_784.0)).unwrap(),
            9_223_372_036_854_774_784 // largest f64 below 2^63
        );
        assert_eq!(
            u64::from_json(&Json::Num(18_446_744_073_709_549_568.0)).unwrap(),
            18_446_744_073_709_549_568 // largest f64 below 2^64
        );
        // 32-bit MAX is exactly representable and must stay accepted.
        assert_eq!(
            u32::from_json(&Json::Num(4_294_967_295.0)).unwrap(),
            u32::MAX
        );
        assert!(u32::from_json(&Json::Num(4_294_967_296.0)).is_err());
    }

    #[test]
    fn line_col_locates_byte_offsets() {
        let text = "ab\ncd\n\nefg";
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 1), (1, 2));
        assert_eq!(line_col(text, 3), (2, 1));
        assert_eq!(line_col(text, 6), (3, 1));
        assert_eq!(line_col(text, 9), (4, 3));
        assert_eq!(line_col(text, 999), (4, 4)); // clamped past the end
    }
}

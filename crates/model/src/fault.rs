//! Fault vocabulary: crash windows and seeded fault plans.
//!
//! The paper's model is an idealized fleet — servers never crash and
//! transfers never fail. A [`FaultPlan`] describes the ways a real fleet
//! deviates from that ideal:
//!
//! * **Crash windows** — half-open time spans during which a server is
//!   down. A copy cached on a server is *lost* the instant a crash window
//!   opens; recovery restores the server's ability to hold copies and to
//!   serve transfers, but not the lost copies themselves.
//! * **Transfer failures** — each transfer attempt independently fails
//!   with probability `transfer_failure_prob`; a failed attempt still
//!   costs the transfer rate `λ` (the bytes moved before the connection
//!   died are paid for).
//! * **Transfer latency** — a fixed extra delay per attempt, used by the
//!   degraded replay to measure time-to-repair.
//!
//! The origin server `s1` is special: it fronts the cloud backing store,
//! so a fetch *from the origin* always succeeds (at ordinary transfer
//! cost) even while `s1`'s cache is crashed. This mirrors production
//! systems where the origin is a durable service, not a cache replica.
//!
//! Every random decision is derived *statelessly* from the plan's seed
//! and the event's coordinates (see [`FaultPlan::transfer_fails`]), so
//! the same plan gives the same faults regardless of the order in which
//! the simulator asks.

use crate::ids::ServerId;
use crate::rng::{mix64, u64_to_f64, Rng};
use crate::time::{TimePoint, TimeSpan};

/// A span during which one server is down.
///
/// Use [`TimePoint`] infinity for `span.end` to model a permanent crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashed server.
    pub server: ServerId,
    /// When it is down (half-open `[start, end)`).
    pub span: TimeSpan,
}

impl CrashWindow {
    /// A crash that never recovers.
    #[must_use]
    pub fn permanent(server: ServerId, from: TimePoint) -> Self {
        CrashWindow {
            server,
            span: TimeSpan::new(from, f64::INFINITY),
        }
    }
}

/// A deterministic, seedable description of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the stateless per-event fault draws.
    pub seed: u64,
    /// When which servers are down.
    pub crashes: Vec<CrashWindow>,
    /// Probability each transfer attempt fails (clamped to `[0, 1]`).
    pub transfer_failure_prob: f64,
    /// Extra latency charged to each transfer attempt (time units).
    pub transfer_latency: f64,
    /// Retry budget per transfer before falling back to the origin.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no crashes, no failures — degraded replay under
    /// this plan must match plain replay bit-for-bit.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            transfer_failure_prob: 0.0,
            transfer_latency: 0.0,
            max_retries: 3,
        }
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.transfer_failure_prob <= 0.0
    }

    /// Crashes every non-origin server permanently from time zero.
    ///
    /// Under this plan every cached copy outside `s1` dies instantly, so
    /// any schedule degrades to fetching each request from the origin —
    /// the `n·λ` upper bound used by the acceptance tests.
    #[must_use]
    pub fn total_blackout(servers: u32) -> Self {
        let mut plan = FaultPlan::none();
        plan.crashes = (1..servers)
            .map(|s| CrashWindow::permanent(ServerId(s), 0.0))
            .collect();
        plan
    }

    /// Samples a random plan: each non-origin server suffers crash
    /// windows at the given rate (expected crashes per unit time per
    /// server) over `[0, horizon)`, each lasting `mean_outage` on
    /// average, and transfers fail with `failure_prob`.
    #[must_use]
    pub fn random(
        seed: u64,
        servers: u32,
        horizon: TimePoint,
        crash_rate: f64,
        mean_outage: f64,
        failure_prob: f64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut crashes = Vec::new();
        for s in 1..servers {
            // Poisson process via exponential inter-arrival times.
            let mut t = 0.0;
            loop {
                t += exponential(&mut rng, crash_rate);
                if t >= horizon || t.is_nan() {
                    break;
                }
                let outage = exponential(&mut rng, 1.0 / mean_outage.max(1e-12));
                crashes.push(CrashWindow {
                    server: ServerId(s),
                    span: TimeSpan::new(t, t + outage),
                });
                t += outage;
            }
        }
        FaultPlan {
            seed,
            crashes,
            transfer_failure_prob: failure_prob,
            transfer_latency: 0.0,
            max_retries: 3,
        }
    }

    /// Is `server`'s cache down at time `t`?
    ///
    /// Note the origin's *backing store* never goes down even when its
    /// cache does; callers fetch via [`FaultPlan::transfer_fails`] with
    /// the origin as source, which always succeeds.
    #[must_use]
    pub fn is_down(&self, server: ServerId, t: TimePoint) -> bool {
        self.crashes
            .iter()
            .any(|c| c.server == server && c.span.start <= t && t < c.span.end)
    }

    /// The first crash-window start in `(t, end]` that kills a copy
    /// living on `server` through `[t, end)`, if any.
    #[must_use]
    pub fn first_crash_in(
        &self,
        server: ServerId,
        t: TimePoint,
        end: TimePoint,
    ) -> Option<TimePoint> {
        self.crashes
            .iter()
            .filter(|c| c.server == server && c.span.start >= t && c.span.start < end)
            .map(|c| c.span.start)
            .min_by(f64::total_cmp)
    }

    /// Does transfer attempt `attempt` of the transfer identified by
    /// `(from, to, time)` fail?
    ///
    /// The draw is a pure function of the plan seed and the event
    /// coordinates, so replaying events in any order gives identical
    /// faults. Fetches *from the origin* never fail (durable store).
    #[must_use]
    pub fn transfer_fails(
        &self,
        from: ServerId,
        to: ServerId,
        time: TimePoint,
        attempt: u32,
    ) -> bool {
        if self.transfer_failure_prob <= 0.0 || from == ServerId::ORIGIN {
            return false;
        }
        let mut h = mix64(self.seed ^ 0x7255_4E5F_4641_554C);
        h = mix64(h ^ u64::from(from.0));
        h = mix64(h ^ (u64::from(to.0) << 32));
        h = mix64(h ^ time.to_bits());
        h = mix64(h ^ u64::from(attempt));
        u64_to_f64(h) < self.transfer_failure_prob.min(1.0)
    }
}

/// Exponential draw with the given rate (mean `1/rate`).
fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let u = 1.0 - rng.gen_f64(); // in (0, 1]
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_faultless() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.is_down(ServerId(2), 5.0));
        assert!(!p.transfer_fails(ServerId(1), ServerId(2), 3.0, 0));
    }

    #[test]
    fn crash_windows_are_half_open() {
        let mut p = FaultPlan::none();
        p.crashes.push(CrashWindow {
            server: ServerId(1),
            span: TimeSpan::new(2.0, 5.0),
        });
        assert!(!p.is_down(ServerId(1), 1.9));
        assert!(p.is_down(ServerId(1), 2.0));
        assert!(p.is_down(ServerId(1), 4.99));
        assert!(!p.is_down(ServerId(1), 5.0));
        assert!(!p.is_down(ServerId(2), 3.0));
    }

    #[test]
    fn total_blackout_spares_only_the_origin() {
        let p = FaultPlan::total_blackout(4);
        assert!(!p.is_down(ServerId::ORIGIN, 10.0));
        for s in 1..4 {
            assert!(p.is_down(ServerId(s), 0.0));
            assert!(p.is_down(ServerId(s), 1e9));
        }
    }

    #[test]
    fn transfer_draws_are_order_independent_and_seeded() {
        let mut p = FaultPlan::none();
        p.transfer_failure_prob = 0.5;
        p.seed = 99;
        let a = p.transfer_fails(ServerId(1), ServerId(2), 3.25, 0);
        let b = p.transfer_fails(ServerId(2), ServerId(3), 7.5, 1);
        // Re-asking in reverse order gives the same answers.
        assert_eq!(p.transfer_fails(ServerId(2), ServerId(3), 7.5, 1), b);
        assert_eq!(p.transfer_fails(ServerId(1), ServerId(2), 3.25, 0), a);
        // A different seed flips at least one draw across many events.
        let mut q = p.clone();
        q.seed = 100;
        let flips = (0..64)
            .filter(|&i| {
                let t = f64::from(i) * 0.5;
                p.transfer_fails(ServerId(1), ServerId(2), t, 0)
                    != q.transfer_fails(ServerId(1), ServerId(2), t, 0)
            })
            .count();
        assert!(flips > 0);
    }

    #[test]
    fn origin_fetches_never_fail() {
        let mut p = FaultPlan::none();
        p.transfer_failure_prob = 1.0;
        for i in 0..32 {
            assert!(!p.transfer_fails(ServerId::ORIGIN, ServerId(2), f64::from(i), 0));
            assert!(p.transfer_fails(ServerId(1), ServerId(2), f64::from(i), 0));
        }
    }

    #[test]
    fn transfer_failure_frequency_tracks_probability() {
        let mut p = FaultPlan::none();
        p.transfer_failure_prob = 0.3;
        p.seed = 7;
        let fails = (0..10_000)
            .filter(|&i| p.transfer_fails(ServerId(1), ServerId(2), f64::from(i) * 0.1, 0))
            .count();
        assert!((2500..3500).contains(&fails), "p=0.3 gave {fails}/10000");
    }

    #[test]
    fn random_plan_is_deterministic_and_respects_horizon() {
        let a = FaultPlan::random(5, 4, 100.0, 0.05, 2.0, 0.1);
        let b = FaultPlan::random(5, 4, 100.0, 0.05, 2.0, 0.1);
        assert_eq!(a, b);
        assert!(
            !a.crashes.is_empty(),
            "expected some crashes at rate 0.05 over 100 time units"
        );
        for c in &a.crashes {
            assert!(c.span.start < 100.0);
            assert_ne!(c.server, ServerId::ORIGIN);
            assert!(c.span.end > c.span.start);
        }
        let c = FaultPlan::random(6, 4, 100.0, 0.05, 2.0, 0.1);
        assert_ne!(a, c);
    }

    #[test]
    fn first_crash_in_finds_the_earliest_overlap() {
        let mut p = FaultPlan::none();
        p.crashes.push(CrashWindow {
            server: ServerId(2),
            span: TimeSpan::new(4.0, 6.0),
        });
        p.crashes.push(CrashWindow {
            server: ServerId(2),
            span: TimeSpan::new(1.5, 2.0),
        });
        assert_eq!(p.first_crash_in(ServerId(2), 1.0, 10.0), Some(1.5));
        assert_eq!(p.first_crash_in(ServerId(2), 3.0, 10.0), Some(4.0));
        assert_eq!(p.first_crash_in(ServerId(2), 7.0, 10.0), None);
        assert_eq!(p.first_crash_in(ServerId(3), 0.0, 10.0), None);
    }
}

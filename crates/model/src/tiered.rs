//! Tiered heterogeneous cost model — per-server L1/L2/L3 storage
//! waterfalls priced in the paper's monetary terms.
//!
//! ROADMAP item 2 generalises the homogeneous [`crate::CostModel`] in two
//! directions at once: per-server/per-link rates (already covered by
//! [`crate::HeteroCostModel`]) and *tiered* storage per server — a small
//! fast tier in front of progressively larger, slower ones (RAM / SSD /
//! remote). [`TieredCostModel`] is that second direction:
//!
//! * each server owns an ordered list of [`StorageTier`]s, top (L1,
//!   served) first, each with a slot `capacity` (`0` = unbounded) and a
//!   caching rate `μ_s^ℓ` per resident copy per unit time;
//! * moving a copy one tier up or down inside a server costs
//!   [`move_cost`](TieredCostModel::move_cost) per level crossed
//!   (promotion on hit, demotion on overflow);
//! * fetching across servers costs the symmetric `λ_{st}` matrix, and
//!   fetching from the backing origin store costs
//!   [`origin_fetch`](TieredCostModel::origin_fetch);
//! * the package discount `α` is carried for parity with the other
//!   shapes.
//!
//! The homogeneous model is the pinned special case:
//! [`TieredCostModel::uniform_single_tier`] builds one unbounded tier per
//! server at rate `μ`, zero move cost, and `origin_fetch = λ`, and
//! [`TieredCostModel::collapse_homogeneous`] recovers the original
//! [`crate::CostModel`] *bitwise* from exactly that shape — the collapse
//! guarantee `tests/cost_plane.rs` pins.

use crate::cost::CostModel;
use crate::error::ModelError;
use crate::ids::ServerId;

/// One storage level of a server's waterfall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageTier {
    /// Item slots at this level; `0` means unbounded (the deepest tier of
    /// a cost-oriented server, where capacity is "virtually infinite as
    /// long as user can afford it").
    pub capacity: u32,
    /// Caching rate `μ_s^ℓ` per resident copy per unit time.
    pub mu: f64,
}

crate::impl_json!(StorageTier { capacity, mu });

impl StorageTier {
    /// An unbounded tier at rate `mu`.
    pub fn unbounded(mu: f64) -> Self {
        StorageTier { capacity: 0, mu }
    }

    /// A bounded tier with `capacity` slots at rate `mu`.
    pub fn bounded(capacity: u32, mu: f64) -> Self {
        StorageTier { capacity, mu }
    }

    /// True when the tier holds any number of copies.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.capacity == 0
    }
}

/// Per-server tiered cost model (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TieredCostModel {
    /// Per-server waterfalls, top (L1) first.
    tiers: Vec<Vec<StorageTier>>,
    /// `λ_{st}` — symmetric cross-server transfer matrix, row-major
    /// `m×m`, zero diagonal.
    lambda: Vec<f64>,
    /// Cost of moving a copy one tier level inside a server.
    move_cost: f64,
    /// Cost of fetching a copy from the backing origin store.
    origin_fetch: f64,
    /// Package discount factor `α ∈ (0, 1]`.
    alpha: f64,
    servers: u32,
}

impl TieredCostModel {
    /// Validates and builds a tiered model.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCostModel`] when a server has no tiers, any
    /// `μ_s^ℓ` is non-finite or non-positive, the λ matrix is misshapen,
    /// asymmetric or has a non-zero diagonal, `move_cost` is negative or
    /// non-finite, `origin_fetch` is non-positive or non-finite, or
    /// `α ∉ (0, 1]`.
    pub fn new(
        tiers: Vec<Vec<StorageTier>>,
        lambda: Vec<f64>,
        move_cost: f64,
        origin_fetch: f64,
        alpha: f64,
    ) -> Result<Self, ModelError> {
        let m = tiers.len();
        if m == 0 {
            return Err(ModelError::InvalidCostModel {
                what: "need at least one server",
            });
        }
        for ladder in &tiers {
            if ladder.is_empty() {
                return Err(ModelError::InvalidCostModel {
                    what: "every server needs at least one storage tier",
                });
            }
            for tier in ladder {
                if !(tier.mu.is_finite() && tier.mu > 0.0) {
                    return Err(ModelError::InvalidCostModel {
                        what: "every tier μ must be finite and positive",
                    });
                }
            }
        }
        if lambda.len() != m * m {
            return Err(ModelError::InvalidCostModel {
                what: "λ matrix must be m×m",
            });
        }
        for i in 0..m {
            for j in 0..m {
                let v = lambda[i * m + j];
                if i == j {
                    if v != 0.0 {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ diagonal must be zero",
                        });
                    }
                } else {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(ModelError::InvalidCostModel {
                            what: "every off-diagonal λ must be finite and positive",
                        });
                    }
                    if (v - lambda[j * m + i]).abs() > crate::time::EPSILON {
                        return Err(ModelError::InvalidCostModel {
                            what: "λ matrix must be symmetric",
                        });
                    }
                }
            }
        }
        if !(move_cost.is_finite() && move_cost >= 0.0) {
            return Err(ModelError::InvalidCostModel {
                what: "move_cost must be finite and non-negative",
            });
        }
        if !(origin_fetch.is_finite() && origin_fetch > 0.0) {
            return Err(ModelError::InvalidCostModel {
                what: "origin_fetch must be finite and positive",
            });
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(ModelError::InvalidCostModel {
                what: "α must lie in (0, 1]",
            });
        }
        Ok(TieredCostModel {
            tiers,
            lambda,
            move_cost,
            origin_fetch,
            alpha,
            servers: m as u32,
        })
    }

    /// Embeds a homogeneous `(μ, λ, α)` model: one unbounded tier per
    /// server at rate `μ`, zero move cost, `origin_fetch = λ`. The exact
    /// inverse of [`Self::collapse_homogeneous`].
    pub fn uniform_single_tier(
        m: u32,
        mu: f64,
        lambda: f64,
        alpha: f64,
    ) -> Result<Self, ModelError> {
        let msize = m as usize;
        let mut lam = vec![lambda; msize * msize];
        for i in 0..msize {
            lam[i * msize + i] = 0.0;
        }
        Self::new(
            vec![vec![StorageTier::unbounded(mu)]; msize],
            lam,
            0.0,
            lambda,
            alpha,
        )
    }

    /// Number of servers `m`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// The storage waterfall of server `s`, top (L1) first.
    #[inline]
    pub fn ladder(&self, s: ServerId) -> &[StorageTier] {
        &self.tiers[s.index()]
    }

    /// All per-server waterfalls, indexed by server.
    #[inline]
    pub fn ladders(&self) -> &[Vec<StorageTier>] {
        &self.tiers
    }

    /// Cross-server transfer cost between `a` and `b` (zero when equal).
    #[inline]
    pub fn lambda(&self, a: ServerId, b: ServerId) -> f64 {
        self.lambda[a.index() * self.servers as usize + b.index()]
    }

    /// The raw row-major λ matrix.
    #[inline]
    pub fn lambda_matrix(&self) -> &[f64] {
        &self.lambda
    }

    /// Cost of moving a copy one tier level inside a server.
    #[inline]
    pub fn move_cost(&self) -> f64 {
        self.move_cost
    }

    /// Cost of fetching a copy from the backing origin store.
    #[inline]
    pub fn origin_fetch(&self) -> f64 {
        self.origin_fetch
    }

    /// Discount factor `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when every server's waterfall is exactly one unbounded tier —
    /// the shape that is expressible as a [`crate::HeteroCostModel`].
    pub fn is_single_unbounded_tier(&self) -> bool {
        self.tiers
            .iter()
            .all(|ladder| ladder.len() == 1 && ladder[0].is_unbounded())
    }

    /// Recovers the homogeneous [`CostModel`] when this model is exactly
    /// a [`Self::uniform_single_tier`] embedding: one unbounded tier per
    /// server, all tier rates *bitwise* equal, all off-diagonal λ bitwise
    /// equal, zero move cost, and `origin_fetch` bitwise equal to λ.
    /// Bitwise (not approximate) equality is what makes the collapse a
    /// byte-identity guarantee rather than a numerical coincidence.
    pub fn collapse_homogeneous(&self) -> Option<CostModel> {
        if !self.is_single_unbounded_tier() {
            return None;
        }
        let m = self.servers as usize;
        if m < 2 {
            // A single server has no off-diagonal λ to recover.
            return None;
        }
        let mu = self.tiers[0][0].mu;
        if !self
            .tiers
            .iter()
            .all(|ladder| ladder[0].mu.to_bits() == mu.to_bits())
        {
            return None;
        }
        let lambda = self.lambda[1];
        for i in 0..m {
            for j in 0..m {
                if i != j && self.lambda[i * m + j].to_bits() != lambda.to_bits() {
                    return None;
                }
            }
        }
        if self.move_cost != 0.0 || self.origin_fetch.to_bits() != lambda.to_bits() {
            return None;
        }
        CostModel::new(mu, lambda, self.alpha).ok()
    }
}

crate::impl_to_json!(TieredCostModel {
    tiers,
    lambda,
    move_cost,
    origin_fetch,
    alpha
});

impl crate::json::FromJson for TieredCostModel {
    fn from_json(v: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        // Route through the validating constructor so corrupt files
        // cannot smuggle in a misshapen matrix or negative rate.
        let tiers = Vec::<Vec<StorageTier>>::from_json(v.field("tiers")?)?;
        let lambda = Vec::<f64>::from_json(v.field("lambda")?)?;
        let move_cost = f64::from_json(v.field("move_cost")?)?;
        let origin_fetch = f64::from_json(v.field("origin_fetch")?)?;
        let alpha = f64::from_json(v.field("alpha")?)?;
        TieredCostModel::new(tiers, lambda, move_cost, origin_fetch, alpha)
            .map_err(|e| crate::json::JsonError::conv(format!("invalid cost model: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, FromJson, ToJson};

    fn three_tier() -> TieredCostModel {
        TieredCostModel::new(
            vec![
                vec![
                    StorageTier::bounded(2, 4.0),
                    StorageTier::bounded(4, 2.0),
                    StorageTier::unbounded(0.5),
                ];
                2
            ],
            vec![0.0, 4.0, 4.0, 0.0],
            1.0,
            8.0,
            0.8,
        )
        .unwrap()
    }

    #[test]
    fn uniform_single_tier_collapses_bitwise() {
        let t = TieredCostModel::uniform_single_tier(4, 2.0, 4.0, 0.8).unwrap();
        assert!(t.is_single_unbounded_tier());
        let c = t.collapse_homogeneous().unwrap();
        assert_eq!(c.mu().to_bits(), 2.0f64.to_bits());
        assert_eq!(c.lambda().to_bits(), 4.0f64.to_bits());
        assert_eq!(c.alpha().to_bits(), 0.8f64.to_bits());
    }

    #[test]
    fn non_uniform_shapes_do_not_collapse() {
        // Multi-tier ladders.
        assert!(three_tier().collapse_homogeneous().is_none());
        // Non-zero move cost.
        let t = TieredCostModel::new(
            vec![vec![StorageTier::unbounded(2.0)]; 2],
            vec![0.0, 4.0, 4.0, 0.0],
            0.5,
            4.0,
            0.8,
        )
        .unwrap();
        assert!(t.collapse_homogeneous().is_none());
        // origin_fetch diverging from λ.
        let t = TieredCostModel::new(
            vec![vec![StorageTier::unbounded(2.0)]; 2],
            vec![0.0, 4.0, 4.0, 0.0],
            0.0,
            5.0,
            0.8,
        )
        .unwrap();
        assert!(t.collapse_homogeneous().is_none());
        // Per-server μ spread.
        let t = TieredCostModel::new(
            vec![
                vec![StorageTier::unbounded(2.0)],
                vec![StorageTier::unbounded(3.0)],
            ],
            vec![0.0, 4.0, 4.0, 0.0],
            0.0,
            4.0,
            0.8,
        )
        .unwrap();
        assert!(t.collapse_homogeneous().is_none());
        // A lone server has no λ to recover.
        let t = TieredCostModel::new(
            vec![vec![StorageTier::unbounded(2.0)]],
            vec![0.0],
            0.0,
            4.0,
            0.8,
        )
        .unwrap();
        assert!(t.collapse_homogeneous().is_none());
    }

    #[test]
    fn rejects_malformed_models() {
        // No servers.
        assert!(TieredCostModel::new(vec![], vec![], 0.0, 1.0, 0.8).is_err());
        // A server with no tiers.
        assert!(TieredCostModel::new(vec![vec![]], vec![0.0], 0.0, 1.0, 0.8).is_err());
        // Non-positive tier rate.
        assert!(TieredCostModel::new(
            vec![vec![StorageTier::unbounded(0.0)]],
            vec![0.0],
            0.0,
            1.0,
            0.8
        )
        .is_err());
        // Misshapen λ.
        assert!(TieredCostModel::new(
            vec![vec![StorageTier::unbounded(1.0)]; 2],
            vec![0.0],
            0.0,
            1.0,
            0.8
        )
        .is_err());
        // Asymmetric λ.
        assert!(TieredCostModel::new(
            vec![vec![StorageTier::unbounded(1.0)]; 2],
            vec![0.0, 2.0, 3.0, 0.0],
            0.0,
            1.0,
            0.8
        )
        .is_err());
        // Negative move cost.
        assert!(TieredCostModel::new(
            vec![vec![StorageTier::unbounded(1.0)]; 2],
            vec![0.0, 2.0, 2.0, 0.0],
            -1.0,
            1.0,
            0.8
        )
        .is_err());
        // Non-positive origin fetch.
        assert!(TieredCostModel::new(
            vec![vec![StorageTier::unbounded(1.0)]; 2],
            vec![0.0, 2.0, 2.0, 0.0],
            0.0,
            0.0,
            0.8
        )
        .is_err());
        // Bad alpha.
        assert!(TieredCostModel::uniform_single_tier(2, 1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn accessors_read_back_the_ladder() {
        let t = three_tier();
        assert_eq!(t.servers(), 2);
        let ladder = t.ladder(ServerId(1));
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].capacity, 2);
        assert!(ladder[2].is_unbounded());
        assert_eq!(t.lambda(ServerId(0), ServerId(1)), 4.0);
        assert_eq!(t.lambda(ServerId(1), ServerId(1)), 0.0);
        assert_eq!(t.move_cost(), 1.0);
        assert_eq!(t.origin_fetch(), 8.0);
    }

    #[test]
    fn json_round_trip_validates_on_load() {
        let t = three_tier();
        let j = t.to_json().to_string();
        let back = TieredCostModel::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(t, back);
        // Validation runs on load: a negative tier rate is rejected.
        let bad = parse(
            r#"{"tiers": [[{"capacity": 0, "mu": -1.0}]], "lambda": [0.0],
                "move_cost": 0.0, "origin_fetch": 1.0, "alpha": 0.8}"#,
        )
        .unwrap();
        assert!(TieredCostModel::from_json(&bad).is_err());
    }
}

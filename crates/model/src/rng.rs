//! In-tree deterministic pseudo-random number generation.
//!
//! The build environment has no network access, so the workspace cannot
//! depend on the `rand` ecosystem. This module provides the small slice of
//! it we actually use: a seedable, portable, fast PRNG
//! (xoshiro256\*\* seeded through SplitMix64 — the reference construction
//! of Blackman & Vigna) with `f64`/range/Bernoulli helpers, plus a
//! stateless [`mix64`] finalizer for order-independent per-event draws
//! (used by the fault-injection layer).
//!
//! Determinism contract: the same seed always produces the same stream on
//! every platform (only shifts, xors, multiplies on `u64`), and the stream
//! is independent of `HashMap` iteration order or thread scheduling.

/// SplitMix64 finalizer: a high-quality stateless mixing of a `u64`.
///
/// Used both to seed the generator state and, on its own, to derive
/// order-independent decision values from event coordinates (e.g. "does
/// transfer attempt #a at time-bits t fail?") without threading a
/// sequential stream through them.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` to a `f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
#[must_use]
pub fn u64_to_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seedable xoshiro256\*\* generator.
///
/// Drop-in replacement for the `ChaCha12Rng` usage this workspace had:
/// construct with [`Rng::seed_from_u64`], then draw with [`Rng::gen_f64`],
/// [`Rng::gen_range`] or [`Rng::gen_bool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator deterministically from a single `u64` by
    /// running SplitMix64 four times (the construction recommended by the
    /// xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = mix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        // All-zero state is the one forbidden state; mix64(0)≠0 for at
        // least one of four SplitMix64 outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Rng { s: [1, 2, 3, 4] };
        }
        Rng { s }
    }

    /// The next raw 64-bit output (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        u64_to_f64(self.next_u64())
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in the given range (half-open `lo..hi` or inclusive
    /// `lo..=hi`), for any primitive unsigned integer kind used in the
    /// workspace.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: RangeInt, R: std::ops::RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&v) => v.as_u64(),
            std::ops::Bound::Excluded(&v) => v.as_u64() + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&v) => v.as_u64() + 1,
            std::ops::Bound::Excluded(&v) => v.as_u64(),
            std::ops::Bound::Unbounded => u64::MAX,
        };
        assert!(hi > lo, "gen_range called with an empty range");
        let span = hi - lo;
        // Modulo draw: bias is < 2^-40 for every span used here and
        // determinism, not statistical perfection, is the requirement.
        T::from_u64(lo + self.next_u64() % span)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=(i as u64)) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len() as u64) as usize])
        }
    }
}

/// Integer kinds [`Rng::gen_range`] can sample.
pub trait RangeInt: Copy {
    /// Widens to `u64`.
    fn as_u64(self) -> u64;
    /// Narrows from `u64` (caller guarantees the value fits).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn as_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut r = Rng::seed_from_u64(7);
        let mut lo = 1.0_f64;
        let mut hi = 0.0_f64;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01, "min {lo} suspiciously high");
        assert!(hi > 0.99, "max {hi} suspiciously low");
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_endpoints() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: u32 = r.gen_range(2..7);
            assert!((2..7).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        for _ in 0..100 {
            let v: usize = r.gen_range(1..=3);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _: u32 = r.gen_range(5..5);
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input untouched");
    }

    #[test]
    fn mix64_is_stable() {
        // Pin known values so cross-platform drift would be caught.
        assert_eq!(mix64(0), 16294208416658607535);
        assert_eq!(mix64(1), 10451216379200822465);
        assert_eq!(mix64(0xDEAD_BEEF), 5395234354446855067);
    }

    #[test]
    fn choose_picks_members() {
        let mut r = Rng::seed_from_u64(9);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(r.choose(&v).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(r.choose(&empty).is_none());
    }
}

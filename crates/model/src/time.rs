//! Time points and tolerant floating-point comparisons.
//!
//! Request times in the paper are continuous (e.g. the running example uses
//! `t = 0.5, 0.8, 1.1, 1.4, 2.6, 3.2, 4.0`), so we model time as `f64`.
//! All comparisons that decide *cost equality* go through the tolerant
//! helpers in this module so that algebraically identical schedules compare
//! equal regardless of summation order.

/// A point on the global time line. Finite and non-negative by construction
/// wherever a [`crate::RequestSeqBuilder`] is used.
pub type TimePoint = f64;

/// Absolute tolerance used for cost and time comparisons throughout the
/// workspace.
///
/// Costs in this problem are short sums/products of user-supplied constants
/// (`μ`, `λ`, `α`) and request times, so accumulated error is far below this
/// threshold while genuinely different schedules differ by at least one
/// cache-second or transfer.
pub const EPSILON: f64 = 1e-9;

/// `a == b` up to [`EPSILON`] (absolute) or a relative tolerance for large
/// magnitudes.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPSILON || diff <= EPSILON * a.abs().max(b.abs())
}

/// `a <= b` up to [`EPSILON`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPSILON || approx_eq(a, b)
}

/// Total order on `f64` suitable for sorting times and costs.
///
/// Panics in debug builds if either value is NaN; NaN never enters the
/// system through validated constructors.
#[inline]
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    debug_assert!(!a.is_nan() && !b.is_nan(), "NaN reached a comparison");
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// A half-open or closed span of time `[start, end]` with `start <= end`.
///
/// Used for cache intervals; zero-length spans are permitted (a transient
/// copy delivered by a transfer and immediately destroyed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSpan {
    /// Beginning of the span.
    pub start: TimePoint,
    /// End of the span; `end >= start`.
    pub end: TimePoint,
}

crate::impl_json!(TimeSpan { start, end });

impl TimeSpan {
    /// Creates a span, panicking if `end < start` beyond tolerance.
    #[inline]
    pub fn new(start: TimePoint, end: TimePoint) -> Self {
        assert!(
            approx_le(start, end),
            "TimeSpan end {end} precedes start {start}"
        );
        TimeSpan { start, end }
    }

    /// Span length, clamped to be non-negative.
    #[inline]
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// True if the span has (approximately) zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        approx_eq(self.start, self.end)
    }

    /// True if `t` lies within `[start, end]`, tolerantly at the endpoints.
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        approx_le(self.start, t) && approx_le(t, self.end)
    }

    /// True if the two spans overlap in more than a single point.
    #[inline]
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        self.start < other.end - EPSILON && other.start < self.end - EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_roundoff() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.1, 0.2));
        assert!(approx_eq(1.0e12 + 0.0001, 1.0e12));
    }

    #[test]
    fn approx_le_is_reflexive_and_tolerant() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_le(0.9, 1.0));
        assert!(!approx_le(1.1, 1.0));
    }

    #[test]
    fn span_basics() {
        let s = TimeSpan::new(0.5, 2.6);
        assert!(approx_eq(s.len(), 2.1));
        assert!(s.contains(0.5));
        assert!(s.contains(2.6));
        assert!(s.contains(1.0));
        assert!(!s.contains(2.7));
        assert!(!s.is_empty());
        assert!(TimeSpan::new(1.0, 1.0).is_empty());
    }

    #[test]
    fn span_overlap_excludes_touching() {
        let a = TimeSpan::new(0.0, 1.0);
        let b = TimeSpan::new(1.0, 2.0);
        let c = TimeSpan::new(0.5, 1.5);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_reversed() {
        let _ = TimeSpan::new(2.0, 1.0);
    }

    #[test]
    fn total_cmp_sorts() {
        let mut v = vec![2.6, 0.5, 1.4, 0.8];
        v.sort_by(|a, b| total_cmp(*a, *b));
        assert_eq!(v, vec![0.5, 0.8, 1.4, 2.6]);
    }
}

//! # mcs-model — domain model for cost-driven mobile-cloud caching
//!
//! This crate defines the vocabulary shared by every other crate in the
//! DP_Greedy reproduction:
//!
//! * [`ItemId`] / [`ServerId`] — strongly-typed identifiers.
//! * [`Request`] / [`RequestSeq`] — the spatial-temporal request trajectory
//!   `r_i = <s_i, t_i, D_i>` of the paper (Section III-A), with a validating
//!   builder that enforces the standard assumptions (strictly increasing
//!   request times, at most one request per time instance, non-empty item
//!   sets, server indices in range).
//! * [`CostModel`] — the homogeneous cost model (Section III-B): caching at
//!   `μ` per copy per unit time, transfers at `λ` between any server pair,
//!   and the package discount `α` of Table II (`k` packed items cache at
//!   `αkμ` and transfer at `αkλ`).
//! * [`Schedule`] — an explicit space-time schedule (cache intervals plus
//!   transfers, Fig. 1/2 of the paper) together with an *independent*
//!   feasibility checker and cost accountant, used to cross-validate every
//!   algorithm in the workspace.
//! * [`diagram`] — ASCII renderings of space-time diagrams for debugging
//!   and documentation.
//!
//! Everything here is pure, deterministic, `Send + Sync` data; no
//! interior mutability and no floating-point environment dependence beyond
//! ordinary IEEE-754 arithmetic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod defaults;
pub mod diagram;
pub mod error;
pub mod fault;
pub mod hetero;
pub mod ids;
pub mod json;
pub mod par;
pub mod plane;
mod proptests;
pub mod request;
pub mod rng;
pub mod schedule;
pub mod svg;
pub mod tiered;
pub mod time;

pub use cost::{CostModel, CostModelBuilder, PACKAGE_PAIR};
pub use error::ModelError;
pub use fault::{CrashWindow, FaultPlan};
pub use hetero::{HeteroCostModel, HeteroCostModelBuilder};
pub use ids::{ItemId, ServerId};
pub use plane::CostPlane;
pub use request::{Request, RequestSeq, RequestSeqBuilder};
pub use schedule::{CacheInterval, Schedule, ScheduleCost, Transfer};
pub use tiered::{StorageTier, TieredCostModel};
pub use time::{approx_eq, approx_le, TimePoint, EPSILON};

//! Error types shared by the model crate's validating constructors.

use crate::ids::{ItemId, ServerId};
use crate::time::TimePoint;

/// Validation failures raised by [`crate::RequestSeqBuilder`] and the
/// schedule feasibility checker.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Request times must be strictly increasing (the paper assumes at most
    /// one request per time instance, Section III-A).
    NonIncreasingTime {
        /// Index of the offending request within the sequence.
        index: usize,
        /// Time of the previous request.
        prev: TimePoint,
        /// Time of the offending request.
        next: TimePoint,
    },
    /// Request times must be strictly positive: `t = 0` is reserved for the
    /// origin placement of every item on `s_1`.
    NonPositiveTime {
        /// Index of the offending request.
        index: usize,
        /// The offending time value.
        time: TimePoint,
    },
    /// A request must name at least one data item.
    EmptyItemSet {
        /// Index of the offending request.
        index: usize,
    },
    /// A request referenced a server outside `0..m`.
    ServerOutOfRange {
        /// Index of the offending request.
        index: usize,
        /// The offending server.
        server: ServerId,
        /// The configured server count `m`.
        servers: u32,
    },
    /// A request referenced an item outside `0..k`.
    ItemOutOfRange {
        /// Index of the offending request.
        index: usize,
        /// The offending item.
        item: ItemId,
        /// The configured item count `k`.
        items: u32,
    },
    /// A request listed the same item twice.
    DuplicateItem {
        /// Index of the offending request.
        index: usize,
        /// The duplicated item.
        item: ItemId,
    },
    /// A time value was NaN or infinite.
    NonFiniteTime {
        /// Index of the offending request.
        index: usize,
    },
    /// Cost-model parameters must be finite and positive (`μ > 0`, `λ > 0`)
    /// with `0 < α <= 1`.
    InvalidCostModel {
        /// Human-readable description of which parameter failed.
        what: &'static str,
    },
    /// An instance exceeded a solver's tractable server count (the exact
    /// heterogeneous DP is exponential in `m`).
    TooManyServers {
        /// Server count of the instance.
        servers: u32,
        /// The solver's ceiling.
        max: u32,
    },
    /// A per-server cost model was applied to a trace with a different
    /// server count.
    ServerCountMismatch {
        /// Server count the cost model is sized for.
        model: u32,
        /// Server count of the trace.
        trace: u32,
    },
    /// A cost-plane shape cannot be viewed as the shape a solver needs
    /// (e.g. a multi-tier model offered to a single-tier solver).
    IncompatibleCostPlane {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// Schedule feasibility failure; the string describes which request or
    /// connectivity rule was violated.
    InfeasibleSchedule {
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NonIncreasingTime { index, prev, next } => write!(
                f,
                "request #{index} at t={next} does not strictly follow previous t={prev}"
            ),
            ModelError::NonPositiveTime { index, time } => {
                write!(f, "request #{index} has non-positive time t={time}")
            }
            ModelError::EmptyItemSet { index } => {
                write!(f, "request #{index} accesses no data items")
            }
            ModelError::ServerOutOfRange {
                index,
                server,
                servers,
            } => write!(
                f,
                "request #{index} targets {server} but only {servers} servers exist"
            ),
            ModelError::ItemOutOfRange { index, item, items } => write!(
                f,
                "request #{index} accesses {item} but only {items} items exist"
            ),
            ModelError::DuplicateItem { index, item } => {
                write!(f, "request #{index} lists {item} more than once")
            }
            ModelError::NonFiniteTime { index } => {
                write!(f, "request #{index} has a non-finite time")
            }
            ModelError::InvalidCostModel { what } => {
                write!(f, "invalid cost model: {what}")
            }
            ModelError::TooManyServers { servers, max } => write!(
                f,
                "instance has {servers} servers but the solver handles at most {max}"
            ),
            ModelError::ServerCountMismatch { model, trace } => write!(
                f,
                "cost model is sized for {model} servers but the trace has {trace}"
            ),
            ModelError::IncompatibleCostPlane { what } => {
                write!(f, "incompatible cost plane: {what}")
            }
            ModelError::InfeasibleSchedule { reason } => {
                write!(f, "infeasible schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = ModelError::NonIncreasingTime {
            index: 3,
            prev: 2.0,
            next: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("#3"));
        assert!(msg.contains("1.5"));
        assert!(msg.contains('2'));

        let e = ModelError::ServerOutOfRange {
            index: 1,
            server: ServerId(9),
            servers: 4,
        };
        assert!(e.to_string().contains("s10"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&ModelError::EmptyItemSet { index: 0 });
    }
}

//! The homogeneous cost model of Section III-B and Table II.
//!
//! * Caching one copy of one item costs `μ` per unit time on every server.
//! * Transferring one item between any pair of servers costs `λ`.
//! * A *package* of `k > 1` correlated items caches at `α·k·μ` per unit time
//!   and transfers at `α·k·λ`, where `α ∈ (0, 1]` is the discount factor.
//!
//! Replication, deletion and (un)packing are free (Section III-C): they are
//! constants that the paper folds into `λ`/`μ` without loss of accuracy.

use crate::error::ModelError;

/// The package size studied by the paper ("as a proof of concept, the
/// proposed algorithm only considers to pack two correlative data items").
pub const PACKAGE_PAIR: u32 = 2;

/// Homogeneous cost model `(μ, λ, α)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Caching cost per item copy per unit time (`μ`).
    mu: f64,
    /// Transfer cost per item between any server pair (`λ`).
    lambda: f64,
    /// Package discount factor (`α`), in `(0, 1]`.
    alpha: f64,
}

crate::impl_to_json!(CostModel { mu, lambda, alpha });

impl crate::json::FromJson for CostModel {
    fn from_json(v: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        // Route through the validating constructor so corrupt files
        // cannot smuggle in a non-positive rate or out-of-range alpha.
        let mu = f64::from_json(v.field("mu")?)?;
        let lambda = f64::from_json(v.field("lambda")?)?;
        let alpha = f64::from_json(v.field("alpha")?)?;
        CostModel::new(mu, lambda, alpha)
            .map_err(|e| crate::json::JsonError::conv(format!("invalid cost model: {e}")))
    }
}

impl CostModel {
    /// Creates a validated cost model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidCostModel`] if `μ` or `λ` is not a
    /// finite positive number, or `α` is outside `(0, 1]`.
    pub fn new(mu: f64, lambda: f64, alpha: f64) -> Result<Self, ModelError> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(ModelError::InvalidCostModel {
                what: "μ must be finite and positive",
            });
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ModelError::InvalidCostModel {
                what: "λ must be finite and positive",
            });
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(ModelError::InvalidCostModel {
                what: "α must lie in (0, 1]",
            });
        }
        Ok(CostModel { mu, lambda, alpha })
    }

    /// The cost model of the paper's running example (Section V-C):
    /// `μ = 1`, `λ = 1`, `α = 0.8`.
    pub fn paper_example() -> Self {
        CostModel {
            mu: 1.0,
            lambda: 1.0,
            alpha: 0.8,
        }
    }

    /// Caching cost rate `μ`.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Transfer cost `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Discount factor `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The ratio `ρ = λ / μ` studied in Fig. 12 of the paper.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Caching cost per unit time for `k` items served *individually*
    /// (Table II, "Individual/Cache"): `k·μ`.
    #[inline]
    pub fn cache_rate_individual(&self, k: u32) -> f64 {
        k as f64 * self.mu
    }

    /// Transfer cost for `k` items served *individually*
    /// (Table II, "Individual/Transfer"): `k·λ`.
    #[inline]
    pub fn transfer_cost_individual(&self, k: u32) -> f64 {
        k as f64 * self.lambda
    }

    /// Caching cost per unit time for a *package* of `k` items
    /// (Table II, "Package/Cache"): `α·k·μ` for `k > 1`, `μ` for `k = 1`.
    #[inline]
    pub fn cache_rate_package(&self, k: u32) -> f64 {
        if k <= 1 {
            self.mu
        } else {
            self.alpha * k as f64 * self.mu
        }
    }

    /// Transfer cost for a *package* of `k` items
    /// (Table II, "Package/Transfer"): `α·k·λ` for `k > 1`, `λ` for `k = 1`.
    #[inline]
    pub fn transfer_cost_package(&self, k: u32) -> f64 {
        if k <= 1 {
            self.lambda
        } else {
            self.alpha * k as f64 * self.lambda
        }
    }

    /// The constant cost of serving a request for a *single* item of a
    /// two-item package by shipping the whole package: `2αλ`
    /// (Observation 2 of the paper).
    #[inline]
    pub fn package_delivery_cost(&self) -> f64 {
        self.transfer_cost_package(PACKAGE_PAIR)
    }

    /// Derives the effective single-"item" cost model under which a
    /// `k`-item package is scheduled: `μ' = αkμ`, `λ' = αkλ` for `k > 1`
    /// (the base rates for `k ≤ 1`, per Table II).
    ///
    /// Running the single-item optimal off-line algorithm of \[6\] with
    /// this scaled model on the full-group co-request subsequence is the
    /// group generalisation of Phase 2's `cost[item.d2] += 2α·(call alg.
    /// in \[6\])` (Algorithm 1, line 40).
    pub fn scaled_for_package_k(&self, k: u32) -> CostModel {
        CostModel {
            mu: self.cache_rate_package(k),
            lambda: self.transfer_cost_package(k),
            alpha: self.alpha,
        }
    }

    /// The `k = 2` special case of [`Self::scaled_for_package_k`] — the
    /// pair scaling the paper's Algorithm 1 uses (`μ' = 2αμ`,
    /// `λ' = 2αλ`). Kept as the spelling for the pairwise call sites.
    pub fn scaled_for_package(&self) -> CostModel {
        self.scaled_for_package_k(PACKAGE_PAIR)
    }

    /// The elementary serving cost `C_ij` of Eq. (1): cache from `t_i` to
    /// `t_j` (`(t_j − t_i)·μ`) plus a transfer (`ε·λ`) when the servers
    /// differ. Returns `+∞` when `t_j <= t_i`, matching the equation.
    #[inline]
    pub fn c_ij(&self, t_i: f64, t_j: f64, same_server: bool) -> f64 {
        if t_j > t_i {
            (t_j - t_i) * self.mu + if same_server { 0.0 } else { self.lambda }
        } else {
            f64::INFINITY
        }
    }

    /// Theoretical approximation bound of Theorem 1: `2/α`.
    #[inline]
    pub fn approximation_bound(&self) -> f64 {
        2.0 / self.alpha
    }
}

/// Fluent builder for [`CostModel`]; convenient for experiment sweeps.
#[derive(Debug, Clone, Copy)]
pub struct CostModelBuilder {
    mu: f64,
    lambda: f64,
    alpha: f64,
}

impl Default for CostModelBuilder {
    fn default() -> Self {
        CostModelBuilder {
            mu: 1.0,
            lambda: 1.0,
            alpha: 0.8,
        }
    }
}

impl CostModelBuilder {
    /// Starts from the defaults `μ = λ = 1`, `α = 0.8`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the caching rate `μ`.
    pub fn mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    /// Sets the transfer cost `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the discount factor `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `μ` and `λ` from the ratio `ρ = λ/μ` under the Fig.-12
    /// constraint `λ + μ = sum`: `μ = sum/(1+ρ)`, `λ = sum·ρ/(1+ρ)`.
    pub fn from_rho(mut self, rho: f64, sum: f64) -> Self {
        self.mu = sum / (1.0 + rho);
        self.lambda = sum * rho / (1.0 + rho);
        self
    }

    /// Builds the validated model.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::InvalidCostModel`] from [`CostModel::new`].
    pub fn build(self) -> Result<CostModel, ModelError> {
        CostModel::new(self.mu, self.lambda, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::approx_eq;

    #[test]
    fn validates_parameters() {
        assert!(CostModel::new(1.0, 1.0, 0.8).is_ok());
        assert!(CostModel::new(0.0, 1.0, 0.8).is_err());
        assert!(CostModel::new(1.0, -1.0, 0.8).is_err());
        assert!(CostModel::new(1.0, 1.0, 0.0).is_err());
        assert!(CostModel::new(1.0, 1.0, 1.5).is_err());
        assert!(CostModel::new(f64::NAN, 1.0, 0.8).is_err());
        assert!(CostModel::new(1.0, f64::INFINITY, 0.8).is_err());
        // α = 1 disables the discount but is legal.
        assert!(CostModel::new(1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn table_ii_rates() {
        let m = CostModel::new(2.0, 3.0, 0.8).unwrap();
        // k = 1 row: individual == package == base rates.
        assert!(approx_eq(m.cache_rate_individual(1), 2.0));
        assert!(approx_eq(m.transfer_cost_individual(1), 3.0));
        assert!(approx_eq(m.cache_rate_package(1), 2.0));
        assert!(approx_eq(m.transfer_cost_package(1), 3.0));
        // k = 2 row: kμ / kλ vs αkμ / αkλ.
        assert!(approx_eq(m.cache_rate_individual(2), 4.0));
        assert!(approx_eq(m.transfer_cost_individual(2), 6.0));
        assert!(approx_eq(m.cache_rate_package(2), 0.8 * 4.0));
        assert!(approx_eq(m.transfer_cost_package(2), 0.8 * 6.0));
        // k = 3 generalisation.
        assert!(approx_eq(m.cache_rate_package(3), 0.8 * 6.0));
    }

    #[test]
    fn package_delivery_is_two_alpha_lambda() {
        let m = CostModel::paper_example();
        assert!(approx_eq(m.package_delivery_cost(), 2.0 * 0.8 * 1.0));
    }

    #[test]
    fn scaled_model_matches_running_example() {
        // Section V-C multiplies every μ/λ term by 2α = 1.6.
        let m = CostModel::paper_example();
        let p = m.scaled_for_package();
        assert!(approx_eq(p.mu(), 1.6));
        assert!(approx_eq(p.lambda(), 1.6));
        // The pair shim is exactly the k = 2 instance of the general form.
        assert_eq!(p, m.scaled_for_package_k(2));
    }

    #[test]
    fn scaled_model_generalises_to_k_items() {
        let m = CostModel::new(2.0, 3.0, 0.8).unwrap();
        for k in [1u32, 2, 3, 4, 8] {
            let p = m.scaled_for_package_k(k);
            assert!(approx_eq(p.mu(), m.cache_rate_package(k)), "k = {k}");
            assert!(approx_eq(p.lambda(), m.transfer_cost_package(k)), "k = {k}");
            assert!(approx_eq(p.alpha(), m.alpha()));
        }
        // k = 1 degenerates to the base model (no discount on singletons).
        assert_eq!(m.scaled_for_package_k(1), m);
    }

    #[test]
    fn c_ij_matches_eq_1() {
        let m = CostModel::new(1.0, 2.5, 0.8).unwrap();
        // Cache-only when same server.
        assert!(approx_eq(m.c_ij(1.5, 2.6, true), 1.1));
        // Cache + transfer across servers.
        assert!(approx_eq(m.c_ij(1.4, 2.6, false), 1.2 + 2.5));
        // Non-causal requests are infeasible.
        assert!(m.c_ij(2.0, 2.0, true).is_infinite());
        assert!(m.c_ij(3.0, 2.0, false).is_infinite());
    }

    #[test]
    fn builder_from_rho_keeps_sum() {
        for rho in [0.2, 0.5, 1.0, 2.0, 5.0] {
            let m = CostModelBuilder::new().from_rho(rho, 6.0).build().unwrap();
            assert!(approx_eq(m.lambda() + m.mu(), 6.0));
            assert!(approx_eq(m.rho(), rho));
        }
        // The paper highlights the peak at ρ = 2 → (μ = 2, λ = 4).
        let m = CostModelBuilder::new().from_rho(2.0, 6.0).build().unwrap();
        assert!(approx_eq(m.mu(), 2.0));
        assert!(approx_eq(m.lambda(), 4.0));
    }

    #[test]
    fn approximation_bound() {
        let m = CostModel::paper_example();
        assert!(approx_eq(m.approximation_bound(), 2.5));
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{parse, FromJson, ToJson};
        let m = CostModel::new(2.0, 4.0, 0.6).unwrap();
        let j = m.to_json().to_string();
        let back = CostModel::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(m, back);
        // Validation still runs on load.
        let bad = parse(r#"{"mu": -1.0, "lambda": 4.0, "alpha": 0.6}"#).unwrap();
        assert!(CostModel::from_json(&bad).is_err());
    }
}

//! On-line DP_Greedy: correlation-aware on-line caching.
//!
//! The paper's algorithm is off-line (the request trajectory is known).
//! Its companion literature (\[6\]: "online vs. off-line") asks for the
//! on-line counterpart; this module provides one by combining the two
//! phases on-line:
//!
//! * **Phase 1, incremental**: co-occurrence counts and Jaccard
//!   similarities are maintained as requests arrive; every
//!   `refresh_every` requests the greedy threshold matching is re-run, so
//!   the packing tracks the *observed* correlation (no oracle).
//! * **Phase 2, on-line**: every item is served by the ski-rental rule of
//!   [`crate::ski_rental::ski_rental`] (per-item rented copies plus a moving
//!   backbone); when a request misses several items at once and the
//!   current packing pairs them, the delivery is batched as a package at
//!   `2αλ` instead of two `λ` transfers — and a missing *single* item of
//!   a packed pair may still arrive by package (`2αλ < λ` when
//!   `α < 1/2`), dropping a bonus copy of its partner (Observation 2,
//!   on-line).
//!
//! With `α = 1` every package option ties with individual transfers and
//! the algorithm degenerates to independent per-item ski-rental — the
//! tests assert exact equality.

use std::collections::HashMap;

use mcs_correlation::matching::greedy_matching_from_pairs;
use mcs_correlation::StreamingCooccurrence;
use mcs_model::{CostModel, ItemId, RequestSeq, ServerId, TimePoint};

/// Configuration of the on-line DP_Greedy run.
#[derive(Debug, Clone, Copy)]
pub struct OnlineDpgConfig {
    /// The homogeneous cost model.
    pub model: CostModel,
    /// Packing threshold θ.
    pub theta: f64,
    /// Re-run Phase 1 every this many requests (0 disables packing).
    pub refresh_every: usize,
    /// Per-request decay of the streaming co-occurrence statistics
    /// (`1.0` = undecayed batch counts; `< 1` tracks drift).
    pub decay: f64,
}

impl OnlineDpgConfig {
    /// Defaults: `θ = 0.3`, refresh every 50 requests, no decay.
    pub fn new(model: CostModel) -> Self {
        OnlineDpgConfig {
            model,
            theta: 0.3,
            refresh_every: 50,
            decay: 1.0,
        }
    }

    /// Sets the streaming decay.
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }
}

/// Outcome of an on-line DP_Greedy run.
#[derive(Debug, Clone, Copy)]
pub struct OnlineDpgOutcome {
    /// Total cost paid.
    pub cost: f64,
    /// Individual `λ` transfers.
    pub transfers: usize,
    /// Package `2αλ` transfers.
    pub package_transfers: usize,
    /// Locally served item accesses.
    pub hits: usize,
    /// Number of Phase 1 refreshes that changed the packing.
    pub repackings: usize,
}

#[derive(Debug, Clone, Copy)]
struct CopyState {
    since: TimePoint,
    deadline: TimePoint,
}

/// Per-item ski-rental state.
#[derive(Debug, Default)]
struct ItemState {
    copies: HashMap<ServerId, CopyState>,
    backbone: ServerId,
}

/// Runs on-line DP_Greedy over a request sequence.
pub fn online_dp_greedy(seq: &RequestSeq, config: &OnlineDpgConfig) -> OnlineDpgOutcome {
    let model = &config.model;
    let mu = model.mu();
    let lambda = model.lambda();
    let keep = lambda / mu;
    let pkg_cost = model.package_delivery_cost(); // 2αλ
    let k = seq.items() as usize;
    // Per-item finite-horizon clamp: an item's epochs settle at its own
    // last access (matching the per-item convention of `ski_rental`).
    let mut item_horizon = vec![0.0_f64; k];
    for r in seq.requests() {
        for &d in &r.items {
            item_horizon[d.index()] = r.time;
        }
    }

    let mut items: Vec<ItemState> = (0..k)
        .map(|_| {
            let mut st = ItemState {
                copies: HashMap::new(),
                backbone: ServerId::ORIGIN,
            };
            st.copies.insert(
                ServerId::ORIGIN,
                CopyState {
                    since: 0.0,
                    deadline: f64::INFINITY,
                },
            );
            st
        })
        .collect();

    // Incremental Phase 1 state: streaming (optionally decayed)
    // co-occurrence counts, O(|D_i|²) per request.
    let mut stream = StreamingCooccurrence::new(config.decay);
    let mut partner: Vec<Option<ItemId>> = vec![None; k];
    let mut repackings = 0usize;

    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut package_transfers = 0usize;
    let mut hits = 0usize;

    let settle = |st: &mut ItemState, t: TimePoint, horizon: f64, cost: &mut f64| {
        // Sorted so the float summation order never depends on the hash
        // map's per-thread seed.
        let mut expired: Vec<ServerId> = st
            .copies
            .iter()
            .filter(|(_, c)| c.deadline < t)
            .map(|(&s, _)| s)
            .collect();
        expired.sort_unstable();
        for s in expired {
            let c = st.copies.remove(&s).expect("present");
            let end = c.deadline.min(horizon).max(c.since);
            *cost += mu * (end - c.since);
        }
    };

    for (seen, r) in seq.requests().iter().enumerate() {
        let t = r.time;
        // Settle expirations for the touched items only (others can't
        // change until they are touched; their expiry cost is time-stamped
        // by `since`/`deadline`, not by when we settle it).
        for &d in &r.items {
            settle(&mut items[d.index()], t, item_horizon[d.index()], &mut cost);
        }

        // Partition into present/missing.
        let mut missing: Vec<ItemId> = Vec::new();
        for &d in &r.items {
            if items[d.index()].copies.contains_key(&r.server) {
                hits += 1;
            } else {
                missing.push(d);
            }
        }

        // Batch missing packed pairs.
        let mut handled = vec![false; missing.len()];
        for i in 0..missing.len() {
            if handled[i] {
                continue;
            }
            let a = missing[i];
            let mate = partner[a.index()];
            let mate_idx = mate.and_then(|b| {
                missing
                    .iter()
                    .position(|&x| x == b)
                    .filter(|&jb| !handled[jb])
            });
            if let (Some(_), Some(b)) = (mate_idx, mate) {
                // Both items of a packed pair are missing: package (2αλ)
                // vs two singles (2λ). Prefer singles on ties (α = 1
                // degenerates to per-item ski-rental).
                if pkg_cost < 2.0 * lambda {
                    cost += pkg_cost;
                    package_transfers += 1;
                } else {
                    cost += 2.0 * lambda;
                    transfers += 2;
                }
                for d in [a, b] {
                    deliver(&mut items[d.index()], r.server, t, keep);
                    handled[missing.iter().position(|&x| x == d).unwrap()] = true;
                }
            } else {
                // Single missing item: λ, or a package from its (present
                // elsewhere) partner pairing at 2αλ when strictly cheaper.
                if partner[a.index()].is_some() && pkg_cost < lambda {
                    cost += pkg_cost;
                    package_transfers += 1;
                    // The package also drops a bonus copy of the partner.
                    let b = partner[a.index()].expect("checked");
                    settle(&mut items[b.index()], t, item_horizon[b.index()], &mut cost);
                    deliver(&mut items[b.index()], r.server, t, keep);
                } else {
                    cost += lambda;
                    transfers += 1;
                }
                deliver(&mut items[a.index()], r.server, t, keep);
                handled[i] = true;
            }
        }

        // Backbone motion + rent renewal for every requested item.
        for &d in &r.items {
            let st = &mut items[d.index()];
            if st.backbone != r.server {
                let old = st.backbone;
                if let Some(c) = st.copies.get_mut(&old) {
                    if c.deadline.is_infinite() {
                        c.deadline = t + keep;
                    }
                }
                st.backbone = r.server;
            }
            st.copies
                .get_mut(&r.server)
                .expect("delivered or present")
                .deadline = f64::INFINITY;
        }

        // Phase 1: feed the stream, refresh the packing periodically.
        stream.observe(r);
        if config.refresh_every > 0 && (seen + 1) % config.refresh_every == 0 {
            let packing = greedy_matching_from_pairs(stream.pairs(), seq.items(), config.theta);
            let mut new_partner: Vec<Option<ItemId>> = vec![None; k];
            for &(a, b) in &packing.pairs {
                new_partner[a.index()] = Some(b);
                new_partner[b.index()] = Some(a);
            }
            if new_partner != partner {
                repackings += 1;
                partner = new_partner;
            }
        }
    }

    // Horizon clamp: settle every open epoch at its item's own horizon,
    // in server order (seed-independent float summation).
    for (i, st) in items.iter_mut().enumerate() {
        let mut open: Vec<_> = st.copies.drain().collect();
        open.sort_unstable_by_key(|&(s, _)| s);
        for (_, c) in open {
            let end = c.deadline.min(item_horizon[i]).max(c.since);
            cost += mu * (end - c.since);
        }
    }

    OnlineDpgOutcome {
        cost,
        transfers,
        package_transfers,
        hits,
        repackings,
    }
}

/// Drops a copy at `server` with a ski-rental deadline. Copies serving the
/// current request are promoted to backbone (deadline ∞) afterwards; bonus
/// package side-copies keep the rent.
fn deliver(st: &mut ItemState, server: ServerId, t: TimePoint, keep: f64) {
    st.copies.entry(server).or_insert(CopyState {
        since: t,
        deadline: t + keep,
    });
}

mcs_model::impl_to_json!(OnlineDpgOutcome {
    cost,
    transfers,
    package_transfers,
    hits,
    repackings
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ski_rental::ski_rental;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    /// Strongly pair-correlated sequence over 3 servers.
    fn correlated_seq() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(3, 2);
        let mut t = 0.0;
        for i in 0..30 {
            t += 0.7;
            let srv = (i % 3) as u32;
            if i % 5 == 4 {
                b = b.push(srv, t, [(i % 2) as u32]);
            } else {
                b = b.push(srv, t, [0, 1]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn alpha_one_degenerates_to_per_item_ski_rental() {
        let seq = correlated_seq();
        let model = CostModel::new(1.0, 2.0, 1.0).unwrap();
        let online = online_dp_greedy(&seq, &OnlineDpgConfig::new(model));
        let per_item: f64 = (0..seq.items())
            .map(|i| ski_rental(&seq.item_trace(ItemId(i)), &model).cost)
            .sum();
        assert!(
            approx_eq(online.cost, per_item),
            "online {} vs per-item ski-rental {}",
            online.cost,
            per_item
        );
        assert_eq!(online.package_transfers, 0);
    }

    #[test]
    fn low_alpha_batches_packages_and_saves() {
        let seq = correlated_seq();
        let model = CostModel::new(1.0, 2.0, 0.3).unwrap();
        let cfg = OnlineDpgConfig {
            model,
            theta: 0.3,
            refresh_every: 5,
            decay: 1.0,
        };
        let online = online_dp_greedy(&seq, &cfg);
        assert!(
            online.package_transfers > 0,
            "expected package batching, got none"
        );
        // Against correlation-blind per-item ski-rental at the same α:
        let per_item: f64 = (0..seq.items())
            .map(|i| ski_rental(&seq.item_trace(ItemId(i)), &model).cost)
            .sum();
        assert!(
            online.cost < per_item,
            "online DPG {} should beat blind ski-rental {}",
            online.cost,
            per_item
        );
    }

    #[test]
    fn disabled_refresh_never_packs() {
        let seq = correlated_seq();
        let model = CostModel::new(1.0, 2.0, 0.3).unwrap();
        let cfg = OnlineDpgConfig {
            model,
            theta: 0.3,
            refresh_every: 0,
            decay: 1.0,
        };
        let online = online_dp_greedy(&seq, &cfg);
        assert_eq!(online.package_transfers, 0);
        assert_eq!(online.repackings, 0);
    }

    #[test]
    fn cost_respects_the_lemma_1_style_lower_bound() {
        // Online packed cost ≥ α · Σ per-item off-line optimum: every item
        // access is served at ≥ α times its individual marginal cost.
        let seq = correlated_seq();
        for alpha in [0.3, 0.6, 1.0] {
            let model = CostModel::new(1.0, 2.0, alpha).unwrap();
            let cfg = OnlineDpgConfig {
                model,
                theta: 0.3,
                refresh_every: 5,
                decay: 1.0,
            };
            let online = online_dp_greedy(&seq, &cfg);
            let opt_sum: f64 = (0..seq.items())
                .map(|i| mcs_offline::optimal(&seq.item_trace(ItemId(i)), &model).cost)
                .sum();
            assert!(
                online.cost >= alpha * opt_sum - 1e-9,
                "α={alpha}: online {} < α·Σopt {}",
                online.cost,
                alpha * opt_sum
            );
        }
    }

    #[test]
    fn decay_repacks_after_partner_drift() {
        // Item 0 pairs with 1 early, with 2 late. Undecayed statistics keep
        // the stale pairing far longer than decayed ones.
        // Six servers in rotation: same-server gaps (3.0) exceed the rent
        // window (λ/μ = 2.0), so copies expire and every request misses —
        // the regime where delivery batching actually matters.
        let mut b = RequestSeqBuilder::new(6, 3);
        let mut t = 0.0;
        for i in 0..120 {
            t += 0.5;
            let srv = (i % 6) as u32;
            b = b.push(srv, t, if i < 60 { [0u32, 1] } else { [0u32, 2] });
        }
        let seq = b.build().unwrap();
        let model = CostModel::new(1.0, 2.0, 0.3).unwrap();
        let base = OnlineDpgConfig {
            model,
            theta: 0.3,
            refresh_every: 10,
            decay: 1.0,
        };
        let undecayed = online_dp_greedy(&seq, &base);
        let decayed = online_dp_greedy(&seq, &base.with_decay(0.9));
        // The decayed run must flip its packing (≥ 2 repackings: initial +
        // the drift flip) and save cost by batching the (0,2) phase.
        assert!(decayed.repackings >= 2, "repackings {}", decayed.repackings);
        assert!(
            decayed.cost < undecayed.cost,
            "decayed {} should beat undecayed {}",
            decayed.cost,
            undecayed.cost
        );
    }

    #[test]
    fn empty_sequence_is_free() {
        let seq = RequestSeqBuilder::new(2, 2).build().unwrap();
        let model = CostModel::paper_example();
        let out = online_dp_greedy(&seq, &OnlineDpgConfig::new(model));
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.hits, 0);
    }
}

//! Tiered-storage waterfall serving — greedy level assignment over
//! per-server L1/L2/L3 ladders, priced by [`TieredCostModel`].
//!
//! The capacity-oriented machinery of [`crate::capacity`] generalised to
//! storage hierarchies: each server owns an ordered ladder of tiers
//! (small-fast first), requests are served from L1 only, and copies
//! *waterfall* downward under pressure:
//!
//! * **L1 hit** — free, refreshes recency.
//! * **Lower-tier hit** — the copy is *promoted* to L1 (settling its
//!   residence at the old tier's rate and paying
//!   [`TieredCostModel::move_cost`] per level crossed), then served.
//! * **Miss** — the copy is fetched into L1 from the cheapest source:
//!   any server currently caching it (`λ_{us}`) or the backing store
//!   ([`TieredCostModel::origin_fetch`]).
//! * **Overflow** — inserting into a full tier *demotes* its
//!   least-recently-used copy one level down (recursively; falling off
//!   the last tier evicts). Unbounded tiers (`capacity = 0`) never
//!   overflow.
//!
//! Every resident copy pays its tier's `μ_s^ℓ` per unit time until it
//! moves, is evicted, or the horizon settles — the same cost-oriented
//! accounting as [`crate::capacity::capacity_run`]. The origin server's
//! backing store holds every item for the whole horizon at its deepest
//! tier's rate (requests at the origin always hit), but it is *not* a
//! `λ` fetch source — remote edges reach the backing store through
//! `origin_fetch`.
//!
//! Everything is serial and deterministic: `BTreeMap` residency, LRU
//! victim selection tie-broken on item id, and (server, tier, item)
//! ordered settlement, so the float total is a pure function of
//! `(seq, model)` at any `MCS_THREADS`.

use std::collections::BTreeMap;

use mcs_model::{ItemId, ModelError, RequestSeq, ServerId, TieredCostModel, TimePoint};

/// Outcome of a tiered waterfall run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredOutcome {
    /// Total monetary cost, exactly `cache_cost + (transfer_cost +
    /// move_cost)` in that association order (the engine's ledger sums
    /// its two channel events the same way, so the reconciliation gap is
    /// zero by construction).
    pub cost: f64,
    /// Residence cost: every copy × its tier rate × its resident time,
    /// plus the origin backing store over the whole horizon.
    pub cache_cost: f64,
    /// Fetch cost: cross-server `λ` hops and origin fetches.
    pub transfer_cost: f64,
    /// Intra-server promotion/demotion cost.
    pub move_cost: f64,
    /// Item accesses served from L1 or the origin store.
    pub hits: usize,
    /// Item accesses served by promotion from a lower tier.
    pub promotions: usize,
    /// Item accesses that fetched from another server or the store.
    pub misses: usize,
    /// Copies demoted one level under insertion pressure.
    pub demotions: usize,
    /// Copies that fell off the last tier.
    pub evictions: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// When the copy landed in this tier (for μ accounting).
    since: TimePoint,
    /// LRU recency stamp (request counter; demotion preserves it).
    stamp: u64,
}

/// Runs the tiered waterfall over a request sequence.
///
/// # Errors
///
/// [`ModelError::ServerCountMismatch`] when the model is sized for a
/// different fleet than the trace.
pub fn tiered_run(seq: &RequestSeq, model: &TieredCostModel) -> Result<TieredOutcome, ModelError> {
    if model.servers() != seq.servers() {
        return Err(ModelError::ServerCountMismatch {
            model: model.servers(),
            trace: seq.servers(),
        });
    }
    let m = seq.servers() as usize;
    let horizon = seq.horizon();

    // state[server][tier] → item → slot.
    let mut state: Vec<Vec<BTreeMap<ItemId, Slot>>> = (0..m)
        .map(|s| vec![BTreeMap::new(); model.ladder(ServerId(s as u32)).len()])
        .collect();

    let mut cache_cost = 0.0_f64;
    let mut transfer_cost = 0.0_f64;
    let mut move_total = 0.0_f64;
    let mut hits = 0usize;
    let mut promotions = 0usize;
    let mut misses = 0usize;
    let mut demotions = 0usize;
    let mut evictions = 0usize;
    let mut clock = 0u64;

    for r in seq.requests() {
        clock += 1;
        for &item in &r.items {
            if r.server == ServerId::ORIGIN {
                // The backing store holds everything.
                hits += 1;
                continue;
            }
            let s = r.server.index();
            let ladder = model.ladder(r.server);

            // Locate the copy in the waterfall, top-down.
            let residence = (0..ladder.len()).find(|&lvl| state[s][lvl].contains_key(&item));
            match residence {
                Some(0) => {
                    hits += 1;
                    state[s][0].get_mut(&item).expect("just found").stamp = clock;
                    continue;
                }
                Some(lvl) => {
                    // Promote: settle the old tier's residence, pay one
                    // move per level crossed, re-insert at L1.
                    let slot = state[s][lvl].remove(&item).expect("just found");
                    cache_cost += ladder[lvl].mu * (r.time - slot.since);
                    move_total += model.move_cost() * lvl as f64;
                    promotions += 1;
                }
                None => {
                    // Miss: fetch from the cheapest current holder, or
                    // the backing store. Only edge caches are λ sources.
                    let mut best = model.origin_fetch();
                    for (u, ladders) in state.iter().enumerate().take(m) {
                        if u == s || ServerId(u as u32) == ServerId::ORIGIN {
                            continue;
                        }
                        if ladders.iter().any(|tier| tier.contains_key(&item)) {
                            best = best.min(model.lambda(ServerId(u as u32), r.server));
                        }
                    }
                    transfer_cost += best;
                    misses += 1;
                }
            }

            // Insert at L1 and cascade demotions down the waterfall.
            let mut carry = (
                item,
                Slot {
                    since: r.time,
                    stamp: clock,
                },
            );
            for lvl in 0..ladder.len() {
                state[s][lvl].insert(carry.0, carry.1);
                let cap = ladder[lvl].capacity;
                if cap == 0 || state[s][lvl].len() <= cap as usize {
                    break;
                }
                // Overflow: demote the least-recent copy (smallest stamp,
                // ties to the smallest item id — deterministic).
                let (&victim, &vslot) = state[s][lvl]
                    .iter()
                    .min_by_key(|(&id, slot)| (slot.stamp, id))
                    .expect("tier over capacity is non-empty");
                state[s][lvl].remove(&victim);
                cache_cost += ladder[lvl].mu * (r.time - vslot.since);
                if lvl + 1 < ladder.len() {
                    demotions += 1;
                    move_total += model.move_cost();
                    carry = (
                        victim,
                        Slot {
                            since: r.time,
                            stamp: vslot.stamp,
                        },
                    );
                } else {
                    evictions += 1;
                    break;
                }
            }
        }
    }

    // Settle residence to the horizon in (server, tier, item) order.
    for (s, tiers) in state.iter().enumerate() {
        let ladder = model.ladder(ServerId(s as u32));
        for (lvl, tier) in tiers.iter().enumerate() {
            for slot in tier.values() {
                cache_cost += ladder[lvl].mu * (horizon - slot.since);
            }
        }
    }
    // The origin's backing store holds every item for the whole horizon
    // at its deepest (archive) tier rate.
    let archive_rate = model
        .ladder(ServerId::ORIGIN)
        .last()
        .expect("every server has at least one tier")
        .mu;
    for _ in 0..seq.items() {
        cache_cost += archive_rate * horizon;
    }

    let move_cost = move_total;
    Ok(TieredOutcome {
        cost: cache_cost + (transfer_cost + move_cost),
        cache_cost,
        transfer_cost,
        move_cost,
        hits,
        promotions,
        misses,
        demotions,
        evictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{capacity_run, EvictionPolicy};
    use mcs_model::{CostModel, RequestSeqBuilder, StorageTier};

    /// Requests cycling through 3 items at one edge server.
    fn cycling_seq() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(2, 3);
        let mut t = 0.0;
        for i in 0..12 {
            t += 1.0;
            b = b.push(1u32, t, [(i % 3) as u32]);
        }
        b.build().unwrap()
    }

    fn waterfall(l1: u32) -> TieredCostModel {
        TieredCostModel::new(
            vec![
                vec![
                    StorageTier::bounded(l1, 2.0),
                    StorageTier::bounded(2 * l1, 1.0),
                    StorageTier::unbounded(0.25),
                ];
                2
            ],
            vec![0.0, 4.0, 4.0, 0.0],
            0.5,
            8.0,
            0.8,
        )
        .unwrap()
    }

    #[test]
    fn uniform_single_tier_matches_unbounded_capacity_run() {
        // One unbounded tier per server with origin_fetch = λ is exactly
        // the capacity machinery with infinite slots: every re-access
        // hits, every first access pays λ, every copy pays μ to horizon.
        let seq = cycling_seq();
        let homo = CostModel::new(1.0, 5.0, 0.8).unwrap();
        let tiered =
            TieredCostModel::uniform_single_tier(2, homo.mu(), homo.lambda(), 0.8).unwrap();
        let t = tiered_run(&seq, &tiered).unwrap();
        let c = capacity_run(&seq, &homo, usize::MAX, EvictionPolicy::Lru);
        assert_eq!(t.hits, c.hits);
        assert_eq!(t.misses, c.misses);
        assert_eq!(t.evictions, 0);
        assert_eq!(t.demotions, 0);
        assert_eq!(t.move_cost, 0.0);
        assert!((t.cost - c.cost).abs() < 1e-9, "{} vs {}", t.cost, c.cost);
    }

    #[test]
    fn waterfall_demotes_under_pressure_and_rehits_by_promotion() {
        // 3 cycling items through a 1-slot L1: every re-access finds the
        // copy in a lower tier (nothing is ever evicted — L3 is
        // unbounded), so after the 3 cold misses everything is a
        // promotion, never a re-fetch.
        let seq = cycling_seq();
        let out = tiered_run(&seq, &waterfall(1)).unwrap();
        assert_eq!(out.misses, 3);
        assert_eq!(out.promotions, 9);
        assert_eq!(out.hits, 0);
        assert_eq!(out.evictions, 0);
        assert!(out.demotions > 0);
        assert!(out.move_cost > 0.0);
        // A roomier L1 turns promotions into plain hits — but pins every
        // copy at the fast tier's premium rate to the horizon, which on
        // this trace costs more than waterfalling into the cheap archive
        // tier and paying the occasional move fee.
        let roomy = tiered_run(&seq, &waterfall(3)).unwrap();
        assert_eq!(roomy.misses, 3);
        assert_eq!(roomy.hits, 9);
        assert_eq!(roomy.promotions, 0);
        assert!(roomy.cost > out.cost);
    }

    #[test]
    fn origin_requests_always_hit_and_pay_nothing() {
        let seq = RequestSeqBuilder::new(2, 1)
            .push(0u32, 1.0, [0])
            .push(0u32, 2.0, [0])
            .build()
            .unwrap();
        let out = tiered_run(&seq, &waterfall(1)).unwrap();
        assert_eq!(out.hits, 2);
        assert_eq!(out.misses, 0);
        assert_eq!(out.transfer_cost, 0.0);
        // Only the backing store's residence is charged.
        assert!((out.cache_cost - 0.25 * seq.horizon()).abs() < 1e-12);
    }

    #[test]
    fn peer_fetch_beats_origin_fetch_when_cheaper() {
        // Server 1 caches the item, then server 2 requests it: the λ=4
        // peer hop must be chosen over the 8.0 origin fetch.
        let seq = RequestSeqBuilder::new(3, 1)
            .push(1u32, 1.0, [0])
            .push(2u32, 2.0, [0])
            .build()
            .unwrap();
        let model = TieredCostModel::new(
            vec![vec![StorageTier::unbounded(1.0)]; 3],
            vec![
                0.0, 4.0, 4.0, //
                4.0, 0.0, 4.0, //
                4.0, 4.0, 0.0,
            ],
            0.5,
            8.0,
            0.8,
        )
        .unwrap();
        let out = tiered_run(&seq, &model).unwrap();
        assert_eq!(out.misses, 2);
        // First miss pays origin_fetch (no peer holds it), second the λ.
        assert!((out.transfer_cost - (8.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn channel_split_recomposes_the_total_exactly() {
        let seq = cycling_seq();
        let out = tiered_run(&seq, &waterfall(1)).unwrap();
        assert_eq!(
            out.cost.to_bits(),
            (out.cache_cost + (out.transfer_cost + out.move_cost)).to_bits()
        );
    }

    #[test]
    fn mismatched_model_is_a_typed_error() {
        let seq = cycling_seq();
        let model = TieredCostModel::uniform_single_tier(5, 1.0, 1.0, 0.8).unwrap();
        assert!(matches!(
            tiered_run(&seq, &model),
            Err(ModelError::ServerCountMismatch { model: 5, trace: 2 })
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let seq = cycling_seq();
        let a = tiered_run(&seq, &waterfall(1)).unwrap();
        let b = tiered_run(&seq, &waterfall(1)).unwrap();
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a, b);
    }
}

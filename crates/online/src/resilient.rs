//! Crash-aware ski-rental: the on-line policy run against a faulty fleet.
//!
//! [`crate::ski_rental::ski_rental`] assumes the idealized physics of the paper —
//! copies persist until dropped and transfers always succeed. This module
//! wraps the same rent-or-buy decision rule with *fault awareness*: the
//! policy observes crashes as they happen (never the future of the
//! [`FaultPlan`]) and re-plans:
//!
//! * a copy dies the instant its server's crash window opens; its rent is
//!   settled at the crash, not at the planned drop deadline;
//! * when the **backbone** copy (the guaranteed transfer source) is lost,
//!   the policy re-anchors on the origin's durable store — the re-plan
//!   the issue calls out — until the next request rebuilds a backbone;
//! * transfer attempts fail per the plan and are retried up to
//!   [`FaultPlan::max_retries`] times (`λ` per attempt), then fall back
//!   to the origin, which never fails;
//! * a request at a *down* server cannot place a copy; it is served by an
//!   origin read-through (`λ`) and counted as degraded.
//!
//! Under [`FaultPlan::none`] every fault branch is dead and the policy
//! makes exactly the decisions of plain ski-rental.

use std::collections::BTreeMap;

use mcs_model::fault::FaultPlan;
use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId, TimePoint, EPSILON};

/// Result of a resilient on-line run.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Total cost actually paid (`μ`·cache time + `λ`·attempts).
    pub cost: f64,
    /// Successful transfer deliveries.
    pub transfers: usize,
    /// Transfer attempts including failures — each paid `λ`.
    pub attempts: usize,
    /// Locally served requests.
    pub hits: usize,
    /// Requests served by origin read-through while their server was down.
    pub degraded: usize,
    /// Times the backbone copy was lost to a crash and the policy
    /// re-anchored on the origin.
    pub replans: usize,
    /// Failed attempts that triggered a retry.
    pub retries: usize,
    /// The realised cache/transfer history. Replay-feasible when the
    /// plan is empty; under faults it is a diagnostic record (transfers
    /// sourced at the durable store have no backing cache interval).
    pub schedule: Schedule,
}

/// One live copy epoch.
#[derive(Debug, Clone, Copy)]
struct Copy {
    since: TimePoint,
    /// Drop deadline; `f64::INFINITY` while backbone.
    deadline: TimePoint,
}

/// Runs the crash-aware ski-rental policy over a trace under `plan`.
pub fn resilient_ski_rental(
    trace: &SingleItemTrace,
    model: &CostModel,
    plan: &FaultPlan,
) -> ResilientOutcome {
    let _span = mcs_obs::span("online.resilient");
    mcs_obs::counter_add("online.resilient.requests", trace.len() as u64);
    let mu = model.mu();
    let lambda = model.lambda();
    let keep = lambda / mu;

    let mut schedule = Schedule::new();
    let mut copies: BTreeMap<ServerId, Copy> = BTreeMap::new();
    copies.insert(
        ServerId::ORIGIN,
        Copy {
            since: 0.0,
            deadline: f64::INFINITY,
        },
    );
    // `None` = anchored on the origin's durable store (no cached copy
    // needed): the re-plan state after a backbone loss.
    let mut backbone: Option<ServerId> = Some(ServerId::ORIGIN);
    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut attempts = 0usize;
    let mut hits = 0usize;
    let mut degraded = 0usize;
    let mut replans = 0usize;
    let mut retries = 0usize;

    let horizon = trace.points.last().map_or(0.0, |p| p.time);

    for p in &trace.points {
        let t = p.time;

        // Settle copies that died to a crash since they were placed, and
        // rents that ran out strictly before now. A crash beats a later
        // deadline; the rent is paid only up to whichever came first.
        let ended: Vec<(ServerId, TimePoint)> = copies
            .iter()
            .filter_map(|(&s, c)| {
                let crash = plan.first_crash_in(s, c.since, t + EPSILON);
                match crash {
                    Some(k) if k <= c.deadline => Some((s, k)),
                    _ if c.deadline < t => Some((s, c.deadline)),
                    _ => None,
                }
            })
            .collect();
        for (s, end) in ended {
            let c = copies.remove(&s).expect("present");
            let end = end.min(horizon).max(c.since);
            cost += mu * (end - c.since);
            schedule.cache(s, c.since, end);
            if backbone == Some(s) {
                // Anchor lost: re-plan onto the durable store.
                backbone = None;
                replans += 1;
            }
        }

        // Serve.
        if plan.is_down(p.server, t) {
            // Cannot hold a copy there; read through to the origin.
            attempts += 1;
            transfers += 1;
            cost += lambda;
            degraded += 1;
            schedule.transfer(ServerId::ORIGIN, p.server, t);
            // The backbone (if any) is unchanged: the next reachable
            // request will still find a source.
            continue;
        }

        if let std::collections::btree_map::Entry::Vacant(slot) = copies.entry(p.server) {
            // Miss: fetch from the backbone, retrying on failure, falling
            // back to the origin's durable store.
            let src = match backbone {
                Some(b) if !plan.is_down(b, t) => b,
                _ => ServerId::ORIGIN,
            };
            let mut delivered = ServerId::ORIGIN;
            let mut done = false;
            for k in 0..=plan.max_retries {
                attempts += 1;
                cost += lambda;
                if !plan.transfer_fails(src, p.server, t, k) {
                    delivered = src;
                    done = true;
                    break;
                }
                retries += 1;
            }
            if !done {
                // Budget exhausted: origin read never fails.
                attempts += 1;
                cost += lambda;
            }
            transfers += 1;
            schedule.transfer(delivered, p.server, t);
            slot.insert(Copy {
                since: t,
                deadline: f64::INFINITY,
            });
        } else {
            hits += 1;
        }

        // Move the backbone here; demote the old one to an ordinary rent.
        if backbone != Some(p.server) {
            if let Some(b) = backbone {
                if let Some(old) = copies.get_mut(&b) {
                    if old.deadline.is_infinite() {
                        old.deadline = t + keep;
                    }
                }
            }
            backbone = Some(p.server);
        }
        let c = copies.get_mut(&p.server).expect("just ensured");
        c.deadline = f64::INFINITY;
    }

    // Finite-horizon clamp, crash-aware: an epoch still open at the end
    // pays rent up to its crash (if one struck) or the horizon. Sorted by
    // server so schedule order and float summation order never depend on
    // the hash map's per-thread seed.
    let mut open: Vec<_> = copies.into_iter().collect();
    open.sort_unstable_by_key(|&(s, _)| s);
    for (s, c) in open {
        let crash_end = plan
            .first_crash_in(s, c.since, horizon + EPSILON)
            .unwrap_or(f64::INFINITY);
        let end = c.deadline.min(crash_end).min(horizon).max(c.since);
        cost += mu * (end - c.since);
        if end > c.since {
            schedule.cache(s, c.since, end);
        }
    }

    ResilientOutcome {
        cost,
        transfers,
        attempts,
        hits,
        degraded,
        replans,
        retries,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ski_rental::ski_rental;
    use mcs_model::approx_eq;
    use mcs_model::fault::CrashWindow;
    use mcs_model::rng::Rng;
    use mcs_model::time::TimeSpan;

    fn unit_model() -> CostModel {
        CostModel::paper_example()
    }

    fn random_trace(rng: &mut Rng) -> SingleItemTrace {
        let m = rng.gen_range(2u32..=5);
        let n = rng.gen_range(1usize..=14);
        let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..=80)).collect();
        ticks.sort_unstable();
        ticks.dedup();
        let pairs: Vec<(f64, u32)> = ticks
            .iter()
            .map(|&t| (f64::from(t) / 10.0, rng.gen_range(0..m)))
            .collect();
        SingleItemTrace::from_pairs(m, &pairs)
    }

    #[test]
    fn empty_plan_reduces_to_plain_ski_rental() {
        for case in 0..64 {
            let mut rng = Rng::seed_from_u64(0x5EAF + case);
            let trace = random_trace(&mut rng);
            let model = unit_model();
            let plain = ski_rental(&trace, &model);
            let res = resilient_ski_rental(&trace, &model, &FaultPlan::none());
            assert!(
                approx_eq(res.cost, plain.cost),
                "case {case}: {} vs {}",
                res.cost,
                plain.cost
            );
            assert_eq!(res.transfers, plain.transfers, "case {case}");
            assert_eq!(res.attempts, plain.transfers, "case {case}");
            assert_eq!(res.hits, plain.hits, "case {case}");
            assert_eq!(res.degraded, 0, "case {case}");
            assert_eq!(res.replans, 0, "case {case}");
        }
    }

    #[test]
    fn backbone_loss_triggers_a_replan_not_a_wreck() {
        // Requests at s2 (becomes backbone), then s3. Crash s2 between
        // them: the backbone is lost, the s3 fetch re-anchors via origin.
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (3.0, 2)]);
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashWindow {
            server: ServerId(1),
            span: TimeSpan::new(1.5, 2.0),
        });
        let out = resilient_ski_rental(&trace, &unit_model(), &plan);
        assert_eq!(out.replans, 1);
        assert_eq!(out.transfers, 2);
        assert_eq!(out.hits, 0);
        assert_eq!(out.degraded, 0);
        // s2's rent ran only [1.0, 1.5) — the crash settled it early.
        let s2_epoch = out
            .schedule
            .intervals
            .iter()
            .find(|iv| iv.server == ServerId(1))
            .expect("s2 cached");
        assert!(approx_eq(s2_epoch.span.end, 1.5));
    }

    #[test]
    fn requests_at_down_servers_degrade_to_origin_reads() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (2.0, 1)]);
        let plan = FaultPlan::total_blackout(2);
        let model = unit_model();
        let out = resilient_ski_rental(&trace, &model, &plan);
        assert_eq!(out.degraded, 2);
        assert_eq!(out.hits, 0);
        // Two origin reads plus the origin backbone's cache time.
        assert!(out.cost >= 2.0 * model.lambda());
    }

    #[test]
    fn transfer_failures_are_retried_and_paid_for() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2)]);
        let model = unit_model();
        let mut plan = FaultPlan::none();
        plan.transfer_failure_prob = 1.0; // every non-origin attempt fails
        plan.seed = 11;
        let out = resilient_ski_rental(&trace, &model, &plan);
        // First fetch sources at the origin (never fails). Second sources
        // at the s2 backbone: max_retries+1 failures, then origin.
        assert_eq!(out.transfers, 2);
        assert_eq!(out.retries, plan.max_retries as usize + 1);
        assert_eq!(out.attempts, 1 + (plan.max_retries as usize + 1) + 1);
        let plain = ski_rental(&trace, &model);
        assert!(out.cost > plain.cost);
    }

    #[test]
    fn deterministic_for_a_fixed_plan() {
        for case in 0..16 {
            let mut rng = Rng::seed_from_u64(0xD0_0D + case);
            let trace = random_trace(&mut rng);
            let plan = FaultPlan::random(case, trace.servers, 9.0, 0.3, 1.0, 0.4);
            let a = resilient_ski_rental(&trace, &unit_model(), &plan);
            let b = resilient_ski_rental(&trace, &unit_model(), &plan);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "case {case}");
            assert_eq!(a.attempts, b.attempts, "case {case}");
            assert_eq!(a.schedule, b.schedule, "case {case}");
        }
    }
}

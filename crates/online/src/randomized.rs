//! Randomized ski-rental: exponentially distributed rents.
//!
//! Classical rent-or-buy admits an `e/(e−1) ≈ 1.58`-competitive randomized
//! strategy: instead of holding a rented copy for exactly the break-even
//! duration `k = λ/μ`, hold it for a random duration `T ∈ [0, k]` with
//! density `f(x) = e^{x/k} / (k(e−1))`. This module adapts that strategy
//! to the caching problem (same backbone structure as
//! [`crate::ski_rental::ski_rental`]) with a seeded RNG so runs are reproducible.
//!
//! Against an *oblivious* adversary the randomization hedges the
//! drop-too-early/drop-too-late dilemma; the harness measures the
//! empirical improvement over the deterministic rule on the city
//! workload.

use std::collections::HashMap;

use mcs_model::rng::Rng;

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId, TimePoint};

use crate::ski_rental::OnlineOutcome;

/// Draws a rent duration from the optimal randomized ski-rental density
/// on `[0, k]`: inverse-CDF of `F(x) = (e^{x/k} − 1)/(e − 1)`.
fn draw_rent(k: f64, rng: &mut Rng) -> f64 {
    let u = rng.gen_f64();
    k * (1.0 + u * (std::f64::consts::E - 1.0)).ln()
}

#[derive(Debug, Clone, Copy)]
struct Copy {
    since: TimePoint,
    deadline: TimePoint,
}

/// Runs the randomized ski-rental policy (seeded, reproducible).
pub fn randomized_ski_rental(
    trace: &SingleItemTrace,
    model: &CostModel,
    seed: u64,
) -> OnlineOutcome {
    let mu = model.mu();
    let lambda = model.lambda();
    let k = lambda / mu;
    let mut rng = Rng::seed_from_u64(seed);

    let mut schedule = Schedule::new();
    let mut copies: HashMap<ServerId, Copy> = HashMap::new();
    copies.insert(
        ServerId::ORIGIN,
        Copy {
            since: 0.0,
            deadline: f64::INFINITY,
        },
    );
    let mut backbone = ServerId::ORIGIN;
    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut hits = 0usize;
    let horizon = trace.points.last().map_or(0.0, |p| p.time);

    for p in &trace.points {
        let t = p.time;
        let expired: Vec<ServerId> = copies
            .iter()
            .filter(|(_, c)| c.deadline < t)
            .map(|(&s, _)| s)
            .collect();
        for s in expired {
            let c = copies.remove(&s).expect("present");
            let end = c.deadline.min(horizon).max(c.since);
            cost += mu * (end - c.since);
            schedule.cache(s, c.since, end);
        }

        if let std::collections::hash_map::Entry::Vacant(e) = copies.entry(p.server) {
            schedule.transfer(backbone, p.server, t);
            cost += lambda;
            transfers += 1;
            e.insert(Copy {
                since: t,
                deadline: f64::INFINITY,
            });
        } else {
            hits += 1;
        }

        if backbone != p.server {
            if let Some(old) = copies.get_mut(&backbone) {
                if old.deadline.is_infinite() {
                    old.deadline = t + draw_rent(k, &mut rng);
                }
            }
            backbone = p.server;
        }
        copies.get_mut(&p.server).expect("just ensured").deadline = f64::INFINITY;
    }

    // Horizon clamp in server order: hash-map iteration order depends on
    // the per-thread hasher seed and must not leak into the output.
    let mut open: Vec<_> = copies.into_iter().collect();
    open.sort_unstable_by_key(|&(s, _)| s);
    for (s, c) in open {
        let end = c.deadline.min(horizon).max(c.since);
        cost += mu * (end - c.since);
        if end > c.since {
            schedule.cache(s, c.since, end);
        }
    }

    OnlineOutcome {
        cost,
        transfers,
        hits,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;
    use mcs_offline::optimal;

    #[test]
    fn rent_draws_stay_in_range_with_the_right_mean() {
        let mut rng = Rng::seed_from_u64(1);
        let k = 2.5;
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = draw_rent(k, &mut rng);
            assert!((0.0..=k + 1e-12).contains(&d));
            sum += d;
        }
        // E[T] = k·(1 − 1/(e−1)·(… )) — numerically ≈ k·(e−2)/(e−1)… just
        // check it sits strictly inside (0.3k, 0.7k).
        let mean = sum / n as f64;
        assert!(
            mean > 0.3 * k && mean < 0.7 * k,
            "suspicious mean rent {mean} for k={k}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (3.0, 1), (4.5, 0)]);
        let model = CostModel::paper_example();
        let a = randomized_ski_rental(&trace, &model, 9);
        let b = randomized_ski_rental(&trace, &model, 9);
        assert!(approx_eq(a.cost, b.cost));
        let c = randomized_ski_rental(&trace, &model, 10);
        // Different seed may (and here does) change the hedging outcome.
        assert!(a.cost > 0.0 && c.cost > 0.0);
    }

    #[test]
    fn schedule_replays_to_reported_cost() {
        let trace = SingleItemTrace::from_pairs(
            4,
            &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (3.2, 3), (4.0, 2)],
        );
        let model = CostModel::paper_example();
        let out = randomized_ski_rental(&trace, &model, 5);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(
            out.schedule.cost(model.mu(), model.lambda()).total,
            out.cost
        ));
    }

    #[test]
    fn never_beats_offline_and_stays_boundedly_competitive() {
        let model = CostModel::paper_example();
        for seed in 0..12u64 {
            let pts: Vec<(f64, u32)> = (1u64..=15)
                .map(|i| {
                    let h = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9));
                    (i as f64 * 0.6, ((h >> 35) % 3) as u32)
                })
                .collect();
            let trace = SingleItemTrace::from_pairs(3, &pts);
            let on = randomized_ski_rental(&trace, &model, seed);
            let off = optimal(&trace, &model);
            assert!(on.cost >= off.cost - 1e-9);
            assert!(
                on.cost <= 3.0 * off.cost + 1e-9,
                "seed {seed}: {} vs {}",
                on.cost,
                off.cost
            );
        }
    }
}

//! # mcs-online — on-line caching extension
//!
//! Reference \[6\] of the DP_Greedy paper pairs its optimal off-line
//! algorithm with "a fast 3-competitive on-line algorithm". The on-line
//! setting — no knowledge of future requests — is outside DP_Greedy's
//! off-line model but inside its research agenda, so this crate provides
//! the reconstruction used by our E10 experiment:
//!
//! * [`mod@ski_rental`] — the classic rent-or-buy rule adapted to
//!   single-commodity caching: every copy delivered to a server is kept
//!   for `λ/μ` time units after its last use, then dropped; a *backbone*
//!   copy follows the most recent request so a transfer source always
//!   exists. This is the standard structure behind constant-competitive
//!   bounds for this problem family.
//! * [`extremes`] — the two trivial policies bracketing it:
//!   `always_transfer` (keep only the backbone) and `cache_everywhere`
//!   (never drop a delivered copy).
//! * [`harness`] — competitive-ratio measurement against the off-line
//!   optimum of `mcs-offline`, plus degradation-ratio measurement for
//!   fault-aware policies.
//! * [`resilient`] — the crash-aware ski-rental variant: it observes
//!   [`mcs_model::FaultPlan`] crashes as they happen, settles rents early
//!   when copies are lost, re-plans the backbone onto the origin's
//!   durable store when the anchor dies, and retries failed transfers
//!   before falling back to the origin.
//!
//! All policies emit explicit [`mcs_model::Schedule`]s so the replay
//! simulator can verify feasibility and re-derive their costs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod extremes;
pub mod harness;
pub mod online_dpg;
pub mod randomized;
pub mod resilient;
pub mod ski_rental;
pub mod tiered;

pub use harness::{competitive_ratio, degradation_ratio, DegradationSample, RatioSample};
pub use resilient::{resilient_ski_rental, ResilientOutcome};
pub use ski_rental::{ski_rental, OnlineOutcome};

//! Capacity-oriented baselines: classical cache replacement under a slot
//! budget, priced in the paper's cost model.
//!
//! The paper's introduction contrasts its *cost-oriented* model ("storage
//! capacity ... can be viewed as virtually infinite as long as user can
//! afford it") with the classical *capacity-oriented* caching literature
//! it cites (web caching / cooperative caching \[2\], \[11\]–\[16\], including
//! Cao & Irani's cost-aware GreedyDual). This module makes that contrast
//! measurable: each server owns `capacity` item slots, a miss transfers
//! the item from the most recent holder (`λ`) and evicts by policy, and
//! every resident copy still pays `μ` per unit time — so the *monetary*
//! cost of capacity-style management can be compared directly against the
//! cost-oriented algorithms on the same trace.
//!
//! Policies:
//! * [`EvictionPolicy::Lru`] — least-recently-used.
//! * [`EvictionPolicy::GreedyDual`] — GreedyDual with uniform fetch cost
//!   `λ`: each resident copy carries credit `H`, misses charge the victim
//!   floor, hits restore credit (with uniform costs this degenerates to a
//!   LRU-like order but keeps the classic bookkeeping; the structure
//!   matters once per-item costs differ).

use std::collections::HashMap;

use mcs_model::{CostModel, ItemId, RequestSeq, ServerId, TimePoint};

/// Eviction policy of the capacity-oriented cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used.
    Lru,
    /// GreedyDual (Cao & Irani) with uniform fetch cost `λ`.
    GreedyDual,
}

/// Outcome of a capacity-oriented run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityOutcome {
    /// Total monetary cost under the paper's model (`μ`·copy-time + `λ`·misses).
    pub cost: f64,
    /// Item-access hits.
    pub hits: usize,
    /// Item-access misses (= transfers).
    pub misses: usize,
    /// Evictions performed.
    pub evictions: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// When the copy landed in this cache (for μ accounting).
    since: TimePoint,
    /// LRU recency stamp / GreedyDual credit.
    priority: f64,
}

/// Runs a capacity-constrained multi-item cache fleet over a request
/// sequence. Every server starts empty except the origin, which holds all
/// items (origin slots are unbounded — it models the backing store and
/// pays `μ` per resident item like everyone else).
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn capacity_run(
    seq: &RequestSeq,
    model: &CostModel,
    capacity: usize,
    policy: EvictionPolicy,
) -> CapacityOutcome {
    assert!(capacity >= 1, "need at least one slot per server");
    let mu = model.mu();
    let lambda = model.lambda();
    let horizon = seq.horizon();

    // (server, item) → slot; origin is special-cased.
    let mut caches: HashMap<ServerId, HashMap<ItemId, Slot>> = HashMap::new();
    let mut origin_items: HashMap<ItemId, TimePoint> =
        (0..seq.items()).map(|i| (ItemId(i), 0.0)).collect();
    // Most recent holder of each item (the transfer source).
    let mut lru_clock = 0.0_f64;
    let mut inflation = 0.0_f64; // GreedyDual L value

    let mut cost = 0.0;
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut evictions = 0usize;

    for r in seq.requests() {
        lru_clock += 1.0;
        for &item in &r.items {
            if r.server == ServerId::ORIGIN {
                // The origin always holds everything.
                hits += 1;
                continue;
            }
            let cache = caches.entry(r.server).or_default();
            if let Some(slot) = cache.get_mut(&item) {
                hits += 1;
                slot.priority = match policy {
                    EvictionPolicy::Lru => lru_clock,
                    EvictionPolicy::GreedyDual => inflation + lambda,
                };
                continue;
            }
            // Miss: fetch (λ) and insert, evicting if full.
            misses += 1;
            cost += lambda;
            if cache.len() >= capacity {
                let (&victim, &vslot) = cache
                    .iter()
                    .min_by(|a, b| {
                        a.1.priority
                            .partial_cmp(&b.1.priority)
                            .expect("finite priorities")
                            .then(a.0.cmp(b.0))
                    })
                    .expect("cache non-empty");
                if policy == EvictionPolicy::GreedyDual {
                    inflation = vslot.priority;
                }
                // Settle the evicted copy's residence cost.
                cost += mu * (r.time - vslot.since);
                cache.remove(&victim);
                evictions += 1;
            }
            let priority = match policy {
                EvictionPolicy::Lru => lru_clock,
                EvictionPolicy::GreedyDual => inflation + lambda,
            };
            cache.insert(
                item,
                Slot {
                    since: r.time,
                    priority,
                },
            );
        }
    }

    // Settle residence to the horizon: edge caches and the origin copies.
    // Summed in (server, item) order so the floating-point total never
    // depends on the hash maps' per-thread seeds.
    let mut slots: Vec<(ServerId, ItemId, TimePoint)> = caches
        .iter()
        .flat_map(|(&s, cache)| cache.iter().map(move |(&d, slot)| (s, d, slot.since)))
        .collect();
    slots.sort_unstable_by_key(|&(s, d, _)| (s, d));
    for (_, _, since) in slots {
        cost += mu * (horizon - since);
    }
    let mut origin: Vec<(ItemId, TimePoint)> = origin_items.drain().collect();
    origin.sort_unstable_by_key(|&(d, _)| d);
    for (_, since) in origin {
        cost += mu * (horizon - since);
    }

    CapacityOutcome {
        cost,
        hits,
        misses,
        evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::RequestSeqBuilder;

    fn model() -> CostModel {
        // Transfer-heavy regime: slots that avoid re-fetches pay off.
        CostModel::new(1.0, 5.0, 0.8).unwrap()
    }

    /// Requests cycling through 3 items at one edge server.
    fn cycling_seq() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(2, 3);
        let mut t = 0.0;
        for i in 0..12 {
            t += 1.0;
            b = b.push(1u32, t, [(i % 3) as u32]);
        }
        b.build().unwrap()
    }

    #[test]
    fn capacity_one_thrashes_capacity_three_hits() {
        let seq = cycling_seq();
        let tight = capacity_run(&seq, &model(), 1, EvictionPolicy::Lru);
        let roomy = capacity_run(&seq, &model(), 3, EvictionPolicy::Lru);
        // With one slot every access misses; with three the working set fits.
        assert_eq!(tight.hits, 0);
        assert_eq!(tight.misses, 12);
        assert_eq!(roomy.misses, 3);
        assert_eq!(roomy.hits, 9);
        assert!(roomy.cost < tight.cost);
        assert!(tight.evictions > 0);
        assert_eq!(roomy.evictions, 0);
    }

    #[test]
    fn origin_requests_always_hit() {
        let seq = RequestSeqBuilder::new(2, 1)
            .push(0u32, 1.0, [0])
            .push(0u32, 2.0, [0])
            .build()
            .unwrap();
        let out = capacity_run(&seq, &model(), 1, EvictionPolicy::Lru);
        assert_eq!(out.hits, 2);
        assert_eq!(out.misses, 0);
    }

    #[test]
    fn greedy_dual_and_lru_account_every_access() {
        // Under uniform λ GreedyDual orders ~like recency but its credit
        // ties break differently, so hit profiles may diverge (here GD's
        // tie-break actually salvages hits on the cyclic pattern that
        // defeats pure LRU). Both must account for every access.
        let seq = cycling_seq();
        let lru = capacity_run(&seq, &model(), 2, EvictionPolicy::Lru);
        let gd = capacity_run(&seq, &model(), 2, EvictionPolicy::GreedyDual);
        assert_eq!(lru.hits + lru.misses, 12);
        assert_eq!(gd.hits + gd.misses, 12);
        // Cyclic pattern of 3 items through 2 LRU slots: total thrash.
        assert_eq!(lru.hits, 0);
        assert!(gd.hits >= lru.hits);
    }

    #[test]
    fn cost_oriented_optimal_beats_capacity_oriented_on_money() {
        // The paper's core thesis: on the monetary metric, cost-oriented
        // scheduling beats slot-managed caching.
        let seq = cycling_seq();
        let m = model();
        let capacity = capacity_run(&seq, &m, 2, EvictionPolicy::Lru);
        let optimal_sum: f64 = (0..seq.items())
            .map(|i| mcs_offline::optimal(&seq.item_trace(ItemId(i)), &m).cost)
            .sum();
        assert!(
            optimal_sum < capacity.cost,
            "optimal {optimal_sum} should beat capacity-oriented {}",
            capacity.cost
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let seq = cycling_seq();
        let _ = capacity_run(&seq, &model(), 0, EvictionPolicy::Lru);
    }
}

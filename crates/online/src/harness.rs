//! Competitive-ratio measurement: on-line policies versus the off-line
//! optimum.

use mcs_model::request::SingleItemTrace;
use mcs_model::CostModel;
use mcs_offline::optimal;

use crate::ski_rental::OnlineOutcome;

/// One measured sample.
#[derive(Debug, Clone, Copy)]
pub struct RatioSample {
    /// On-line cost.
    pub online: f64,
    /// Off-line optimal cost.
    pub offline: f64,
    /// `online / offline` (`1` when both are zero).
    pub ratio: f64,
}

/// Measures a policy's competitive ratio on one trace.
pub fn competitive_ratio<F>(trace: &SingleItemTrace, model: &CostModel, policy: F) -> RatioSample
where
    F: Fn(&SingleItemTrace, &CostModel) -> OnlineOutcome,
{
    let online = policy(trace, model).cost;
    let offline = optimal(trace, model).cost;
    let ratio = if offline == 0.0 {
        1.0
    } else {
        online / offline
    };
    RatioSample {
        online,
        offline,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extremes::{always_transfer, cache_everywhere};
    use crate::ski_rental::ski_rental;
    use proptest::prelude::*;

    fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
        (1u32..=4, 1usize..=14).prop_flat_map(|(m, n)| {
            (
                Just(m),
                proptest::collection::vec(1u32..=80, n),
                proptest::collection::vec(0u32..m, n),
            )
                .prop_map(|(m, mut ticks, servers)| {
                    ticks.sort_unstable();
                    ticks.dedup();
                    let pairs: Vec<(f64, u32)> = ticks
                        .iter()
                        .zip(servers.iter())
                        .map(|(&t, &s)| (t as f64 / 10.0, s))
                        .collect();
                    SingleItemTrace::from_pairs(m, &pairs)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn ski_rental_is_at_least_optimal_and_boundedly_competitive(
            trace in trace_strategy(),
            mu in 1u32..=30,
            la in 1u32..=30,
        ) {
            let model = CostModel::new(mu as f64 / 10.0, la as f64 / 10.0, 0.8).unwrap();
            let s = competitive_ratio(&trace, &model, ski_rental);
            prop_assert!(s.online >= s.offline - 1e-9);
            // The classic rent-or-buy structure gives a small-constant
            // bound; we assert the 3-competitive figure reported by [6]
            // with head-room for the finite-horizon clamp.
            prop_assert!(
                s.ratio <= 3.0 + 1e-9,
                "ski-rental ratio {} exceeded 3", s.ratio
            );
        }

        #[test]
        fn extremes_are_feasible_and_at_least_optimal(trace in trace_strategy()) {
            let model = CostModel::paper_example();
            for policy in [always_transfer, cache_everywhere] {
                let out = policy(&trace, &model);
                prop_assert!(out.schedule.validate(&trace).is_ok());
                let s = competitive_ratio(&trace, &model, policy);
                prop_assert!(s.online >= s.offline - 1e-9);
            }
        }

        #[test]
        fn ski_rental_schedule_replays_to_reported_cost(trace in trace_strategy()) {
            let model = CostModel::new(1.0, 1.7, 0.8).unwrap();
            let out = ski_rental(&trace, &model);
            prop_assert!(out.schedule.validate(&trace).is_ok());
            let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
            prop_assert!(
                mcs_model::approx_eq(replayed, out.cost),
                "replayed {replayed} != reported {}", out.cost
            );
        }
    }
}

//! Competitive-ratio measurement: on-line policies versus the off-line
//! optimum — and, for fault-aware policies, the *degradation ratio*
//! (cost under a [`FaultPlan`] over fault-free cost of the same policy).

use mcs_model::fault::FaultPlan;
use mcs_model::request::SingleItemTrace;
use mcs_model::CostModel;
use mcs_offline::optimal;

use crate::resilient::ResilientOutcome;
use crate::ski_rental::OnlineOutcome;

/// One measured sample.
#[derive(Debug, Clone, Copy)]
pub struct RatioSample {
    /// On-line cost.
    pub online: f64,
    /// Off-line optimal cost.
    pub offline: f64,
    /// `online / offline` (`1` when both are zero).
    pub ratio: f64,
}

/// Measures a policy's competitive ratio on one trace.
pub fn competitive_ratio<F>(trace: &SingleItemTrace, model: &CostModel, policy: F) -> RatioSample
where
    F: Fn(&SingleItemTrace, &CostModel) -> OnlineOutcome,
{
    let online = policy(trace, model).cost;
    let offline = optimal(trace, model).cost;
    let ratio = if offline == 0.0 {
        1.0
    } else {
        online / offline
    };
    RatioSample {
        online,
        offline,
        ratio,
    }
}

/// One degradation measurement of a fault-aware policy.
///
/// The competitive ratio benchmarks the policy against the off-line
/// optimum on an ideal fleet; the degradation ratio benchmarks the same
/// policy against *itself* on an ideal fleet. Both are reported so a run
/// can answer "how far from optimal" and "how much did the faults cost"
/// in one sample.
#[derive(Debug, Clone, Copy)]
pub struct DegradationSample {
    /// Policy cost with `plan` applied.
    pub degraded: f64,
    /// Policy cost under [`FaultPlan::none`].
    pub fault_free: f64,
    /// `degraded / fault_free` (`1` when the fault-free cost is zero).
    pub degradation_ratio: f64,
    /// Competitive ratio of the *fault-free* run versus the off-line
    /// optimum, for calibration.
    pub competitive: RatioSample,
}

/// Measures a fault-aware policy's degradation ratio on one trace.
///
/// `policy` is run twice: once under `plan` and once under
/// [`FaultPlan::none`]. Because resilient policies are deterministic for
/// a fixed plan, the quotient isolates exactly the cost of the injected
/// faults.
pub fn degradation_ratio<F>(
    trace: &SingleItemTrace,
    model: &CostModel,
    plan: &FaultPlan,
    policy: F,
) -> DegradationSample
where
    F: Fn(&SingleItemTrace, &CostModel, &FaultPlan) -> ResilientOutcome,
{
    let degraded = policy(trace, model, plan).cost;
    let fault_free = policy(trace, model, &FaultPlan::none()).cost;
    let degradation_ratio = if fault_free == 0.0 {
        1.0
    } else {
        degraded / fault_free
    };
    let offline = optimal(trace, model).cost;
    let competitive = RatioSample {
        online: fault_free,
        offline,
        ratio: if offline == 0.0 {
            1.0
        } else {
            fault_free / offline
        },
    };
    DegradationSample {
        degraded,
        fault_free,
        degradation_ratio,
        competitive,
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::resilient::resilient_ski_rental;
    use mcs_model::rng::Rng;

    fn random_trace(rng: &mut Rng) -> SingleItemTrace {
        let m = rng.gen_range(2u32..=5);
        let n = rng.gen_range(1usize..=14);
        let mut ticks: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..=80)).collect();
        ticks.sort_unstable();
        ticks.dedup();
        let pairs: Vec<(f64, u32)> = ticks
            .iter()
            .map(|&t| (f64::from(t) / 10.0, rng.gen_range(0..m)))
            .collect();
        SingleItemTrace::from_pairs(m, &pairs)
    }

    #[test]
    fn empty_plan_has_degradation_ratio_exactly_one() {
        for case in 0..32 {
            let mut rng = Rng::seed_from_u64(0x11A2 + case);
            let trace = random_trace(&mut rng);
            let model = CostModel::paper_example();
            let s = degradation_ratio(&trace, &model, &FaultPlan::none(), resilient_ski_rental);
            assert_eq!(s.degraded.to_bits(), s.fault_free.to_bits(), "case {case}");
            assert_eq!(s.degradation_ratio, 1.0, "case {case}");
            assert!(s.competitive.ratio >= 1.0 - 1e-9, "case {case}");
        }
    }

    #[test]
    fn faults_never_make_the_policy_cheaper_than_its_transfer_floor() {
        // Degradation can in principle dip below 1 (a crash can free the
        // policy from rent it would have paid), but the degraded run must
        // still pay for every request somehow: at least one λ per miss or
        // origin read. We assert the ratio is finite, positive, and that
        // sweeping the fault rate up never loses requests.
        let mut rng = Rng::seed_from_u64(0xFA57);
        let trace = random_trace(&mut rng);
        let model = CostModel::paper_example();
        for (i, rate) in [0.05, 0.2, 0.5].iter().enumerate() {
            let plan = FaultPlan::random(7 + i as u64, trace.servers, 9.0, *rate, 1.5, 0.2);
            let s = degradation_ratio(&trace, &model, &plan, resilient_ski_rental);
            assert!(s.degradation_ratio.is_finite() && s.degradation_ratio > 0.0);
            let out = resilient_ski_rental(&trace, &model, &plan);
            assert_eq!(
                out.hits + out.transfers,
                trace.points.len(),
                "every request is served at rate {rate}"
            );
        }
    }

    #[test]
    fn blackout_degradation_is_reported_above_one_on_a_busy_trace() {
        // Repeated requests at one server: fault-free ski-rental caches
        // once and hits thereafter; under a blackout every request pays λ.
        let pairs: Vec<(f64, u32)> = (1..=8).map(|k| (k as f64, 1u32)).collect();
        let trace = SingleItemTrace::from_pairs(2, &pairs);
        let model = CostModel::paper_example();
        let plan = FaultPlan::total_blackout(trace.servers);
        let s = degradation_ratio(&trace, &model, &plan, resilient_ski_rental);
        assert!(
            s.degradation_ratio > 1.0,
            "blackout should inflate cost, got {}",
            s.degradation_ratio
        );
    }
}

#[cfg(all(test, feature = "proptest"))]
mod tests {
    use super::*;
    use crate::extremes::{always_transfer, cache_everywhere};
    use crate::ski_rental::ski_rental;
    use proptest::prelude::*;

    fn trace_strategy() -> impl Strategy<Value = SingleItemTrace> {
        (1u32..=4, 1usize..=14).prop_flat_map(|(m, n)| {
            (
                Just(m),
                proptest::collection::vec(1u32..=80, n),
                proptest::collection::vec(0u32..m, n),
            )
                .prop_map(|(m, mut ticks, servers)| {
                    ticks.sort_unstable();
                    ticks.dedup();
                    let pairs: Vec<(f64, u32)> = ticks
                        .iter()
                        .zip(servers.iter())
                        .map(|(&t, &s)| (t as f64 / 10.0, s))
                        .collect();
                    SingleItemTrace::from_pairs(m, &pairs)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn ski_rental_is_at_least_optimal_and_boundedly_competitive(
            trace in trace_strategy(),
            mu in 1u32..=30,
            la in 1u32..=30,
        ) {
            let model = CostModel::new(mu as f64 / 10.0, la as f64 / 10.0, 0.8).unwrap();
            let s = competitive_ratio(&trace, &model, ski_rental);
            prop_assert!(s.online >= s.offline - 1e-9);
            // The classic rent-or-buy structure gives a small-constant
            // bound; we assert the 3-competitive figure reported by [6]
            // with head-room for the finite-horizon clamp.
            prop_assert!(
                s.ratio <= 3.0 + 1e-9,
                "ski-rental ratio {} exceeded 3", s.ratio
            );
        }

        #[test]
        fn extremes_are_feasible_and_at_least_optimal(trace in trace_strategy()) {
            let model = CostModel::paper_example();
            for policy in [always_transfer, cache_everywhere] {
                let out = policy(&trace, &model);
                prop_assert!(out.schedule.validate(&trace).is_ok());
                let s = competitive_ratio(&trace, &model, policy);
                prop_assert!(s.online >= s.offline - 1e-9);
            }
        }

        #[test]
        fn ski_rental_schedule_replays_to_reported_cost(trace in trace_strategy()) {
            let model = CostModel::new(1.0, 1.7, 0.8).unwrap();
            let out = ski_rental(&trace, &model);
            prop_assert!(out.schedule.validate(&trace).is_ok());
            let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
            prop_assert!(
                mcs_model::approx_eq(replayed, out.cost),
                "replayed {replayed} != reported {}", out.cost
            );
        }
    }
}

//! The two trivial on-line policies bracketing ski-rental.
//!
//! * [`always_transfer`] — keep nothing but the moving backbone copy;
//!   every remote request pays a transfer. Optimal when `λ ≪ μ`.
//! * [`cache_everywhere`] — never drop a delivered copy; every server pays
//!   caching from its first touch to the horizon. Optimal when `μ ≪ λ`.
//!
//! Both emit feasible schedules; the harness uses them to show where the
//! ski-rental hedge wins (the E10 table).

use std::collections::HashMap;

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId, TimePoint};

use crate::ski_rental::OnlineOutcome;

/// Keep only the backbone (most recent request's copy); transfer on every
/// remote request.
pub fn always_transfer(trace: &SingleItemTrace, model: &CostModel) -> OnlineOutcome {
    let mu = model.mu();
    let lambda = model.lambda();
    let mut schedule = Schedule::new();
    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut hits = 0usize;

    let mut backbone = ServerId::ORIGIN;
    let mut backbone_since: TimePoint = 0.0;

    for p in &trace.points {
        if p.server == backbone {
            hits += 1;
        } else {
            // Settle the old backbone epoch, transfer, move the backbone.
            cost += mu * (p.time - backbone_since);
            schedule.cache(backbone, backbone_since, p.time);
            schedule.transfer(backbone, p.server, p.time);
            cost += lambda;
            transfers += 1;
            backbone = p.server;
            backbone_since = p.time;
        }
    }
    // Final epoch up to the horizon.
    if let Some(last) = trace.points.last() {
        if last.time > backbone_since {
            cost += mu * (last.time - backbone_since);
            schedule.cache(backbone, backbone_since, last.time);
        }
    }

    OnlineOutcome {
        cost,
        transfers,
        hits,
        schedule,
    }
}

/// Never drop a copy: each touched server caches from first delivery to
/// the horizon.
pub fn cache_everywhere(trace: &SingleItemTrace, model: &CostModel) -> OnlineOutcome {
    let mu = model.mu();
    let lambda = model.lambda();
    let mut first_touch: HashMap<ServerId, TimePoint> = HashMap::new();
    first_touch.insert(ServerId::ORIGIN, 0.0);

    let mut schedule = Schedule::new();
    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut hits = 0usize;
    let mut last_server = ServerId::ORIGIN;

    for p in &trace.points {
        if let std::collections::hash_map::Entry::Vacant(e) = first_touch.entry(p.server) {
            schedule.transfer(last_server, p.server, p.time);
            cost += lambda;
            transfers += 1;
            e.insert(p.time);
        } else {
            hits += 1;
        }
        last_server = p.server;
    }
    let horizon = trace.points.last().map_or(0.0, |p| p.time);
    // Server order, not hash order: keeps schedule emission and the float
    // summation order of `cost` independent of the hasher seed.
    let mut touched: Vec<_> = first_touch.into_iter().collect();
    touched.sort_unstable_by_key(|&(s, _)| s);
    for (s, since) in touched {
        if horizon > since {
            cost += mu * (horizon - since);
            schedule.cache(s, since, horizon);
        }
    }

    OnlineOutcome {
        cost,
        transfers,
        hits,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;

    #[test]
    fn always_transfer_costs_backbone_plus_misses() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (3.0, 1)]);
        let model = CostModel::paper_example();
        let out = always_transfer(&trace, &model);
        // Backbone sweeps the whole horizon (3μ) plus 3 transfers.
        assert!(approx_eq(out.cost, 3.0 + 3.0));
        assert_eq!(out.transfers, 3);
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(out.schedule.cost(1.0, 1.0).total, out.cost));
    }

    #[test]
    fn cache_everywhere_transfers_once_per_server() {
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (3.0, 1), (3.5, 2)]);
        let model = CostModel::paper_example();
        let out = cache_everywhere(&trace, &model);
        assert_eq!(out.transfers, 2);
        assert_eq!(out.hits, 2);
        // s1: [0,3.5], s2: [1,3.5], s3: [2,3.5].
        assert!(approx_eq(out.cost, 3.5 + 2.5 + 1.5 + 2.0));
        out.schedule.validate(&trace).unwrap();
        assert!(approx_eq(out.schedule.cost(1.0, 1.0).total, out.cost));
    }

    #[test]
    fn extremes_bracket_by_regime() {
        use crate::ski_rental::ski_rental;
        // Transfer-cheap regime: always_transfer should beat cache_everywhere.
        let cheap_transfer = CostModel::new(10.0, 0.1, 0.8).unwrap();
        // Cache-cheap regime: the reverse.
        let cheap_cache = CostModel::new(0.05, 10.0, 0.8).unwrap();
        let pts: Vec<(f64, u32)> = (1..=10).map(|i| (i as f64, (i % 3) as u32)).collect();
        let trace = SingleItemTrace::from_pairs(3, &pts);

        let at = always_transfer(&trace, &cheap_transfer).cost;
        let ce = cache_everywhere(&trace, &cheap_transfer).cost;
        assert!(at < ce);

        let at = always_transfer(&trace, &cheap_cache).cost;
        let ce = cache_everywhere(&trace, &cheap_cache).cost;
        assert!(ce < at);

        // Ski-rental is never worse than twice the better extreme here.
        let sr = ski_rental(&trace, &cheap_cache).cost;
        assert!(sr <= 2.0 * ce.min(at) + 1e-9);
    }
}

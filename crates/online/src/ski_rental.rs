//! The ski-rental on-line caching policy.
//!
//! Rules (applied per request, with no knowledge of the future):
//!
//! 1. A copy delivered to or used at a server is *rented*: it stays cached
//!    for `λ/μ` time units after its last use (by then the rent equals one
//!    transfer — the ski-rental break-even) and is then dropped.
//! 2. The copy at the most recent request's server is the *backbone*: it
//!    never expires while it is the backbone, guaranteeing a transfer
//!    source for the next request. When the backbone moves, the old one is
//!    demoted to an ordinary rented copy (break-even hedge from the moment
//!    of demotion).
//! 3. A request at a server with a live copy is served locally (renewing
//!    the rent); otherwise a transfer (`λ`) delivers a fresh copy.
//!
//! At the end of the input the harness clamps every open rent at the last
//! request time (finite-horizon evaluation; an on-line process would keep
//! paying its hedges).

use std::collections::HashMap;

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, Schedule, ServerId, TimePoint};

/// Result of an on-line policy run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Total cost actually paid.
    pub cost: f64,
    /// Number of transfers (misses).
    pub transfers: usize,
    /// Number of locally served requests (hits).
    pub hits: usize,
    /// The realised schedule (feasible; replayable).
    pub schedule: Schedule,
}

/// One live copy epoch.
#[derive(Debug, Clone, Copy)]
struct Copy {
    /// When this epoch began (for schedule emission).
    since: TimePoint,
    /// Drop deadline; `f64::INFINITY` while backbone.
    deadline: TimePoint,
}

/// Runs the ski-rental policy over a trace.
pub fn ski_rental(trace: &SingleItemTrace, model: &CostModel) -> OnlineOutcome {
    let _span = mcs_obs::span("online.ski_rental");
    mcs_obs::counter_add("online.ski_rental.requests", trace.len() as u64);
    let mu = model.mu();
    let lambda = model.lambda();
    let keep = lambda / mu;

    let mut schedule = Schedule::new();
    let mut copies: HashMap<ServerId, Copy> = HashMap::new();
    // Origin placement: backbone until the first request.
    copies.insert(
        ServerId::ORIGIN,
        Copy {
            since: 0.0,
            deadline: f64::INFINITY,
        },
    );
    let mut backbone = ServerId::ORIGIN;
    let mut cost = 0.0;
    let mut transfers = 0usize;
    let mut hits = 0usize;

    let horizon = trace.points.last().map_or(0.0, |p| p.time);

    for p in &trace.points {
        let t = p.time;
        // Drop copies whose rent ran out strictly before now; their cache
        // cost is settled at the actual drop instant. Sorted by server so
        // the emission order (and the floating-point summation order of
        // `cost`) does not depend on the hash map's per-thread seed.
        let mut expired: Vec<ServerId> = copies
            .iter()
            .filter(|(_, c)| c.deadline < t)
            .map(|(&s, _)| s)
            .collect();
        expired.sort_unstable();
        for s in expired {
            let c = copies.remove(&s).expect("present");
            let end = c.deadline.min(horizon).max(c.since);
            cost += mu * (end - c.since);
            schedule.cache(s, c.since, end);
        }

        // Serve.
        if let std::collections::hash_map::Entry::Vacant(e) = copies.entry(p.server) {
            // Transfer from the backbone (always alive: its deadline is
            // either ∞ or ≥ its demotion time ≥ the previous request, and
            // rents only expire strictly before t — the backbone was
            // demoted at the previous request with deadline ≥ prev + λ/μ;
            // if that deadline < t it expired above, but then the *current*
            // backbone (set at the previous request) is at the previous
            // request's server and cannot have expired... it IS the
            // backbone with deadline ∞ until this very moment.)
            schedule.transfer(backbone, p.server, t);
            cost += lambda;
            transfers += 1;
            e.insert(Copy {
                since: t,
                deadline: f64::INFINITY, // set properly below
            });
        } else {
            hits += 1;
        }

        // Move the backbone to this server; demote the old one.
        if backbone != p.server {
            if let Some(old) = copies.get_mut(&backbone) {
                if old.deadline.is_infinite() {
                    old.deadline = t + keep;
                }
            }
            backbone = p.server;
        }
        // Renew the rent at the serving server and mark it backbone.
        let c = copies.get_mut(&p.server).expect("just ensured");
        c.deadline = f64::INFINITY;
    }

    // Finite-horizon clamp: settle every open epoch at the horizon, in
    // server order (same seed-independence argument as the drop loop).
    let mut open: Vec<(ServerId, Copy)> = copies.into_iter().collect();
    open.sort_unstable_by_key(|&(s, _)| s);
    for (s, c) in open {
        let end = c.deadline.min(horizon).max(c.since);
        cost += mu * (end - c.since);
        if end > c.since {
            schedule.cache(s, c.since, end);
        } else if s != ServerId::ORIGIN {
            // Zero-length epoch from a transfer at the horizon: nothing to
            // cache, the transfer itself already serves the request.
        }
    }

    OnlineOutcome {
        cost,
        transfers,
        hits,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::approx_eq;
    use mcs_offline::optimal;

    fn unit_model() -> CostModel {
        CostModel::paper_example()
    }

    #[test]
    fn empty_trace_is_free() {
        let trace = SingleItemTrace::from_pairs(2, &[]);
        let out = ski_rental(&trace, &unit_model());
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.transfers, 0);
    }

    #[test]
    fn local_chain_is_all_hits() {
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 0), (2.0, 0), (3.0, 0)]);
        let out = ski_rental(&trace, &unit_model());
        assert_eq!(out.hits, 3);
        assert_eq!(out.transfers, 0);
        // Backbone cached at s1 for the whole horizon.
        assert!(approx_eq(out.cost, 3.0));
    }

    #[test]
    fn miss_triggers_transfer_and_rent() {
        // One remote request: backbone caches [0,1], transfer at 1.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1)]);
        let out = ski_rental(&trace, &unit_model());
        assert_eq!(out.transfers, 1);
        assert!(approx_eq(out.cost, 1.0 + 1.0));
    }

    #[test]
    fn rent_serves_quick_returns() {
        // s2 requested twice 0.5 apart (λ/μ = 1): the second is a hit.
        let trace = SingleItemTrace::from_pairs(2, &[(1.0, 1), (1.5, 1)]);
        let out = ski_rental(&trace, &unit_model());
        assert_eq!(out.transfers, 1);
        assert_eq!(out.hits, 1);
    }

    #[test]
    fn expired_rent_causes_second_transfer() {
        // s2 at t=1, s3 at t=2, s2 again at t=5: the s2 rent (demoted at
        // t=2, drop at 3) has expired by t=5 → transfer again.
        let trace = SingleItemTrace::from_pairs(3, &[(1.0, 1), (2.0, 2), (5.0, 1)]);
        let out = ski_rental(&trace, &unit_model());
        assert_eq!(out.transfers, 3);
    }

    #[test]
    fn schedule_replays_to_the_same_cost() {
        let trace = SingleItemTrace::from_pairs(
            4,
            &[(0.5, 1), (0.8, 2), (1.4, 0), (2.6, 1), (3.2, 3), (4.0, 2)],
        );
        let model = unit_model();
        let out = ski_rental(&trace, &model);
        out.schedule.validate(&trace).unwrap();
        let replayed = out.schedule.cost(model.mu(), model.lambda()).total;
        assert!(
            approx_eq(replayed, out.cost),
            "replayed {replayed} != reported {}",
            out.cost
        );
    }

    #[test]
    fn never_beats_offline_optimal() {
        let model = unit_model();
        for seed in 0..20u64 {
            // Deterministic pseudo-random layout without rand: mix the seed.
            let pts: Vec<(f64, u32)> = (1..=12)
                .map(|i| {
                    let h = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i * 2654435761);
                    ((i as f64) * 0.7, ((h >> 33) % 3) as u32)
                })
                .collect();
            let trace = SingleItemTrace::from_pairs(3, &pts);
            let on = ski_rental(&trace, &model);
            let off = optimal(&trace, &model);
            assert!(
                on.cost >= off.cost - 1e-9,
                "online {} beat offline {} (seed {seed})",
                on.cost,
                off.cost
            );
        }
    }

    #[test]
    fn output_is_identical_across_threads() {
        // `std::collections::HashMap` seeds its hasher per thread; the
        // policy must not leak iteration order into the schedule or into
        // the floating-point summation order of the cost.
        let model = unit_model();
        let pts: Vec<(f64, u32)> = (1..=64)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (i as f64 * 0.9, ((h >> 33) % 6) as u32)
            })
            .collect();
        let trace = SingleItemTrace::from_pairs(6, &pts);
        let here = ski_rental(&trace, &model);
        let elsewhere = std::thread::scope(|scope| {
            scope
                .spawn(|| ski_rental(&trace, &model))
                .join()
                .expect("worker")
        });
        assert_eq!(here.cost.to_bits(), elsewhere.cost.to_bits());
        assert_eq!(here.schedule, elsewhere.schedule);
    }
}

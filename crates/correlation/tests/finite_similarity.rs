//! Property test: no similarity surface in this crate can emit a
//! non-finite value, for any valid request sequence.
//!
//! The dangerous corner is a zero union — `|d_a| + |d_b| − |(d_a,d_b)|
//! = 0` — which is reachable whenever the item universe is larger than
//! the set of items the trace actually touches: two never-requested
//! items divide 0/0 without the guard in `jaccard_from_counts`. The
//! generator here deliberately over-sizes the universe so every run
//! exercises that corner, then sweeps every backend (dense, sparse,
//! bitset, matrix, streaming) over every pair.

use mcs_correlation::{
    BitsetIncidence, CoOccurrence, JaccardMatrix, PairwiseSimilarity, SparseCoOccurrence,
    StreamingCooccurrence,
};
use mcs_model::request::{RequestSeq, RequestSeqBuilder};
use mcs_model::rng::Rng;
use mcs_model::ItemId;

/// A valid sequence over a `k`-item universe of which only the first
/// `used` items can ever be requested (`used < k` leaves silent items).
fn sequence(seed: u64, n: usize, k: u32, used: u32) -> RequestSeq {
    assert!(used >= 1 && used <= k);
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RequestSeqBuilder::new(4, k);
    let mut t = 0.0;
    for _ in 0..n {
        t += 0.05 + rng.gen_f64();
        let first = rng.gen_range(0u32..used);
        let mut items = vec![first];
        // Multi-item requests create co-occurrence; duplicates filtered.
        for _ in 0..rng.gen_range(0u32..3) {
            let next = rng.gen_range(0u32..used);
            if !items.contains(&next) {
                items.push(next);
            }
        }
        b = b.push(rng.gen_range(0u32..4), t, items);
    }
    b.build().unwrap()
}

fn assert_finite(backend: &str, seq_label: &str, a: ItemId, b: ItemId, v: f64) {
    assert!(
        v.is_finite(),
        "{backend} on {seq_label}: similarity({a:?}, {b:?}) = {v} is not finite"
    );
    assert!(
        (0.0..=1.0).contains(&v),
        "{backend} on {seq_label}: similarity({a:?}, {b:?}) = {v} outside [0, 1]"
    );
}

#[test]
fn no_similarity_surface_emits_non_finite_values() {
    let shapes = [
        // (n, k, used): over-sized universes keep zero-union pairs alive.
        (0usize, 5u32, 1u32),
        (1, 6, 1),
        (40, 8, 3),
        (200, 16, 7),
        (500, 24, 24),
        (300, 32, 2),
    ];
    for (case, &(n, k, used)) in shapes.iter().enumerate() {
        let seq = sequence(0xF1D0 + case as u64, n, k, used);
        let label = format!("seq(n={n}, k={k}, used={used})");

        let dense = CoOccurrence::from_sequence_serial(&seq);
        let sparse = SparseCoOccurrence::from_sequence_serial(&seq);
        let bitset = BitsetIncidence::from_sequence(&seq);
        let matrix = JaccardMatrix::from_sequence(&seq);
        let mut streaming = StreamingCooccurrence::new(0.9);
        for r in seq.requests() {
            streaming.observe(r);
        }

        for a in 0..k {
            for b in 0..k {
                let (a, b) = (ItemId(a), ItemId(b));
                assert_finite("dense", &label, a, b, dense.jaccard(a, b));
                assert_finite("sparse", &label, a, b, sparse.jaccard(a, b));
                assert_finite("bitset", &label, a, b, bitset.jaccard(a, b));
                assert_finite("matrix", &label, a, b, matrix.get(a, b));
                assert_finite("streaming", &label, a, b, streaming.jaccard(a, b));
                assert_finite(
                    "sparse-trait",
                    &label,
                    a,
                    b,
                    PairwiseSimilarity::similarity(&sparse, a, b),
                );
                assert_finite(
                    "bitset-trait",
                    &label,
                    a,
                    b,
                    PairwiseSimilarity::similarity(&bitset, a, b),
                );
            }
        }

        // Candidate enumerations must be finite too — they feed the
        // matching stage's total-order sort directly.
        for (backend, pairs) in [
            ("sparse.pairs", sparse.pairs()),
            ("bitset.pairs", bitset.pairs()),
            ("matrix.pairs", matrix.pairs()),
            ("streaming.pairs", streaming.pairs()),
        ] {
            for (a, b, v) in pairs {
                assert_finite(backend, &label, a, b, v);
            }
        }
    }
}

/// The guarded division itself, pinned at the extreme: a universe where
/// *no* item is ever requested (every pair divides 0/0 unguarded).
#[test]
fn all_silent_universe_is_all_zeros() {
    let seq = RequestSeqBuilder::new(2, 6)
        .push(0u32, 1.0, [0u32])
        .build()
        .unwrap();
    let dense = CoOccurrence::from_sequence_serial(&seq);
    let bitset = BitsetIncidence::from_sequence(&seq);
    let sparse = SparseCoOccurrence::from_sequence_serial(&seq);
    for a in 1..6 {
        for b in 1..6 {
            if a == b {
                continue;
            }
            let (a, b) = (ItemId(a), ItemId(b));
            assert_eq!(dense.jaccard(a, b), 0.0);
            assert_eq!(sparse.jaccard(a, b), 0.0);
            assert_eq!(bitset.jaccard(a, b), 0.0);
        }
    }
}

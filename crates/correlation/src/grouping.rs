//! Multi-item package grouping — the paper's future-work extension.
//!
//! "Although as a proof of concept, the proposed algorithm only considers
//! to pack two correlative data items, it can be naturally extended to the
//! case where multiple data items could be packed." This module provides
//! that extension: greedy agglomerative grouping under *average-linkage*
//! Jaccard similarity, i.e. two groups merge while the mean pairwise
//! similarity across the cut stays above the threshold.

use crate::jaccard::JaccardMatrix;
use mcs_model::ItemId;

/// A grouping of items into packages of size ≥ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Item groups; each inner vector is sorted ascending. Groups of size 1
    /// are served individually.
    pub groups: Vec<Vec<ItemId>>,
    /// The threshold used.
    pub theta: f64,
}

impl Grouping {
    /// Number of groups with at least two members.
    pub fn package_count(&self) -> usize {
        self.groups.iter().filter(|g| g.len() >= 2).count()
    }

    /// Total items across all groups.
    pub fn total_items(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

/// Mean pairwise similarity across two groups.
fn average_linkage(matrix: &JaccardMatrix, a: &[ItemId], b: &[ItemId]) -> f64 {
    let mut total = 0.0;
    for &x in a {
        for &y in b {
            total += matrix.get(x, y);
        }
    }
    total / (a.len() * b.len()) as f64
}

/// Greedy agglomerative grouping: repeatedly merge the two groups with the
/// highest average-linkage similarity while it exceeds `theta`.
/// `max_group` caps package size (`usize::MAX` for unbounded; the paper's
/// algorithm corresponds to `max_group = 2`).
pub fn agglomerative_grouping(matrix: &JaccardMatrix, theta: f64, max_group: usize) -> Grouping {
    let k = matrix.items();
    let mut groups: Vec<Vec<ItemId>> = (0..k as u32).map(|i| vec![ItemId(i)]).collect();

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if groups[i].len() + groups[j].len() > max_group {
                    continue;
                }
                let w = average_linkage(matrix, &groups[i], &groups[j]);
                let better = match best {
                    None => w > theta,
                    Some((_, _, bw)) => w > theta && w > bw,
                };
                if better {
                    best = Some((i, j, w));
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let mut merged = groups.swap_remove(j);
                merged.append(&mut groups[i]);
                merged.sort();
                groups[i] = merged;
            }
            None => break,
        }
    }

    for g in &mut groups {
        g.sort();
    }
    groups.sort();
    Grouping { groups, theta }
}

mcs_model::impl_to_json!(Grouping { groups, theta });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::CoOccurrence;
    use mcs_model::RequestSeqBuilder;

    /// Three items that always co-occur, plus an unrelated fourth.
    fn trio_matrix() -> JaccardMatrix {
        let mut b = RequestSeqBuilder::new(1, 4);
        let mut t = 0.0;
        for _ in 0..5 {
            t += 1.0;
            b = b.push(0u32, t, [0, 1, 2]);
        }
        t += 1.0;
        b = b.push(0u32, t, [3]);
        JaccardMatrix::from_cooccurrence(&CoOccurrence::from_sequence(&b.build().unwrap()))
    }

    #[test]
    fn groups_the_trio_and_isolates_the_stranger() {
        let g = agglomerative_grouping(&trio_matrix(), 0.3, usize::MAX);
        assert_eq!(g.package_count(), 1);
        assert_eq!(g.total_items(), 4);
        assert!(g.groups.contains(&vec![ItemId(0), ItemId(1), ItemId(2)]));
        assert!(g.groups.contains(&vec![ItemId(3)]));
    }

    #[test]
    fn max_group_two_reduces_to_pairing() {
        let g = agglomerative_grouping(&trio_matrix(), 0.3, 2);
        // Only a pair can form out of the trio; the third stays single.
        assert_eq!(g.package_count(), 1);
        let pair = g.groups.iter().find(|x| x.len() == 2).unwrap();
        assert_eq!(pair.len(), 2);
        assert_eq!(g.groups.iter().filter(|x| x.len() == 1).count(), 2);
    }

    #[test]
    fn threshold_blocks_all_merging() {
        let g = agglomerative_grouping(&trio_matrix(), 1.1, usize::MAX);
        assert_eq!(g.package_count(), 0);
        assert_eq!(g.groups.len(), 4);
    }
}

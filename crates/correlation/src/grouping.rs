//! K-package matching — agglomerative merging under average linkage.
//!
//! "Although as a proof of concept, the proposed algorithm only considers
//! to pack two correlative data items, it can be naturally extended to the
//! case where multiple data items could be packed." This module provides
//! that extension as the crate's real K path: greedy agglomerative
//! grouping under *average-linkage* Jaccard similarity — two groups merge
//! while the mean pairwise similarity across the cut strictly exceeds the
//! threshold — generic over the similarity backend via
//! [`PairwiseSimilarity`], so the dense [`JaccardMatrix`] and the sparse
//! [`SparseCoOccurrence`] (memory independent of `k²`) drive the *same*
//! merge loop and tie-breaking. The per-round candidate scan fans out
//! over worker threads with [`mcs_model::par::par_map`], reduced in row
//! order so the outcome is bit-identical to the serial scan for any
//! thread count.
//!
//! The result is a [`PackageSet`] — the unified Phase-1 outcome shared
//! with the pairwise matcher ([`crate::matching`]).

use crate::jaccard::JaccardMatrix;
use crate::package_set::PackageSet;
use crate::sparse::SparseCoOccurrence;
use mcs_model::par::par_map;
use mcs_model::ItemId;

/// A symmetric pairwise similarity oracle over items `0..items()` — the
/// seam that lets the agglomerative matcher run identically over the
/// dense matrix and the sparse hash table.
pub trait PairwiseSimilarity {
    /// Number of items `k`.
    fn items(&self) -> usize;
    /// Similarity of `a` and `b` (symmetric; `1.0` on the diagonal).
    fn similarity(&self, a: ItemId, b: ItemId) -> f64;
}

impl PairwiseSimilarity for JaccardMatrix {
    fn items(&self) -> usize {
        JaccardMatrix::items(self)
    }
    fn similarity(&self, a: ItemId, b: ItemId) -> f64 {
        self.get(a, b)
    }
}

impl PairwiseSimilarity for SparseCoOccurrence {
    fn items(&self) -> usize {
        SparseCoOccurrence::items(self)
    }
    fn similarity(&self, a: ItemId, b: ItemId) -> f64 {
        self.jaccard(a, b)
    }
}

/// Co-access totals behind the adaptive θ rule — the seam that lets
/// [`adaptive_theta`] run identically over the hash and bitset kernels
/// (both count the same integers, so the derived θ is bit-identical).
pub trait CoAccessStats {
    /// `Σ|d_i|` — total item accesses observed in the prescan.
    fn total_item_accesses(&self) -> usize;
    /// Total co-occurrence mass over observed pairs.
    fn total_pair_cooccurrences(&self) -> usize;
}

impl CoAccessStats for SparseCoOccurrence {
    fn total_item_accesses(&self) -> usize {
        SparseCoOccurrence::total_item_accesses(self)
    }
    fn total_pair_cooccurrences(&self) -> usize {
        SparseCoOccurrence::total_pair_cooccurrences(self)
    }
}

impl CoAccessStats for crate::incidence::BitsetIncidence {
    fn total_item_accesses(&self) -> usize {
        crate::incidence::BitsetIncidence::total_item_accesses(self)
    }
    fn total_pair_cooccurrences(&self) -> usize {
        crate::incidence::BitsetIncidence::total_pair_cooccurrences(self)
    }
}

/// Mean pairwise similarity across two groups.
fn average_linkage<S: PairwiseSimilarity + ?Sized>(sim: &S, a: &[ItemId], b: &[ItemId]) -> f64 {
    let mut total = 0.0;
    for &x in a {
        for &y in b {
            total += sim.similarity(x, y);
        }
    }
    total / (a.len() * b.len()) as f64
}

/// Below this many live groups the per-round candidate scan stays serial
/// (thread fan-out costs more than it saves); above it, rows fan out via
/// `par_map`. Either path produces the identical best candidate.
const PAR_SCAN_MIN_GROUPS: usize = 64;

/// Best merge candidate of one round: the `(i, j, w)` with the highest
/// average linkage `w > theta`, ties broken toward the smallest `(i, j)`
/// scan position (first found wins, exactly like the serial double loop).
fn best_candidate<S: PairwiseSimilarity + Sync + ?Sized>(
    sim: &S,
    groups: &[Vec<ItemId>],
    theta: f64,
    max_group: usize,
) -> Option<(usize, usize, f64)> {
    // One row's best partner: scan j > i ascending, keep strictly-greater
    // linkage — identical to the inner loop of the serial scan.
    let row_best = |i: usize| -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for j in (i + 1)..groups.len() {
            if groups[i].len() + groups[j].len() > max_group {
                continue;
            }
            let w = average_linkage(sim, &groups[i], &groups[j]);
            let better = match best {
                None => w > theta,
                Some((_, bw)) => w > theta && w > bw,
            };
            if better {
                best = Some((j, w));
            }
        }
        best
    };
    let per_row: Vec<Option<(usize, f64)>> = if groups.len() >= PAR_SCAN_MIN_GROUPS {
        let rows: Vec<usize> = (0..groups.len()).collect();
        par_map(&rows, |&i| row_best(i))
    } else {
        (0..groups.len()).map(row_best).collect()
    };
    // Cross-row reduction in row order with a strict comparison keeps the
    // serial first-found tie-break: an equal-linkage later row never
    // displaces an earlier one.
    let mut best: Option<(usize, usize, f64)> = None;
    for (i, rb) in per_row.into_iter().enumerate() {
        if let Some((j, w)) = rb {
            if best.is_none_or(|(_, _, bw)| w > bw) {
                best = Some((i, j, w));
            }
        }
    }
    best
}

/// Greedy agglomerative K-matching over any similarity backend:
/// repeatedly merge the two groups with the highest average-linkage
/// similarity while it strictly exceeds `theta`. `max_group` caps the
/// package size (`usize::MAX` for unbounded; the paper's pairwise shape
/// corresponds to `max_group = 2`).
///
/// Packages are returned fully sorted (members ascending, packages in
/// ascending lexicographic order) so the outcome is independent of the
/// merge history's internal list order.
pub fn agglomerative_packages<S: PairwiseSimilarity + Sync + ?Sized>(
    sim: &S,
    theta: f64,
    max_group: usize,
) -> PackageSet {
    let k = sim.items();
    let mut groups: Vec<Vec<ItemId>> = (0..k as u32).map(|i| vec![ItemId(i)]).collect();

    while let Some((i, j, _)) = best_candidate(sim, &groups, theta, max_group) {
        let mut merged = groups.swap_remove(j);
        merged.append(&mut groups[i]);
        merged.sort();
        groups[i] = merged;
    }

    for g in &mut groups {
        g.sort();
    }
    groups.sort();
    let (packages, singles): (Vec<_>, Vec<_>) = groups.into_iter().partition(|g| g.len() >= 2);
    let singletons = singles.into_iter().map(|g| g[0]).collect();
    PackageSet::new(packages, singletons, theta)
}

/// Agglomerative K-matching over the dense Jaccard matrix — the historical
/// entry point, now returning the unified [`PackageSet`].
pub fn agglomerative_grouping(matrix: &JaccardMatrix, theta: f64, max_group: usize) -> PackageSet {
    agglomerative_packages(matrix, theta, max_group)
}

/// Agglomerative K-matching over sparse statistics: the greedy hypergraph
/// matcher for large catalogs, memory independent of `k²`. For any
/// `θ ≥ 0` it packs **exactly** what [`agglomerative_grouping`] packs on
/// the same sequence — unobserved pairs have `J = 0`, which both backends
/// report identically — a property the workspace tests pin on random
/// traces.
pub fn k_packages_sparse(co: &SparseCoOccurrence, theta: f64, max_group: usize) -> PackageSet {
    agglomerative_packages(co, theta, max_group)
}

/// Picks the packing threshold `θ` per trace from the prescan's observed
/// co-request density — the *adaptive* mode of the K-package solver.
///
/// Let `δ` be the fraction of item accesses arriving as part of an
/// observed co-requested pair (each counted pair contributes two
/// accesses, clamped to 1). The rule is
///
/// ```text
/// θ(δ, α) = clamp( (0.15 + 0.5·max(0, α − 0.5)) · (1 − δ), 0.02, 0.95 )
/// ```
///
/// * the **base** grows with `α`: a weak package discount (α near 1)
///   demands stronger correlation evidence before packing pays;
/// * the `(1 − δ)` factor relaxes the threshold on co-access-dense
///   traces, where packages amortise well;
/// * at the paper's `α = 0.8` on a trace with vanishing co-request
///   density the rule reduces to the workspace default `θ = 0.3`.
///
/// Deterministic: a pure function of the prescan counts and `α`,
/// identical over any [`CoAccessStats`] backend.
pub fn adaptive_theta<S: CoAccessStats + ?Sized>(co: &S, alpha: f64) -> f64 {
    let accesses = co.total_item_accesses();
    if accesses == 0 {
        return mcs_model::defaults::DEFAULT_THETA;
    }
    let density = ((2 * co.total_pair_cooccurrences()) as f64 / accesses as f64).min(1.0);
    let base = 0.15 + 0.5 * (alpha - 0.5).max(0.0);
    (base * (1.0 - density)).clamp(0.02, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::CoOccurrence;
    use mcs_model::{approx_eq, RequestSeq, RequestSeqBuilder};

    /// Three items that always co-occur, plus an unrelated fourth.
    fn trio_sequence() -> RequestSeq {
        let mut b = RequestSeqBuilder::new(1, 4);
        let mut t = 0.0;
        for _ in 0..5 {
            t += 1.0;
            b = b.push(0u32, t, [0, 1, 2]);
        }
        t += 1.0;
        b = b.push(0u32, t, [3]);
        b.build().unwrap()
    }

    fn trio_matrix() -> JaccardMatrix {
        JaccardMatrix::from_cooccurrence(&CoOccurrence::from_sequence(&trio_sequence()))
    }

    #[test]
    fn groups_the_trio_and_isolates_the_stranger() {
        let g = agglomerative_grouping(&trio_matrix(), 0.3, usize::MAX);
        assert_eq!(g.package_count(), 1);
        assert_eq!(g.total_items(), 4);
        assert_eq!(g.packages, vec![vec![ItemId(0), ItemId(1), ItemId(2)]]);
        assert_eq!(g.singletons, vec![ItemId(3)]);
        assert_eq!(g.package_of(ItemId(1)).unwrap().len(), 3);
    }

    #[test]
    fn max_group_two_reduces_to_pairing() {
        let g = agglomerative_grouping(&trio_matrix(), 0.3, 2);
        // Only a pair can form out of the trio; the third stays single.
        assert_eq!(g.package_count(), 1);
        assert_eq!(g.packages[0].len(), 2);
        assert_eq!(g.singletons.len(), 2);
        assert!(g.partner(g.packages[0][0]) == Some(g.packages[0][1]));
    }

    #[test]
    fn threshold_blocks_all_merging() {
        let g = agglomerative_grouping(&trio_matrix(), 1.1, usize::MAX);
        assert_eq!(g.package_count(), 0);
        assert_eq!(g.singletons.len(), 4);
    }

    #[test]
    fn sparse_backend_matches_dense_on_the_trio() {
        let seq = trio_sequence();
        let co = SparseCoOccurrence::from_sequence(&seq);
        for max_group in [2usize, 3, usize::MAX] {
            for theta in [0.0, 0.3, 0.6] {
                assert_eq!(
                    k_packages_sparse(&co, theta, max_group),
                    agglomerative_grouping(&trio_matrix(), theta, max_group),
                    "theta = {theta}, max_group = {max_group}"
                );
            }
        }
    }

    #[test]
    fn adaptive_theta_anchors() {
        // Co-request-free trace: the rule reduces to the workspace
        // default θ = 0.3 at the paper's α = 0.8.
        let lonely = RequestSeqBuilder::new(1, 2)
            .push(0u32, 1.0, [0])
            .push(0u32, 2.0, [1])
            .build()
            .unwrap();
        let co = SparseCoOccurrence::from_sequence(&lonely);
        assert!(approx_eq(adaptive_theta(&co, 0.8), 0.3));
        // Stronger discount → lower base.
        assert!(adaptive_theta(&co, 0.4) < adaptive_theta(&co, 0.9));

        // Fully co-requested trace: density 1 → floor.
        let dense = SparseCoOccurrence::from_sequence(&trio_sequence());
        let t = adaptive_theta(&dense, 0.8);
        assert!(t < 0.3, "dense co-access must relax θ, got {t}");
        assert!(t >= 0.02);

        // Empty prescan falls back to the default.
        let empty =
            SparseCoOccurrence::from_sequence(&RequestSeqBuilder::new(1, 0).build().unwrap());
        assert!(approx_eq(adaptive_theta(&empty, 0.8), 0.3));
    }

    #[test]
    fn adaptive_theta_is_deterministic() {
        let seq = trio_sequence();
        let a = adaptive_theta(&SparseCoOccurrence::from_sequence(&seq), 0.7);
        let b = adaptive_theta(&SparseCoOccurrence::from_sequence(&seq), 0.7);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

//! Streaming co-occurrence with exponential decay — Phase 1 for on-line
//! and drift-prone settings.
//!
//! The batch [`crate::CoOccurrence`] weights the whole history equally; a
//! drifting workload needs recency. This structure maintains decayed
//! counts: on each observed request every stored count is implicitly
//! multiplied by `decay^(Δ requests)` (applied lazily via a global scale
//! factor, so `observe` is `O(|D_i|²)` and `jaccard` is `O(1)`).
//!
//! With `decay = 1` the statistics equal the batch counts exactly; the
//! tests assert both that identity and the drift-tracking behaviour.

use std::collections::HashMap;

use mcs_model::{ItemId, Request};

/// A deterministic, serializable image of a [`StreamingCooccurrence`].
///
/// Counts are listed in ascending id order (the `HashMap` iteration
/// order never leaks), and every float is carried verbatim — restoring a
/// snapshot reproduces the source instance *bit for bit*: `jaccard`,
/// `count`, and `pair_count` return identical bits before and after a
/// round-trip, including through the JSON layer (whose shortest-
/// round-trip float writer is exact). This is what makes the serving
/// daemon's checkpoint/recovery invariant possible (see `mcs-serve`).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSnapshot {
    /// Per-request decay factor in `(0, 1]`.
    pub decay: f64,
    /// The lazy global scale at snapshot time.
    pub scale: f64,
    /// Requests observed.
    pub observed: usize,
    /// `(item, stored count)` ascending by item.
    pub item_counts: Vec<(ItemId, f64)>,
    /// `((a, b), stored count)` with `a <= b`, ascending by `(a, b)`.
    pub pair_counts: Vec<(ItemId, ItemId, f64)>,
}

mcs_model::impl_json!(StreamingSnapshot {
    decay,
    scale,
    observed,
    item_counts,
    pair_counts
});

/// Exponentially decayed co-occurrence statistics.
#[derive(Debug, Clone)]
pub struct StreamingCooccurrence {
    /// Per-request decay factor in `(0, 1]`.
    decay: f64,
    /// Global scale: stored values are true values divided by `scale`, so
    /// decaying everything is one multiplication of `scale`.
    scale: f64,
    item_counts: HashMap<ItemId, f64>,
    pair_counts: HashMap<(ItemId, ItemId), f64>,
    observed: usize,
}

impl StreamingCooccurrence {
    /// Creates an empty stream with the given per-request decay.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay <= 1`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must lie in (0, 1], got {decay}"
        );
        StreamingCooccurrence {
            decay,
            scale: 1.0,
            item_counts: HashMap::new(),
            pair_counts: HashMap::new(),
            observed: 0,
        }
    }

    /// Number of requests observed.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Captures the full state as a deterministic, serializable
    /// [`StreamingSnapshot`]. Restoring it with [`Self::from_snapshot`]
    /// yields an instance whose every query agrees bit for bit.
    pub fn snapshot(&self) -> StreamingSnapshot {
        let mut item_counts: Vec<(ItemId, f64)> =
            self.item_counts.iter().map(|(&k, &v)| (k, v)).collect();
        item_counts.sort_by_key(|&(k, _)| k);
        let mut pair_counts: Vec<(ItemId, ItemId, f64)> = self
            .pair_counts
            .iter()
            .map(|(&(a, b), &v)| (a, b, v))
            .collect();
        pair_counts.sort_by_key(|&(a, b, _)| (a, b));
        StreamingSnapshot {
            decay: self.decay,
            scale: self.scale,
            observed: self.observed,
            item_counts,
            pair_counts,
        }
    }

    /// Rebuilds an instance from a snapshot.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose `decay` lies outside `(0, 1]`, whose
    /// `scale` is not a positive finite number, or whose counts are
    /// non-finite — the states [`Self::observe`] can never produce.
    pub fn from_snapshot(snap: &StreamingSnapshot) -> Result<Self, String> {
        if !(snap.decay > 0.0 && snap.decay <= 1.0) {
            return Err(format!("decay must lie in (0, 1], got {}", snap.decay));
        }
        if !(snap.scale > 0.0 && snap.scale.is_finite()) {
            return Err(format!(
                "scale must be positive and finite, got {}",
                snap.scale
            ));
        }
        if let Some((item, c)) = snap
            .item_counts
            .iter()
            .find(|(_, c)| !c.is_finite())
            .copied()
        {
            return Err(format!("non-finite count {c} for {item}"));
        }
        if let Some(&(a, b, c)) = snap.pair_counts.iter().find(|(_, _, c)| !c.is_finite()) {
            return Err(format!("non-finite count {c} for pair ({a}, {b})"));
        }
        Ok(StreamingCooccurrence {
            decay: snap.decay,
            scale: snap.scale,
            item_counts: snap.item_counts.iter().copied().collect(),
            pair_counts: snap
                .pair_counts
                .iter()
                .map(|&(a, b, v)| ((a, b), v))
                .collect(),
            observed: snap.observed,
        })
    }

    /// Feeds one request.
    pub fn observe(&mut self, request: &Request) {
        // Lazy decay: past counts shrink by `decay`; new increments enter
        // at weight 1, i.e. stored as 1/scale after the scale update.
        self.scale *= self.decay;
        // Renormalise occasionally to avoid underflow on long streams.
        if self.scale < 1e-200 {
            let s = self.scale;
            for v in self.item_counts.values_mut() {
                *v *= s;
            }
            for v in self.pair_counts.values_mut() {
                *v *= s;
            }
            self.scale = 1.0;
        }
        let w = 1.0 / self.scale;
        for (i, &a) in request.items.iter().enumerate() {
            *self.item_counts.entry(a).or_insert(0.0) += w;
            for &b in &request.items[i + 1..] {
                *self.pair_counts.entry((a, b)).or_insert(0.0) += w;
            }
        }
        self.observed += 1;
    }

    /// Decayed `|d_i|`.
    pub fn count(&self, item: ItemId) -> f64 {
        self.item_counts.get(&item).copied().unwrap_or(0.0) * self.scale
    }

    /// Decayed `|(d_i, d_j)|` (symmetric).
    pub fn pair_count(&self, a: ItemId, b: ItemId) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_counts.get(&key).copied().unwrap_or(0.0) * self.scale
    }

    /// Decayed Jaccard similarity per Eq. (5), clamped to `[0, 1]`.
    ///
    /// The clamp is a correctness guard, not cosmetics: the decayed
    /// counts are float sums, and when an item almost always co-occurs
    /// with its partner the union `|d_a| + |d_b| − |(d_a, d_b)|`
    /// cancels almost to `both` — rounding can then leave
    /// `union < both`, i.e. J > 1, which would spuriously pass any
    /// `J > θ` gate in [`crate::matching::greedy_matching_from_pairs`].
    pub fn jaccard(&self, a: ItemId, b: ItemId) -> f64 {
        if a == b {
            return 1.0;
        }
        let both = self.pair_count(a, b);
        let union = self.count(a) + self.count(b) - both;
        if union <= 0.0 {
            0.0
        } else {
            (both / union).clamp(0.0, 1.0)
        }
    }

    /// All pairs with positive decayed co-occurrence, with similarities,
    /// sorted by descending similarity then ascending ids. Non-finite
    /// similarities (possible only on degenerate float states) are
    /// dropped so the ordering is total and deterministic.
    pub fn pairs(&self) -> Vec<(ItemId, ItemId, f64)> {
        let mut out: Vec<(ItemId, ItemId, f64)> = self
            .pair_counts
            .keys()
            .map(|&(a, b)| (a, b, self.jaccard(a, b)))
            .filter(|p| !p.2.is_nan())
            .collect();
        out.sort_by(|x, y| y.2.total_cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::CoOccurrence;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    #[test]
    fn no_decay_matches_batch_counts() {
        let seq = RequestSeqBuilder::new(2, 3)
            .push(0u32, 1.0, [0, 1])
            .push(1u32, 2.0, [1, 2])
            .push(0u32, 3.0, [0, 1, 2])
            .push(1u32, 4.0, [0])
            .build()
            .unwrap();
        let mut stream = StreamingCooccurrence::new(1.0);
        for r in seq.requests() {
            stream.observe(r);
        }
        let batch = CoOccurrence::from_sequence(&seq);
        for i in 0..3u32 {
            assert!(approx_eq(
                stream.count(ItemId(i)),
                batch.count(ItemId(i)) as f64
            ));
            for j in (i + 1)..3u32 {
                assert!(approx_eq(
                    stream.pair_count(ItemId(i), ItemId(j)),
                    batch.pair_count(ItemId(i), ItemId(j)) as f64
                ));
                assert!(approx_eq(
                    stream.jaccard(ItemId(i), ItemId(j)),
                    batch.jaccard(ItemId(i), ItemId(j))
                ));
            }
        }
        assert_eq!(stream.observed(), 4);
    }

    #[test]
    fn decay_tracks_drift() {
        // 50 requests pairing (0,1), then 50 pairing (0,2).
        let mut b = RequestSeqBuilder::new(1, 3);
        let mut t = 0.0;
        for i in 0..100 {
            t += 1.0;
            b = b.push(0u32, t, if i < 50 { [0u32, 1] } else { [0u32, 2] });
        }
        let seq = b.build().unwrap();
        let mut stream = StreamingCooccurrence::new(0.9);
        for r in seq.requests() {
            stream.observe(r);
        }
        // Recent partner dominates under decay...
        assert!(
            stream.jaccard(ItemId(0), ItemId(2)) > 0.8,
            "recent pair J = {}",
            stream.jaccard(ItemId(0), ItemId(2))
        );
        assert!(
            stream.jaccard(ItemId(0), ItemId(1)) < 0.1,
            "stale pair J = {}",
            stream.jaccard(ItemId(0), ItemId(1))
        );
        // ...whereas the batch view is split roughly 50/50.
        let batch = CoOccurrence::from_sequence(&seq);
        assert!(batch.jaccard(ItemId(0), ItemId(1)) > 0.3);
        assert!(batch.jaccard(ItemId(0), ItemId(2)) > 0.3);
    }

    #[test]
    fn long_streams_do_not_underflow() {
        let seq = RequestSeqBuilder::new(1, 2)
            .push(0u32, 1.0, [0, 1])
            .build()
            .unwrap();
        let r = &seq.requests()[0];
        let mut stream = StreamingCooccurrence::new(0.5);
        for _ in 0..10_000 {
            stream.observe(r);
        }
        let j = stream.jaccard(ItemId(0), ItemId(1));
        assert!(j.is_finite());
        assert!(
            approx_eq(j, 1.0),
            "constant pair must stay at J = 1, got {j}"
        );
    }

    /// Property test: on random decayed streams every similarity must lie
    /// in `[0, 1]`. Without the clamp in `jaccard` this fails — decayed
    /// float counts can cancel so that `both > union` for pairs that
    /// almost always co-occur.
    #[test]
    fn jaccard_stays_within_unit_interval_on_random_decayed_streams() {
        use mcs_model::rng::Rng;
        for case in 0..60u64 {
            let mut rng = Rng::seed_from_u64(0x01AC_CA4D + case);
            let decay = match case % 3 {
                0 => 1.0,
                1 => 0.5 + rng.gen_f64() * 0.5,
                _ => 0.01 + rng.gen_f64() * 0.2,
            };
            let k = rng.gen_range(2u32..=6);
            let n = rng.gen_range(20usize..=400);
            let mut stream = StreamingCooccurrence::new(decay);
            let mut b = RequestSeqBuilder::new(1, k);
            let mut t = 0.0;
            for _ in 0..n {
                t += 0.25;
                let first = rng.gen_range(0u32..k);
                let mut items = vec![first];
                // Heavily correlated partner to stress the cancellation.
                if rng.gen_bool(0.9) {
                    items.push((first + 1) % k);
                }
                b = b.push(0u32, t, items);
            }
            let seq = b.build().unwrap();
            for r in seq.requests() {
                stream.observe(r);
            }
            for i in 0..k {
                for j in 0..k {
                    let jac = stream.jaccard(ItemId(i), ItemId(j));
                    assert!(
                        (0.0..=1.0).contains(&jac),
                        "case {case} (decay {decay}): J({i},{j}) = {jac}"
                    );
                }
            }
            for (a, b, jac) in stream.pairs() {
                assert!(
                    jac.is_finite() && (0.0..=1.0).contains(&jac),
                    "case {case}: listed J({a:?},{b:?}) = {jac}"
                );
            }
        }
    }

    /// Forces the `scale < 1e-200` renormalisation branch in `observe`
    /// (decay 0.1 underflows the lazy scale after ~200 requests) and
    /// checks the stored counts stay finite and equal the directly
    /// computed decayed sums within tolerance.
    #[test]
    fn underflow_renormalisation_preserves_decayed_counts() {
        let decay = 0.1;
        let n = 520; // three renormalisations deep (0.1^520 vs 1e-200)
        let mut b = RequestSeqBuilder::new(1, 3);
        let mut t = 0.0;
        for i in 0..n {
            t += 1.0;
            // Item 0 in every request; item 1 in every other; item 2 never.
            if i % 2 == 0 {
                b = b.push(0u32, t, [0u32, 1]);
            } else {
                b = b.push(0u32, t, [0u32]);
            }
        }
        let seq = b.build().unwrap();
        let mut stream = StreamingCooccurrence::new(decay);
        // Reference decayed counts, computed eagerly (no lazy scale).
        let (mut ref0, mut ref1, mut ref01) = (0.0f64, 0.0, 0.0);
        for r in seq.requests() {
            ref0 = ref0 * decay + 1.0;
            let has1 = r.items.len() == 2;
            ref1 = ref1 * decay + if has1 { 1.0 } else { 0.0 };
            ref01 = ref01 * decay + if has1 { 1.0 } else { 0.0 };
            stream.observe(r);
        }
        let c0 = stream.count(ItemId(0));
        let c1 = stream.count(ItemId(1));
        let p01 = stream.pair_count(ItemId(0), ItemId(1));
        assert!(c0.is_finite() && c1.is_finite() && p01.is_finite());
        assert!((c0 - ref0).abs() < 1e-9, "count0 {c0} vs {ref0}");
        assert!((c1 - ref1).abs() < 1e-9, "count1 {c1} vs {ref1}");
        assert!((p01 - ref01).abs() < 1e-9, "pair {p01} vs {ref01}");
        assert_eq!(stream.count(ItemId(2)), 0.0);
        let j = stream.jaccard(ItemId(0), ItemId(1));
        assert!((0.0..=1.0).contains(&j), "J = {j}");
        assert_eq!(stream.observed(), n);
    }

    #[test]
    fn pairs_listing_is_sorted() {
        let seq = RequestSeqBuilder::new(1, 3)
            .push(0u32, 1.0, [0, 1])
            .push(0u32, 2.0, [0, 1])
            .push(0u32, 3.0, [1, 2])
            .build()
            .unwrap();
        let mut stream = StreamingCooccurrence::new(1.0);
        for r in seq.requests() {
            stream.observe(r);
        }
        let pairs = stream.pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].2 >= pairs[1].2);
        assert_eq!((pairs[0].0, pairs[0].1), (ItemId(0), ItemId(1)));
    }

    #[test]
    #[should_panic(expected = "decay must lie")]
    fn zero_decay_is_rejected() {
        let _ = StreamingCooccurrence::new(0.0);
    }

    /// Property test (satellite of the serving-daemon PR): snapshot →
    /// JSON → restore must reproduce the never-serialized instance *bit
    /// for bit* on random decayed streams — the recovery invariant the
    /// `mcs-serve` checkpoints rely on. Checked both at rest (every
    /// `jaccard`/`count` identical to the last bit) and in motion (both
    /// instances keep agreeing after observing a further shared suffix).
    #[test]
    fn checkpoint_round_trip_is_bit_identical_on_random_streams() {
        use mcs_model::json::{parse, FromJson, ToJson};
        use mcs_model::rng::Rng;
        for case in 0..40u64 {
            let mut rng = Rng::seed_from_u64(0xC4EC_4001 + case);
            let decay = match case % 3 {
                0 => 1.0,
                1 => 0.5 + rng.gen_f64() * 0.5,
                _ => 0.05 + rng.gen_f64() * 0.3, // deep decay exercises `scale`
            };
            let k = rng.gen_range(2u32..=8);
            let n = rng.gen_range(10usize..=300);
            let mut b = RequestSeqBuilder::new(1, k);
            let mut t = 0.0;
            for _ in 0..n + 20 {
                t += 0.5;
                let first = rng.gen_range(0u32..k);
                let mut items = vec![first];
                if rng.gen_bool(0.6) {
                    items.push((first + 1 + rng.gen_range(0u32..k - 1)) % k);
                    items.dedup();
                }
                b = b.push(0u32, t, items);
            }
            let seq = b.build().unwrap();
            let (prefix, suffix) = seq.requests().split_at(n);

            let mut live = StreamingCooccurrence::new(decay);
            for r in prefix {
                live.observe(r);
            }
            let text = live.snapshot().to_json().to_string_pretty();
            let snap = StreamingSnapshot::from_json(&parse(&text).unwrap()).unwrap();
            let mut restored = StreamingCooccurrence::from_snapshot(&snap).unwrap();

            let assert_bitwise_equal =
                |a: &StreamingCooccurrence, b: &StreamingCooccurrence, when: &str| {
                    assert_eq!(a.observed(), b.observed(), "case {case} {when}");
                    for i in 0..k {
                        assert_eq!(
                            a.count(ItemId(i)).to_bits(),
                            b.count(ItemId(i)).to_bits(),
                            "case {case} {when}: count({i})"
                        );
                        for j in 0..k {
                            assert_eq!(
                                a.jaccard(ItemId(i), ItemId(j)).to_bits(),
                                b.jaccard(ItemId(i), ItemId(j)).to_bits(),
                                "case {case} {when}: J({i},{j})"
                            );
                        }
                    }
                    assert_eq!(a.pairs(), b.pairs(), "case {case} {when}: pair listing");
                };
            assert_bitwise_equal(&live, &restored, "at rest");
            for r in suffix {
                live.observe(r);
                restored.observe(r);
            }
            assert_bitwise_equal(&live, &restored, "after shared suffix");
        }
    }

    #[test]
    fn bad_snapshots_are_rejected() {
        let good = StreamingCooccurrence::new(0.5).snapshot();
        for (mutate, what) in [
            (
                Box::new(|s: &mut StreamingSnapshot| s.decay = 0.0)
                    as Box<dyn Fn(&mut StreamingSnapshot)>,
                "decay",
            ),
            (Box::new(|s: &mut StreamingSnapshot| s.decay = 1.5), "decay"),
            (Box::new(|s: &mut StreamingSnapshot| s.scale = 0.0), "scale"),
            (
                Box::new(|s: &mut StreamingSnapshot| s.scale = f64::INFINITY),
                "scale",
            ),
            (
                Box::new(|s: &mut StreamingSnapshot| {
                    s.item_counts.push((ItemId(0), f64::NAN));
                }),
                "count",
            ),
            (
                Box::new(|s: &mut StreamingSnapshot| {
                    s.pair_counts.push((ItemId(0), ItemId(1), f64::INFINITY));
                }),
                "count",
            ),
        ] {
            let mut bad = good.clone();
            mutate(&mut bad);
            let err = StreamingCooccurrence::from_snapshot(&bad).unwrap_err();
            assert!(err.contains(what), "{err}");
        }
    }
}

//! Greedy threshold matching — Algorithm 1, lines 7–27.
//!
//! Pairs are sorted by descending Jaccard similarity and greedily accepted
//! when `J > θ` and neither item is already packed (`package_flag`);
//! leftover items are served individually. Ties are broken by ascending
//! item indices so the packing is deterministic.

use crate::jaccard::JaccardMatrix;
use mcs_model::ItemId;

/// The outcome of Phase 1: disjoint packed pairs plus unpacked singletons —
/// the paper's `package_list`.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// Packed pairs `(d_i, d_j)` with `i < j`, in acceptance order
    /// (descending similarity).
    pub pairs: Vec<(ItemId, ItemId)>,
    /// Items served individually, ascending.
    pub singletons: Vec<ItemId>,
    /// The threshold `θ` used.
    pub theta: f64,
    /// Partner lookup indexed by item id, precomputed at construction so
    /// the per-request [`Self::is_packed`]/[`Self::partner`] calls in
    /// Phase 2 are O(1) instead of a scan over all packed pairs. Private:
    /// derived from `pairs`, rebuilt by [`Packing::new`].
    partner: Vec<Option<ItemId>>,
}

impl Packing {
    /// Builds a packing from its pair and singleton lists, precomputing
    /// the O(1) partner index. Pairs must be disjoint (each item in at
    /// most one pair), as Phase 1 guarantees.
    pub fn new(pairs: Vec<(ItemId, ItemId)>, singletons: Vec<ItemId>, theta: f64) -> Self {
        let max_id = pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(singletons.iter().copied())
            .map(|it| it.index() + 1)
            .max()
            .unwrap_or(0);
        let mut partner = vec![None; max_id];
        for &(a, b) in &pairs {
            debug_assert!(partner[a.index()].is_none() && partner[b.index()].is_none());
            partner[a.index()] = Some(b);
            partner[b.index()] = Some(a);
        }
        Packing {
            pairs,
            singletons,
            theta,
            partner,
        }
    }

    /// Total number of items covered (sanity: equals `k`).
    pub fn total_items(&self) -> usize {
        self.pairs.len() * 2 + self.singletons.len()
    }

    /// True if `item` is part of some packed pair. O(1).
    pub fn is_packed(&self, item: ItemId) -> bool {
        self.partner(item).is_some()
    }

    /// The partner of `item` if it is packed. O(1).
    pub fn partner(&self, item: ItemId) -> Option<ItemId> {
        self.partner.get(item.index()).copied().flatten()
    }
}

/// Runs the greedy threshold matching of Algorithm 1 over a Jaccard matrix.
///
/// A pair is packed when its similarity is **strictly** greater than
/// `theta` (line 16: `Jaccard(key) > θ`) and neither member is already
/// flagged.
pub fn greedy_matching(matrix: &JaccardMatrix, theta: f64) -> Packing {
    greedy_matching_from_pairs(matrix.pairs(), matrix.items() as u32, theta)
}

/// The same greedy matching over an explicit pair-similarity list — the
/// entry point for streaming/decayed statistics
/// ([`crate::StreamingCooccurrence::pairs`]) where no dense matrix exists.
pub fn greedy_matching_from_pairs(
    mut pairs: Vec<(ItemId, ItemId, f64)>,
    items: u32,
    theta: f64,
) -> Packing {
    // NaN similarities (degenerate inputs, e.g. decayed counts gone
    // non-finite) carry no ordering information and could land anywhere
    // under a partial comparison, making the packing depend on the input
    // permutation. They can never clear `J > θ` anyway, so drop them
    // before sorting and use the total order for what remains.
    pairs.retain(|p| !p.2.is_nan());
    // Descending similarity; ascending (i, j) on ties for determinism.
    pairs.sort_by(|x, y| y.2.total_cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));

    let k = items as usize;
    let mut flagged = vec![false; k];
    let mut chosen = Vec::new();
    for (a, b, j) in pairs {
        if j > theta && !flagged[a.index()] && !flagged[b.index()] {
            flagged[a.index()] = true;
            flagged[b.index()] = true;
            chosen.push((a, b));
        }
    }
    let singletons = (0..items)
        .map(ItemId)
        .filter(|it| !flagged[it.index()])
        .collect();
    Packing::new(chosen, singletons, theta)
}

mcs_model::impl_to_json!(Packing {
    pairs,
    singletons,
    theta
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::CoOccurrence;
    use mcs_model::{RequestSeq, RequestSeqBuilder};

    fn matrix_of(seq: &RequestSeq) -> JaccardMatrix {
        JaccardMatrix::from_cooccurrence(&CoOccurrence::from_sequence(seq))
    }

    /// Four items: (d1,d2) strongly correlated, (d3,d4) weakly, d3/d4 also
    /// somewhat correlated with d1.
    fn seq4() -> RequestSeq {
        RequestSeqBuilder::new(2, 4)
            .push(0u32, 1.0, [0, 1])
            .push(1u32, 2.0, [0, 1])
            .push(0u32, 3.0, [0, 1, 2])
            .push(1u32, 4.0, [2, 3])
            .push(0u32, 5.0, [0])
            .push(1u32, 6.0, [3])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_packs_d1_d2_at_theta_04() {
        // J = 3/7 ≈ 0.4286 > θ = 0.4 → packed (Section V-C step 3).
        let seq = RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap();
        let p = greedy_matching(&matrix_of(&seq), 0.4);
        assert_eq!(p.pairs, vec![(ItemId(0), ItemId(1))]);
        assert!(p.singletons.is_empty());
        assert_eq!(p.total_items(), 2);
    }

    #[test]
    fn threshold_is_strict() {
        // With θ = J exactly, the pair must NOT be packed (line 16 uses >).
        let seq = RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap();
        let p = greedy_matching(&matrix_of(&seq), 3.0 / 7.0);
        assert!(p.pairs.is_empty());
        assert_eq!(p.singletons.len(), 2);
    }

    #[test]
    fn greedy_packs_best_pairs_first_and_disjointly() {
        let m = matrix_of(&seq4());
        let p = greedy_matching(&m, 0.1);
        // (d1,d2): J = 3/4; best pair, packed first. d3's best remaining
        // partner is d4: both {req 3}, union {2,3,5} → 1/3 > 0.1.
        assert_eq!(
            p.pairs,
            vec![(ItemId(0), ItemId(1)), (ItemId(2), ItemId(3))]
        );
        assert!(p.singletons.is_empty());
        assert!(p.is_packed(ItemId(2)));
        assert_eq!(p.partner(ItemId(3)), Some(ItemId(2)));
    }

    #[test]
    fn high_threshold_packs_nothing() {
        let p = greedy_matching(&matrix_of(&seq4()), 0.9);
        assert!(p.pairs.is_empty());
        assert_eq!(p.singletons.len(), 4);
        assert!(!p.is_packed(ItemId(0)));
        assert_eq!(p.partner(ItemId(0)), None);
    }

    #[test]
    fn packing_covers_every_item_exactly_once() {
        for theta in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let p = greedy_matching(&matrix_of(&seq4()), theta);
            assert_eq!(p.total_items(), 4, "theta={theta}");
            let mut seen: Vec<ItemId> = p
                .pairs
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .chain(p.singletons.iter().copied())
                .collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 4);
        }
    }

    #[test]
    fn nan_similarities_are_dropped_deterministically() {
        // A NaN pair must never pack and must not perturb the ordering of
        // the finite pairs, whatever position it arrives in.
        let finite = vec![
            (ItemId(0), ItemId(1), 0.9),
            (ItemId(2), ItemId(3), 0.5),
            (ItemId(4), ItemId(5), 0.7),
        ];
        let reference = greedy_matching_from_pairs(finite.clone(), 6, 0.1);
        assert_eq!(
            reference.pairs,
            vec![
                (ItemId(0), ItemId(1)),
                (ItemId(4), ItemId(5)),
                (ItemId(2), ItemId(3))
            ]
        );
        for pos in 0..=finite.len() {
            let mut with_nan = finite.clone();
            with_nan.insert(pos, (ItemId(1), ItemId(2), f64::NAN));
            let p = greedy_matching_from_pairs(with_nan, 6, 0.1);
            assert_eq!(p, reference, "NaN at position {pos}");
            assert!(!p.is_packed(ItemId(1)) || p.partner(ItemId(1)) == Some(ItemId(0)));
        }
    }

    #[test]
    fn partner_index_matches_the_pair_list() {
        let p = greedy_matching_from_pairs(
            vec![(ItemId(0), ItemId(3), 0.9), (ItemId(1), ItemId(2), 0.8)],
            5,
            0.1,
        );
        assert_eq!(p.partner(ItemId(0)), Some(ItemId(3)));
        assert_eq!(p.partner(ItemId(3)), Some(ItemId(0)));
        assert_eq!(p.partner(ItemId(1)), Some(ItemId(2)));
        assert_eq!(p.partner(ItemId(2)), Some(ItemId(1)));
        assert_eq!(p.partner(ItemId(4)), None);
        // Out-of-range ids degrade to "not packed" rather than panicking.
        assert_eq!(p.partner(ItemId(99)), None);
        assert!(!p.is_packed(ItemId(99)));
        // The constructor agrees with the slow scan on every id.
        for id in 0..5u32 {
            let scan = p.pairs.iter().find_map(|&(a, b)| {
                if a == ItemId(id) {
                    Some(b)
                } else if b == ItemId(id) {
                    Some(a)
                } else {
                    None
                }
            });
            assert_eq!(p.partner(ItemId(id)), scan, "item {id}");
        }
    }

    #[test]
    fn single_item_universe_is_a_singleton() {
        let seq = RequestSeqBuilder::new(1, 1)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let p = greedy_matching(&matrix_of(&seq), 0.3);
        assert!(p.pairs.is_empty());
        assert_eq!(p.singletons, vec![ItemId(0)]);
    }
}

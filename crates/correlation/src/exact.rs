//! Exact maximum-weight matching over the Jaccard graph by bitmask DP.
//!
//! The paper's Phase 1 matches greedily by descending similarity; this
//! module computes the matching that maximises the *sum* of packed
//! similarities above the threshold, to quantify (in the `matching`
//! ablation bench) how much the greedy heuristic gives up. Exponential in
//! `k`; keep `k ≤ ~20`.

use crate::jaccard::JaccardMatrix;
use crate::matching::Packing;
use mcs_model::ItemId;

/// Maximum number of items the exact matcher accepts.
pub const MAX_ITEMS: usize = 20;

/// Computes the maximum-total-similarity matching restricted to pairs with
/// `J > theta`.
///
/// # Panics
///
/// Panics if the matrix covers more than [`MAX_ITEMS`] items.
pub fn exact_matching(matrix: &JaccardMatrix, theta: f64) -> Packing {
    let k = matrix.items();
    assert!(k <= MAX_ITEMS, "exact matcher limited to {MAX_ITEMS} items");
    let full = 1usize << k;

    // best[mask] = max total similarity using exactly the items in `mask`
    // (unused items simply absent); choice[mask] records the pair taken.
    let mut best = vec![0.0f64; full];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; full];
    for mask in 1..full {
        // Anchor on the lowest set bit: it is either unmatched or paired.
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        // i unmatched:
        best[mask] = best[rest];
        choice[mask] = None;
        // i paired with some j in rest:
        let mut rem = rest;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let w = matrix.get(ItemId(i as u32), ItemId(j as u32));
            if w > theta {
                let cand = best[rest & !(1 << j)] + w;
                if cand > best[mask] {
                    best[mask] = cand;
                    choice[mask] = Some((i, j));
                }
            }
        }
    }

    // Reconstruct.
    let mut pairs = Vec::new();
    let mut mask = full - 1;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        match choice[mask] {
            Some((a, b)) => {
                pairs.push((ItemId(a as u32), ItemId(b as u32)));
                mask &= !(1 << a);
                mask &= !(1 << b);
            }
            None => {
                mask &= !(1 << i);
            }
        }
    }
    pairs.sort();
    let singletons = (0..k as u32)
        .map(ItemId)
        .filter(|it| !pairs.iter().any(|&(a, b)| a == *it || b == *it))
        .collect();
    Packing::new(pairs, singletons, theta)
}

/// Total packed similarity of a packing under a matrix (the objective the
/// exact matcher maximises).
pub fn packing_weight(matrix: &JaccardMatrix, packing: &Packing) -> f64 {
    packing.pairs.iter().map(|&(a, b)| matrix.get(a, b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::CoOccurrence;
    use crate::matching::greedy_matching;
    use mcs_model::RequestSeqBuilder;

    /// A triangle where greedy is suboptimal: J(0,1) = high, but pairing
    /// 0–2 and 1–3 has larger total weight.
    fn chain_matrix() -> JaccardMatrix {
        // Construct a sequence with engineered co-occurrences:
        // (0,1) appear together often; (0,2) and (1,3) moderately.
        let mut b = RequestSeqBuilder::new(1, 4);
        let mut t = 0.0;
        let mut push = |items: Vec<u32>, b: RequestSeqBuilder| {
            t += 1.0;
            b.push(0u32, t, items)
        };
        for _ in 0..8 {
            b = push(vec![0, 1], b);
        }
        for _ in 0..5 {
            b = push(vec![0, 2], b);
            b = push(vec![1, 3], b);
        }
        JaccardMatrix::from_cooccurrence(&CoOccurrence::from_sequence(&b.build().unwrap()))
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        let m = chain_matrix();
        let g = greedy_matching(&m, 0.05);
        let e = exact_matching(&m, 0.05);
        let wg = packing_weight(&m, &g);
        let we = packing_weight(&m, &e);
        assert!(we >= wg - 1e-12, "exact {we} < greedy {wg}");
        assert_eq!(e.total_items(), 4);
    }

    #[test]
    fn exact_finds_the_chain_improvement() {
        let m = chain_matrix();
        // Greedy grabs (0,1) first, stranding 2 and 3 (J(2,3) = 0).
        let g = greedy_matching(&m, 0.05);
        assert_eq!(g.pairs, vec![(ItemId(0), ItemId(1))]);
        // Exact pairs 0–2 and 1–3 for larger total weight.
        let e = exact_matching(&m, 0.05);
        assert_eq!(
            e.pairs,
            vec![(ItemId(0), ItemId(2)), (ItemId(1), ItemId(3))]
        );
    }

    #[test]
    fn respects_threshold() {
        let m = chain_matrix();
        let e = exact_matching(&m, 0.99);
        assert!(e.pairs.is_empty());
        assert_eq!(e.singletons.len(), 4);
    }

    #[test]
    fn empty_universe() {
        let seq = RequestSeqBuilder::new(1, 1)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let m = JaccardMatrix::from_sequence(&seq);
        let e = exact_matching(&m, 0.3);
        assert!(e.pairs.is_empty());
        assert_eq!(e.singletons.len(), 1);
    }
}

//! Sparse co-occurrence statistics for large catalogs.
//!
//! The dense [`crate::CoOccurrence`] allocates the full `k·(k−1)/2`
//! upper triangle — at `k = 10⁵` that is ~40 GB of `usize`, almost all of
//! it zeros: a request touches a handful of items, so the number of
//! *observed* pairs is bounded by `Σ|D_i|²`, independent of `k`. This
//! module keeps only the observed pairs in a hash table, counts shards of
//! the sequence in parallel (merging by summation, which is exact for
//! integers), and feeds Phase 1 through a deterministic top-P candidate
//! list — so `greedy_matching` never materialises a `k²` structure.
//!
//! For any threshold `θ ≥ 0` the sparse path packs **exactly** the pairs
//! the dense path packs: unobserved pairs have `J = 0`, which can never
//! exceed a non-negative threshold, and the candidate ordering is the
//! same (descending similarity, ascending ids) — asserted in tests.

use std::collections::HashMap;

use mcs_model::par::{par_map, shard_ranges};
use mcs_model::{ItemId, Request, RequestSeq};

use crate::matching::{greedy_matching_from_pairs, Packing};

/// Co-occurrence statistics holding only observed pairs.
///
/// Per-item counts stay dense (`k` entries of `usize` — cheap); pair
/// counts are keyed by `(i, j)` with `i < j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCoOccurrence {
    k: usize,
    item_counts: Vec<usize>,
    pair_counts: HashMap<(ItemId, ItemId), usize>,
}

impl SparseCoOccurrence {
    /// Counts a request sequence, sharding across worker threads for
    /// large inputs (bit-identical to the serial count — integer merge).
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        let threads = mcs_model::par::max_threads();
        if threads > 1 && seq.len() >= crate::jaccard::PARALLEL_THRESHOLD {
            Self::from_sequence_sharded(seq, threads)
        } else {
            Self::from_sequence_serial(seq)
        }
    }

    /// The serial reference count.
    pub fn from_sequence_serial(seq: &RequestSeq) -> Self {
        let mut co = Self::empty(seq.items() as usize);
        co.count_requests(seq.requests());
        co
    }

    /// Sharded parallel count over at most `shards` contiguous ranges.
    pub fn from_sequence_sharded(seq: &RequestSeq, shards: usize) -> Self {
        let k = seq.items() as usize;
        let ranges = shard_ranges(seq.len(), shards);
        if ranges.len() <= 1 {
            return Self::from_sequence_serial(seq);
        }
        let partials = par_map(&ranges, |&(start, end)| {
            let mut co = Self::empty(k);
            co.count_requests(&seq.requests()[start..end]);
            co
        });
        let mut merged = Self::empty(k);
        for p in partials {
            merged.merge(p);
        }
        merged
    }

    fn empty(k: usize) -> Self {
        SparseCoOccurrence {
            k,
            item_counts: vec![0usize; k],
            pair_counts: HashMap::new(),
        }
    }

    fn count_requests(&mut self, requests: &[Request]) {
        for r in requests {
            for (a_pos, &a) in r.items.iter().enumerate() {
                self.item_counts[a.index()] += 1;
                for &b in &r.items[a_pos + 1..] {
                    // Builder guarantees sorted item lists, so a < b.
                    *self.pair_counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }

    fn merge(&mut self, other: SparseCoOccurrence) {
        debug_assert_eq!(self.k, other.k);
        for (a, b) in self.item_counts.iter_mut().zip(&other.item_counts) {
            *a += b;
        }
        for (key, v) in other.pair_counts {
            *self.pair_counts.entry(key).or_insert(0) += v;
        }
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// Number of distinct observed pairs.
    #[inline]
    pub fn observed_pairs(&self) -> usize {
        self.pair_counts.len()
    }

    /// `|d_i|` — requests containing `item`.
    #[inline]
    pub fn count(&self, item: ItemId) -> usize {
        self.item_counts[item.index()]
    }

    /// `|(d_i, d_j)|` — requests containing both items (symmetric;
    /// `i == j` returns `|d_i|`; unobserved pairs return 0).
    pub fn pair_count(&self, a: ItemId, b: ItemId) -> usize {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => self.pair_counts.get(&(a, b)).copied().unwrap_or(0),
            std::cmp::Ordering::Greater => self.pair_counts.get(&(b, a)).copied().unwrap_or(0),
            std::cmp::Ordering::Equal => self.item_counts[a.index()],
        }
    }

    /// Jaccard similarity per Eq. (5) — identical to the dense
    /// [`crate::CoOccurrence::jaccard`] on every pair. An item pair with
    /// an empty union (neither item ever requested) yields `0.0`, never
    /// `NaN` — the zero-union guard lives in the one shared division
    /// every kernel funnels through, and a workspace property test pins
    /// that no similarity path can emit a non-finite value.
    pub fn jaccard(&self, a: ItemId, b: ItemId) -> f64 {
        if a == b {
            return 1.0;
        }
        crate::incidence::jaccard_from_counts(self.pair_count(a, b), self.count(a), self.count(b))
    }

    /// All observed pairs with their similarity, sorted by descending
    /// similarity then ascending ids — deterministic despite the hash
    /// table underneath, and the exact candidate order
    /// [`crate::matching::greedy_matching_from_pairs`] uses.
    pub fn pairs(&self) -> Vec<(ItemId, ItemId, f64)> {
        let mut out: Vec<(ItemId, ItemId, f64)> = self
            .pair_counts
            .keys()
            .map(|&(a, b)| (a, b, self.jaccard(a, b)))
            .collect();
        out.sort_by(|x, y| y.2.total_cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        out
    }

    /// The top `p` candidate pairs by similarity (all observed pairs when
    /// `p >= observed_pairs()`). Greedy matching over the top-P list
    /// equals matching over the full list whenever `p` is at least the
    /// number of pairs clearing the threshold — a bound the caller can
    /// enforce cheaply with [`Self::pairs_above`].
    pub fn top_pairs(&self, p: usize) -> Vec<(ItemId, ItemId, f64)> {
        let mut out = self.pairs();
        out.truncate(p);
        out
    }

    /// Number of observed pairs with similarity strictly above `theta` —
    /// the safe lower bound for a lossless `top_pairs` truncation.
    pub fn pairs_above(&self, theta: f64) -> usize {
        self.pair_counts
            .keys()
            .filter(|&&(a, b)| self.jaccard(a, b) > theta)
            .count()
    }

    /// `Σ|d_i|` — total item accesses observed in the prescan (each
    /// request contributes one per item it touches). Feeds the adaptive
    /// θ rule in [`crate::grouping::adaptive_theta`].
    pub fn total_item_accesses(&self) -> usize {
        self.item_counts.iter().sum()
    }

    /// Total co-occurrence mass: the sum of `|(d_i, d_j)|` over all
    /// observed pairs.
    pub fn total_pair_cooccurrences(&self) -> usize {
        self.pair_counts.values().sum()
    }

    /// Approximate bytes held by the sparse pair table (key + count per
    /// observed pair, ignoring hash-table load factor), reported by
    /// `bench_perf` against the dense `k·(k−1)/2 · 8` triangle.
    pub fn pair_table_bytes(&self) -> usize {
        self.pair_counts.len()
            * (std::mem::size_of::<(ItemId, ItemId)>() + std::mem::size_of::<usize>())
    }
}

/// Phase 1 over sparse statistics: greedy threshold matching on the
/// observed-pair candidate list. Packs exactly what
/// [`crate::greedy_matching`] packs for any `θ ≥ 0`, without ever
/// allocating the dense matrix.
pub fn greedy_matching_sparse(co: &SparseCoOccurrence, theta: f64) -> Packing {
    greedy_matching_from_pairs(co.pairs(), co.items() as u32, theta)
}

/// [`greedy_matching_sparse`] restricted to the top `p` candidates —
/// the bounded-memory variant for very large catalogs. Lossless when
/// `p >= co.pairs_above(theta)`.
pub fn greedy_matching_top_p(co: &SparseCoOccurrence, theta: f64, p: usize) -> Packing {
    greedy_matching_from_pairs(co.top_pairs(p), co.items() as u32, theta)
}

mcs_model::impl_to_json!(SparseCoOccurrence { k, item_counts });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::{CoOccurrence, JaccardMatrix};
    use crate::matching::greedy_matching;
    use mcs_model::rng::Rng;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn random_sequence(seed: u64, n: usize, k: u32) -> RequestSeq {
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = RequestSeqBuilder::new(3, k);
        let mut t = 0.0;
        for _ in 0..n {
            t += 0.1 + rng.gen_f64();
            let first = rng.gen_range(0u32..k);
            let mut items = vec![first];
            if rng.gen_bool(0.6) {
                let second = (first + rng.gen_range(1u32..k)) % k;
                if !items.contains(&second) {
                    items.push(second);
                }
            }
            if rng.gen_bool(0.2) {
                let third = (first + rng.gen_range(1u32..k)) % k;
                if !items.contains(&third) {
                    items.push(third);
                }
            }
            b = b.push(rng.gen_range(0u32..3), t, items);
        }
        b.build().unwrap()
    }

    #[test]
    fn sparse_counts_match_dense() {
        let seq = random_sequence(0xA11CE, 400, 12);
        let dense = CoOccurrence::from_sequence_serial(&seq);
        let sparse = SparseCoOccurrence::from_sequence_serial(&seq);
        assert_eq!(sparse.items(), dense.items());
        for i in 0..12u32 {
            assert_eq!(sparse.count(ItemId(i)), dense.count(ItemId(i)));
            for j in 0..12u32 {
                assert_eq!(
                    sparse.pair_count(ItemId(i), ItemId(j)),
                    dense.pair_count(ItemId(i), ItemId(j)),
                    "pair ({i}, {j})"
                );
                assert!(approx_eq(
                    sparse.jaccard(ItemId(i), ItemId(j)),
                    dense.jaccard(ItemId(i), ItemId(j))
                ));
            }
        }
        // Sparse stores at most the observed pairs, never the triangle.
        assert!(sparse.observed_pairs() <= 12 * 11 / 2);
    }

    #[test]
    fn sharded_sparse_is_identical_to_serial() {
        let seq = random_sequence(0xBEEF, 600, 9);
        let serial = SparseCoOccurrence::from_sequence_serial(&seq);
        for shards in [2, 3, 8, 599, 600, 4096] {
            assert_eq!(
                SparseCoOccurrence::from_sequence_sharded(&seq, shards),
                serial,
                "shards = {shards}"
            );
        }
        assert_eq!(SparseCoOccurrence::from_sequence(&seq), serial);
    }

    #[test]
    fn sparse_matching_equals_dense_matching() {
        for seed in 0..8u64 {
            let seq = random_sequence(0xD15C0 + seed, 300, 10);
            let dense = greedy_matching(&JaccardMatrix::from_sequence(&seq), 0.2);
            let sparse = greedy_matching_sparse(&SparseCoOccurrence::from_sequence(&seq), 0.2);
            assert_eq!(dense, sparse, "seed {seed}");
        }
    }

    #[test]
    fn top_p_is_lossless_above_the_threshold_count() {
        let seq = random_sequence(0xCAFE, 300, 10);
        let co = SparseCoOccurrence::from_sequence(&seq);
        let theta = 0.15;
        let full = greedy_matching_sparse(&co, theta);
        let p = co.pairs_above(theta);
        assert_eq!(greedy_matching_top_p(&co, theta, p), full);
        assert_eq!(greedy_matching_top_p(&co, theta, co.observed_pairs()), full);
        // Truncating below the packed-pair count loses packings.
        if full.pairs.len() > 1 {
            let lossy = greedy_matching_top_p(&co, theta, 1);
            assert!(lossy.pairs.len() <= full.pairs.len());
        }
    }

    #[test]
    fn pair_table_is_small_for_sparse_workloads() {
        // 2000 items, but only two of them ever co-occur: dense would
        // allocate a ~2M-entry triangle, sparse stores one pair.
        let seq = RequestSeqBuilder::new(1, 2000)
            .push(0u32, 1.0, [0, 1])
            .push(0u32, 2.0, [0, 1])
            .push(0u32, 3.0, [1999])
            .build()
            .unwrap();
        let co = SparseCoOccurrence::from_sequence(&seq);
        assert_eq!(co.observed_pairs(), 1);
        assert!(co.pair_table_bytes() < 64);
        let packing = greedy_matching_sparse(&co, 0.3);
        assert_eq!(packing.pairs, vec![(ItemId(0), ItemId(1))]);
        assert_eq!(packing.singletons.len(), 1998);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 1.0));
    }

    #[test]
    fn empty_and_tiny_universes() {
        let seq = RequestSeqBuilder::new(1, 0).build().unwrap();
        let co = SparseCoOccurrence::from_sequence(&seq);
        assert_eq!(co.items(), 0);
        assert_eq!(co.observed_pairs(), 0);
        let p = greedy_matching_sparse(&co, 0.3);
        assert!(p.pairs.is_empty() && p.singletons.is_empty());

        let seq = RequestSeqBuilder::new(1, 1)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let co = SparseCoOccurrence::from_sequence(&seq);
        assert_eq!(co.pair_count(ItemId(0), ItemId(0)), 1);
        let p = greedy_matching_sparse(&co, 0.3);
        assert_eq!(p.singletons, vec![ItemId(0)]);
    }
}

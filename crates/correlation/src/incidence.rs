//! Bitset request-incidence — the hardware-shaped Phase-1 kernel.
//!
//! One `u64` word-row per item over request slots: bit `r` of row `i` is
//! set iff request `r` contains item `i`. Every Phase-1 statistic then
//! falls out of word-wide bit arithmetic instead of per-event updates:
//!
//! * `|d_i|`          = `popcount(row_i)`
//! * `|(d_i, d_j)|`   = `popcount(row_i AND row_j)`
//! * `|d_i ∪ d_j|`    = `|d_i| + |d_j| − |(d_i, d_j)|`
//!   (one popcount fewer than `popcount(or)`, same integer)
//!
//! The counts are **the same integers** the per-event kernels
//! ([`crate::CoOccurrence`], [`crate::SparseCoOccurrence`]) produce, so
//! every similarity derived from them — and therefore every matching,
//! package set, and downstream schedule — is **bit-identical** to the
//! hash path for any `θ ≥ 0`. The equivalence is pinned by tests here
//! and by the workspace `phase1_bitset` suite across thread counts.
//!
//! Kernel selection is env-driven (`MCS_PHASE1` ∈ `hash` | `bitset` |
//! `auto`, default `auto`): because both kernels are bit-identical by
//! construction, auto-selection can never change a figure — only how
//! fast it is computed. `bench_perf` measures the two kernels against
//! each other and commits the ratio to `BENCH_perf.json`.

use mcs_model::{ItemId, RequestSeq};

use crate::grouping::PairwiseSimilarity;
use crate::jaccard::CoOccurrence;
use crate::matching::{greedy_matching_from_pairs, Packing};

/// Name of the environment variable selecting the Phase-1 kernel.
pub const PHASE1_ENV: &str = "MCS_PHASE1";

/// Which Phase-1 kernel computes incidence statistics.
///
/// `Hash` is the historical per-event family (dense triangle updates in
/// [`CoOccurrence`], hash-map updates in
/// [`crate::SparseCoOccurrence`]); `Bitset` is the word-row popcount
/// kernel of this module. The two are bit-identical in every output, so
/// `Auto` is free to pick whichever a cheap cost estimate favours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase1Kernel {
    /// Cost-estimate-driven choice (the default).
    Auto,
    /// Force the per-event counting kernels.
    Hash,
    /// Force the bitset popcount kernels.
    Bitset,
}

/// Reads the kernel knob from `MCS_PHASE1` (re-read on every call, like
/// `MCS_THREADS`). Unrecognised values fall back to `Auto`.
pub fn phase1_kernel() -> Phase1Kernel {
    match std::env::var(PHASE1_ENV) {
        Ok(v) => parse_kernel(&v),
        Err(_) => Phase1Kernel::Auto,
    }
}

fn parse_kernel(v: &str) -> Phase1Kernel {
    match v.trim().to_ascii_lowercase().as_str() {
        "hash" => Phase1Kernel::Hash,
        "bitset" => Phase1Kernel::Bitset,
        _ => Phase1Kernel::Auto,
    }
}

/// Number of `(i, j)` pair-events in the sequence (`Σ |D_i|·(|D_i|−1)/2`)
/// — the work unit of the per-event kernels, computed in one cheap pass.
fn pair_events(seq: &RequestSeq) -> usize {
    seq.requests()
        .iter()
        .map(|r| r.items.len() * (r.items.len() - 1) / 2)
        .sum()
}

/// `Auto` heuristic for the **dense** statistics ([`CoOccurrence`]):
/// the bitset kernel fills the full `k·(k−1)/2` triangle at one popcount
/// chain per pair (`words` word-ops each), the per-event kernel pays one
/// array increment per pair-event. Word-ops stream through cache, so the
/// bitset path is taken whenever its total word count is within 16× the
/// pair-event count — and never below the parallel threshold, where
/// either kernel finishes in microseconds.
pub(crate) fn bitset_profitable_dense(seq: &RequestSeq) -> bool {
    let k = seq.items() as usize;
    let n = seq.len();
    if k < 2 || n < crate::jaccard::PARALLEL_THRESHOLD {
        return false;
    }
    let words = n.div_ceil(64);
    let triangle = k * (k - 1) / 2;
    triangle.saturating_mul(words) <= pair_events(seq).saturating_mul(16)
}

/// `Auto` heuristic for the **pair-scan** path (the candidate list behind
/// the sparse matcher): identical shape to the dense estimate — the scan
/// visits at most the triangle — but compared against the hash-map
/// update cost, which is far above an array increment per pair-event.
pub(crate) fn bitset_profitable_scan(seq: &RequestSeq) -> bool {
    let k = seq.items() as usize;
    let n = seq.len();
    if k < 2 || n < crate::jaccard::PARALLEL_THRESHOLD {
        return false;
    }
    let words = n.div_ceil(64);
    let triangle = k * (k - 1) / 2;
    triangle.saturating_mul(words) <= pair_events(seq).saturating_mul(64)
}

/// Bitset request-incidence: `k` rows of `words` `u64`s, bit `r` of row
/// `i` set iff request `r` accesses item `i`.
///
/// Alongside the matrix the build keeps the full pair triangle
/// (`k·(k−1)/2` `usize`s, the same footprint as the dense
/// [`CoOccurrence`]), filled by a streaming `popcount(row_i AND row_j)`
/// scan over contiguous rows — so point queries and the candidate scan
/// are `O(1)` per pair instead of `O(words)`. Like the dense path, this
/// type is dense in `k`; very large catalogs belong on the hash kernel,
/// which the `Auto` heuristics enforce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitsetIncidence {
    k: usize,
    requests: usize,
    /// Words per row: `ceil(requests / 64)`.
    words: usize,
    /// Row-major `k × words` bit matrix.
    bits: Vec<u64>,
    /// `popcount(row_i)` — `|d_i|`, precomputed at build.
    item_counts: Vec<usize>,
    /// Upper triangle of pair counts, row-major (`(i, j)` with `i < j` at
    /// `tri_idx`): entry = `popcount(row_i AND row_j)`, filled by a
    /// streaming row scan at build.
    triangle: Vec<usize>,
}

/// Row-major upper-triangle index of `(i, j)` with `i < j` — the same
/// layout [`CoOccurrence`] uses, so the triangle transfers verbatim.
#[inline]
fn tri_idx(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

impl BitsetIncidence {
    /// Builds the incidence matrix, then derives every count from it.
    ///
    /// Pass 1 streams the sequence once, OR-ing one bit per access into
    /// the row matrix — the only pass that touches the (pointer-heavy)
    /// request records. Pass 2 never looks at the sequence again: item
    /// counts are row popcounts and the pair triangle is a streaming
    /// `popcount(row_i AND row_j)` over contiguous word rows, which the
    /// compiler turns into straight-line SIMD-friendly chains. Fusing
    /// the triangle into pass 1 (block-local scratch + active lists) was
    /// tried and measured *slower* at every catalog size — the scattered
    /// per-block updates defeat the vectorizer — so the two-pass shape
    /// is deliberate.
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        let k = seq.items() as usize;
        let n = seq.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; k * words];
        for (r, req) in seq.requests().iter().enumerate() {
            let (w, bit) = (r / 64, 1u64 << (r % 64));
            for &item in &req.items {
                bits[item.index() * words + w] |= bit;
            }
        }
        let row = |i: usize| &bits[i * words..(i + 1) * words];
        let mut item_counts = vec![0usize; k];
        let mut triangle = vec![0usize; k * k.saturating_sub(1) / 2];
        let mut t = 0;
        for (i, count) in item_counts.iter_mut().enumerate() {
            let ri = row(i);
            // Count `|d_i|` while row `i` is streaming through cache
            // anyway for the pair sweep below.
            *count = ri.iter().map(|w| w.count_ones() as usize).sum();
            for j in i + 1..k {
                // Rows of silent items stay all-zero; the scan cost is
                // dominated by live pairs either way.
                triangle[t] = ri
                    .iter()
                    .zip(row(j))
                    .map(|(a, b)| (a & b).count_ones() as usize)
                    .sum();
                t += 1;
            }
        }
        BitsetIncidence {
            k,
            requests: n,
            words,
            bits,
            item_counts,
            triangle,
        }
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// Number of request slots (bits per row).
    #[inline]
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Bytes held by the bit matrix (reported by `bench_perf` alongside
    /// the dense-triangle and sparse-table footprints).
    pub fn incidence_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words..(i + 1) * self.words]
    }

    /// `|d_i|` — requests containing `item`.
    #[inline]
    pub fn count(&self, item: ItemId) -> usize {
        self.item_counts[item.index()]
    }

    /// `|(d_i, d_j)|` — `popcount(row_a AND row_b)` (symmetric; `i == j`
    /// returns `|d_i|`). The same integer the per-event kernels count,
    /// answered in `O(1)` from the triangle accumulated at build.
    pub fn pair_count(&self, a: ItemId, b: ItemId) -> usize {
        let (i, j) = (a.index(), b.index());
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.triangle[tri_idx(self.k, i, j)],
            std::cmp::Ordering::Greater => self.triangle[tri_idx(self.k, j, i)],
            std::cmp::Ordering::Equal => self.item_counts[i],
        }
    }

    /// `popcount(row_a AND row_b)` recomputed from the bit matrix — the
    /// slow-path definition [`Self::pair_count`]'s triangle must equal
    /// word for word (pinned in tests).
    pub fn pair_count_scanned(&self, a: ItemId, b: ItemId) -> usize {
        if a == b {
            return self.item_counts[a.index()];
        }
        self.row(a.index())
            .iter()
            .zip(self.row(b.index()))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// Jaccard similarity per Eq. (5) — the same division over the same
    /// integers as [`CoOccurrence::jaccard`], hence bit-identical; an
    /// empty union yields `0.0`, never NaN.
    pub fn jaccard(&self, a: ItemId, b: ItemId) -> f64 {
        if a == b {
            return 1.0;
        }
        let both = self.pair_count(a, b);
        jaccard_from_counts(both, self.count(a), self.count(b))
    }

    /// Every observed pair (`|(d_i, d_j)| > 0`) with its count, in
    /// ascending `(i, j)` order — the bitset equivalent of walking the
    /// sparse hash table, and the deterministic substrate for both
    /// [`Self::pairs`] and the co-access totals. A read of the
    /// build-time triangle: `O(k²)` with no matrix traffic, and
    /// trivially identical for any thread count.
    pub fn observed_pairs_counted(&self) -> Vec<(ItemId, ItemId, usize)> {
        let mut out = Vec::new();
        let mut at = 0usize;
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                let both = self.triangle[at];
                at += 1;
                if both > 0 {
                    out.push((ItemId(i as u32), ItemId(j as u32), both));
                }
            }
        }
        out
    }

    /// All observed pairs with their similarity, sorted by descending
    /// similarity then ascending ids — **byte-identical** to
    /// [`crate::SparseCoOccurrence::pairs`] on the same sequence (same
    /// pair set, same integer counts, same division, same comparator),
    /// and the exact candidate order
    /// [`crate::matching::greedy_matching_from_pairs`] consumes.
    pub fn pairs(&self) -> Vec<(ItemId, ItemId, f64)> {
        let mut out: Vec<(ItemId, ItemId, f64)> = self
            .observed_pairs_counted()
            .into_iter()
            .map(|(a, b, both)| {
                (
                    a,
                    b,
                    jaccard_from_counts(both, self.count(a), self.count(b)),
                )
            })
            .collect();
        out.sort_by(|x, y| y.2.total_cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        out
    }

    /// `Σ|d_i|` — total item accesses (feeds
    /// [`crate::grouping::adaptive_theta`]).
    pub fn total_item_accesses(&self) -> usize {
        self.item_counts.iter().sum()
    }

    /// Total co-occurrence mass over observed pairs — the same integer
    /// as [`crate::SparseCoOccurrence::total_pair_cooccurrences`].
    pub fn total_pair_cooccurrences(&self) -> usize {
        self.observed_pairs_counted()
            .into_iter()
            .map(|(_, _, c)| c)
            .sum()
    }

    /// Materialises the dense per-event statistics: the resulting
    /// [`CoOccurrence`] is **equal** (integer for integer) to
    /// `CoOccurrence::from_sequence` on the same sequence. The triangle
    /// layouts coincide, so this is a copy, not a recount.
    pub fn to_cooccurrence(&self) -> CoOccurrence {
        CoOccurrence::from_raw(self.k, self.item_counts.clone(), self.triangle.clone())
    }
}

/// The one shared Jaccard division: `both / (ca + cb − both)` with the
/// zero-union guard. Every kernel funnels through the same integer
/// inputs, so every kernel emits the same bits — and never a non-finite
/// value (property-tested workspace-wide).
#[inline]
pub(crate) fn jaccard_from_counts(both: usize, ca: usize, cb: usize) -> f64 {
    let union = ca + cb - both;
    if union == 0 {
        0.0
    } else {
        both as f64 / union as f64
    }
}

impl PairwiseSimilarity for BitsetIncidence {
    fn items(&self) -> usize {
        self.k
    }
    fn similarity(&self, a: ItemId, b: ItemId) -> f64 {
        self.jaccard(a, b)
    }
}

/// Phase 1 over the bitset kernel: greedy threshold matching on the
/// popcount candidate list. Packs exactly what
/// [`crate::greedy_matching`] and [`crate::greedy_matching_sparse`] pack
/// for any `θ ≥ 0`.
pub fn greedy_matching_bitset(inc: &BitsetIncidence, theta: f64) -> Packing {
    greedy_matching_from_pairs(inc.pairs(), inc.items() as u32, theta)
}

/// Phase-1 statistics behind the kernel knob: the engine's `dpg_k`
/// solver builds one of these and runs the *same* matching stack over
/// it (via [`PairwiseSimilarity`]), so switching kernels never touches
/// solver code — or output bits.
pub enum Phase1Stats {
    /// Per-event hash-map statistics.
    Hash(crate::sparse::SparseCoOccurrence),
    /// Bitset popcount statistics.
    Bitset(BitsetIncidence),
}

impl Phase1Stats {
    /// Builds the backend selected by `MCS_PHASE1` (`Auto` consults the
    /// pair-scan cost estimate).
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        let bitset = match phase1_kernel() {
            Phase1Kernel::Bitset => true,
            Phase1Kernel::Hash => false,
            Phase1Kernel::Auto => bitset_profitable_scan(seq),
        };
        if bitset {
            Phase1Stats::Bitset(BitsetIncidence::from_sequence(seq))
        } else {
            Phase1Stats::Hash(crate::sparse::SparseCoOccurrence::from_sequence(seq))
        }
    }

    /// The adaptive packing threshold (identical for both backends: the
    /// rule is a pure function of integer totals both count alike).
    pub fn adaptive_theta(&self, alpha: f64) -> f64 {
        match self {
            Phase1Stats::Hash(co) => crate::grouping::adaptive_theta(co, alpha),
            Phase1Stats::Bitset(inc) => crate::grouping::adaptive_theta(inc, alpha),
        }
    }

    /// Agglomerative K-packages over whichever backend is loaded — one
    /// merge loop, one tie-break, identical output.
    pub fn k_packages(&self, theta: f64, max_group: usize) -> crate::package_set::PackageSet {
        match self {
            Phase1Stats::Hash(co) => crate::grouping::agglomerative_packages(co, theta, max_group),
            Phase1Stats::Bitset(inc) => {
                crate::grouping::agglomerative_packages(inc, theta, max_group)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::JaccardMatrix;
    use crate::matching::greedy_matching;
    use crate::sparse::{greedy_matching_sparse, SparseCoOccurrence};
    use mcs_model::rng::Rng;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn random_sequence(seed: u64, n: usize, k: u32) -> RequestSeq {
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = RequestSeqBuilder::new(3, k);
        let mut t = 0.0;
        for _ in 0..n {
            t += 0.1 + rng.gen_f64();
            let first = rng.gen_range(0u32..k);
            let mut items = vec![first];
            if rng.gen_bool(0.6) {
                let second = (first + rng.gen_range(1u32..k)) % k;
                if !items.contains(&second) {
                    items.push(second);
                }
            }
            if rng.gen_bool(0.2) {
                let third = (first + rng.gen_range(1u32..k)) % k;
                if !items.contains(&third) {
                    items.push(third);
                }
            }
            b = b.push(rng.gen_range(0u32..3), t, items);
        }
        b.build().unwrap()
    }

    #[test]
    fn bitset_counts_match_the_per_event_kernels() {
        let seq = random_sequence(0xB1757, 400, 12);
        let dense = CoOccurrence::from_sequence_serial(&seq);
        let sparse = SparseCoOccurrence::from_sequence_serial(&seq);
        let inc = BitsetIncidence::from_sequence(&seq);
        assert_eq!(inc.items(), dense.items());
        assert_eq!(inc.requests(), seq.len());
        for i in 0..12u32 {
            assert_eq!(inc.count(ItemId(i)), dense.count(ItemId(i)));
            for j in 0..12u32 {
                assert_eq!(
                    inc.pair_count(ItemId(i), ItemId(j)),
                    dense.pair_count(ItemId(i), ItemId(j)),
                    "pair ({i}, {j})"
                );
                // Same integers, same division: identical bits.
                assert_eq!(
                    inc.jaccard(ItemId(i), ItemId(j)).to_bits(),
                    dense.jaccard(ItemId(i), ItemId(j)).to_bits()
                );
                assert_eq!(
                    inc.jaccard(ItemId(i), ItemId(j)).to_bits(),
                    sparse.jaccard(ItemId(i), ItemId(j)).to_bits()
                );
            }
        }
    }

    /// The build-time triangle is an accumulation of block-local
    /// popcounts; it must equal the whole-row `popcount(and)` definition
    /// word for word, on every pair, including across word boundaries.
    #[test]
    fn build_triangle_equals_the_row_scan_definition() {
        for (seed, n, k) in [(1u64, 63usize, 9u32), (2, 64, 9), (3, 65, 9), (4, 400, 13)] {
            let inc = BitsetIncidence::from_sequence(&random_sequence(seed, n, k));
            for i in 0..k {
                for j in 0..k {
                    assert_eq!(
                        inc.pair_count(ItemId(i), ItemId(j)),
                        inc.pair_count_scanned(ItemId(i), ItemId(j)),
                        "n={n} pair ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn bitset_pair_scan_is_byte_identical_to_the_hash_scan() {
        for seed in 0..6u64 {
            let seq = random_sequence(0x5CA7 + seed, 300, 10);
            let hash = SparseCoOccurrence::from_sequence(&seq).pairs();
            let bits = BitsetIncidence::from_sequence(&seq).pairs();
            assert_eq!(hash.len(), bits.len(), "seed {seed}");
            for (h, b) in hash.iter().zip(&bits) {
                assert_eq!((h.0, h.1), (b.0, b.1), "seed {seed}");
                assert_eq!(h.2.to_bits(), b.2.to_bits(), "seed {seed}");
            }
        }
    }

    #[test]
    fn bitset_matching_equals_dense_and_sparse_matching() {
        for seed in 0..6u64 {
            let seq = random_sequence(0xFACE + seed, 300, 10);
            let inc = BitsetIncidence::from_sequence(&seq);
            for theta in [0.0, 0.15, 0.4] {
                let dense = greedy_matching(&JaccardMatrix::from_sequence(&seq), theta);
                let sparse =
                    greedy_matching_sparse(&SparseCoOccurrence::from_sequence(&seq), theta);
                let bits = greedy_matching_bitset(&inc, theta);
                assert_eq!(dense, bits, "seed {seed}, theta {theta}");
                assert_eq!(sparse, bits, "seed {seed}, theta {theta}");
            }
        }
    }

    #[test]
    fn to_cooccurrence_reproduces_the_per_event_count() {
        for (n, k) in [(0usize, 2u32), (1, 2), (63, 5), (64, 5), (65, 5), (400, 9)] {
            let seq = random_sequence(0xC0DE + n as u64, n, k);
            let via_bitset = BitsetIncidence::from_sequence(&seq).to_cooccurrence();
            assert_eq!(via_bitset, CoOccurrence::from_sequence_serial(&seq));
        }
    }

    #[test]
    fn co_access_totals_match_the_sparse_kernel() {
        let seq = random_sequence(0x70745, 500, 8);
        let sparse = SparseCoOccurrence::from_sequence(&seq);
        let inc = BitsetIncidence::from_sequence(&seq);
        assert_eq!(inc.total_item_accesses(), sparse.total_item_accesses());
        assert_eq!(
            inc.total_pair_cooccurrences(),
            sparse.total_pair_cooccurrences()
        );
        assert_eq!(inc.observed_pairs_counted().len(), sparse.observed_pairs());
    }

    #[test]
    fn word_boundaries_are_exact() {
        // 64 and 65 requests straddle the word boundary; every request
        // contains both items, so the last partial word matters.
        for n in [63usize, 64, 65, 128, 129] {
            let mut b = RequestSeqBuilder::new(1, 2);
            for r in 0..n {
                b = b.push(0u32, (r + 1) as f64, [0, 1]);
            }
            let seq = b.build().unwrap();
            let inc = BitsetIncidence::from_sequence(&seq);
            assert_eq!(inc.count(ItemId(0)), n);
            assert_eq!(inc.pair_count(ItemId(0), ItemId(1)), n);
            assert!(approx_eq(inc.jaccard(ItemId(0), ItemId(1)), 1.0));
        }
    }

    #[test]
    fn empty_and_degenerate_universes() {
        let seq = RequestSeqBuilder::new(1, 0).build().unwrap();
        let inc = BitsetIncidence::from_sequence(&seq);
        assert_eq!(inc.items(), 0);
        assert_eq!(inc.words_per_row(), 0);
        assert!(inc.pairs().is_empty());
        assert_eq!(inc.total_item_accesses(), 0);
        let p = greedy_matching_bitset(&inc, 0.3);
        assert!(p.pairs.is_empty() && p.singletons.is_empty());

        // Never-requested items: zero union must yield 0.0, not NaN.
        let seq = RequestSeqBuilder::new(1, 3)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let inc = BitsetIncidence::from_sequence(&seq);
        assert_eq!(
            inc.jaccard(ItemId(1), ItemId(2)).to_bits(),
            0.0f64.to_bits()
        );
        assert!(inc.jaccard(ItemId(0), ItemId(1)).is_finite());
    }

    #[test]
    fn kernel_knob_parses_and_defaults_to_auto() {
        // Parses the value only — the env var itself is exercised by the
        // workspace-level tests to avoid cross-test races.
        assert_eq!(parse_kernel("hash"), Phase1Kernel::Hash);
        assert_eq!(parse_kernel(" BITSET "), Phase1Kernel::Bitset);
        assert_eq!(parse_kernel("auto"), Phase1Kernel::Auto);
        assert_eq!(parse_kernel("nonsense"), Phase1Kernel::Auto);
    }

    #[test]
    fn phase1_stats_backends_agree() {
        let seq = random_sequence(0x57A75, 300, 9);
        let hash = Phase1Stats::Hash(SparseCoOccurrence::from_sequence(&seq));
        let bits = Phase1Stats::Bitset(BitsetIncidence::from_sequence(&seq));
        assert_eq!(
            hash.adaptive_theta(0.8).to_bits(),
            bits.adaptive_theta(0.8).to_bits()
        );
        for (theta, max_group) in [(0.1, 2usize), (0.3, 4), (0.0, usize::MAX)] {
            assert_eq!(
                hash.k_packages(theta, max_group),
                bits.k_packages(theta, max_group),
                "theta {theta}, max_group {max_group}"
            );
        }
    }
}

//! Co-occurrence counting and the Jaccard similarity matrix (Eq. 4/5).
//!
//! `J(d_i, d_j) = |(d_i, d_j)| / (|d_i| + |d_j| − |(d_i, d_j)|)`, where
//! `|(d_i, d_j)|` counts requests in which both items appear and `|d_i|`
//! counts requests containing `d_i`. The paper chooses Jaccard over raw
//! co-occurrence "since we expect the DP_Greedy algorithm to perform well
//! when both the frequency and the Jaccard similarity for two data items
//! are high".

use mcs_model::{ItemId, RequestSeq};

/// Raw co-occurrence statistics of a request sequence: per-item request
/// counts and upper-triangular pair counts.
///
/// ```
/// use mcs_correlation::CoOccurrence;
/// use mcs_model::{ItemId, RequestSeqBuilder};
///
/// let seq = RequestSeqBuilder::new(2, 2)
///     .push(0u32, 1.0, [0, 1])
///     .push(1u32, 2.0, [0])
///     .build()
///     .unwrap();
/// let co = CoOccurrence::from_sequence(&seq);
/// assert_eq!(co.pair_count(ItemId(0), ItemId(1)), 1);
/// assert!((co.jaccard(ItemId(0), ItemId(1)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoOccurrence {
    k: usize,
    /// `|d_i|` — number of requests containing item `i`.
    item_counts: Vec<usize>,
    /// Upper-triangular pair counts, row-major: entry for `(i, j)` with
    /// `i < j` lives at `tri_index(i, j)`.
    pair_counts: Vec<usize>,
}

#[inline]
fn tri_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    // Offset of row i in the packed upper triangle, then the column.
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

impl CoOccurrence {
    /// Counts item and pair occurrences over a request sequence in a single
    /// pass (`O(Σ|D_i|²)` — request item sets are tiny in practice).
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        let k = seq.items() as usize;
        let mut item_counts = vec![0usize; k];
        let mut pair_counts = vec![0usize; k * (k.saturating_sub(1)) / 2];
        for r in seq.requests() {
            for (a_pos, &a) in r.items.iter().enumerate() {
                item_counts[a.index()] += 1;
                for &b in &r.items[a_pos + 1..] {
                    // Builder guarantees sorted, duplicate-free item lists.
                    pair_counts[tri_index(k, a.index(), b.index())] += 1;
                }
            }
        }
        CoOccurrence {
            k,
            item_counts,
            pair_counts,
        }
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// `|d_i|` — requests containing `item`.
    #[inline]
    pub fn count(&self, item: ItemId) -> usize {
        self.item_counts[item.index()]
    }

    /// `|(d_i, d_j)|` — requests containing both items (symmetric;
    /// `i == j` returns `|d_i|`).
    pub fn pair_count(&self, a: ItemId, b: ItemId) -> usize {
        let (i, j) = (a.index(), b.index());
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.pair_counts[tri_index(self.k, i, j)],
            std::cmp::Ordering::Greater => self.pair_counts[tri_index(self.k, j, i)],
            std::cmp::Ordering::Equal => self.item_counts[i],
        }
    }

    /// Jaccard similarity of a pair per Eq. (5); `0` when neither item is
    /// ever requested.
    pub fn jaccard(&self, a: ItemId, b: ItemId) -> f64 {
        if a == b {
            // Eq. (4): the diagonal of the correlation matrix is 1.
            return 1.0;
        }
        let both = self.pair_count(a, b);
        let union = self.count(a) + self.count(b) - both;
        if union == 0 {
            0.0
        } else {
            both as f64 / union as f64
        }
    }
}

/// The symmetric correlation matrix `A` of Eq. (4), materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct JaccardMatrix {
    k: usize,
    /// Row-major `k×k` values; diagonal fixed at 1.
    values: Vec<f64>,
}

impl JaccardMatrix {
    /// Builds the full matrix from co-occurrence statistics.
    pub fn from_cooccurrence(co: &CoOccurrence) -> Self {
        let k = co.items();
        let mut values = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                values[i * k + j] = co.jaccard(ItemId(i as u32), ItemId(j as u32));
            }
        }
        JaccardMatrix { k, values }
    }

    /// Convenience: straight from a request sequence.
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        Self::from_cooccurrence(&CoOccurrence::from_sequence(seq))
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// `A(i, j)`.
    #[inline]
    pub fn get(&self, a: ItemId, b: ItemId) -> f64 {
        self.values[a.index() * self.k + b.index()]
    }

    /// All `i < j` pairs with their similarity, in unspecified order.
    pub fn pairs(&self) -> Vec<(ItemId, ItemId, f64)> {
        let mut out = Vec::with_capacity(self.k * (self.k.saturating_sub(1)) / 2);
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                out.push((
                    ItemId(i as u32),
                    ItemId(j as u32),
                    self.values[i * self.k + j],
                ));
            }
        }
        out
    }
}

mcs_model::impl_to_json!(CoOccurrence {
    k,
    item_counts,
    pair_counts
});
mcs_model::impl_to_json!(JaccardMatrix { k, values });

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_jaccard_is_three_sevenths() {
        let co = CoOccurrence::from_sequence(&paper_sequence());
        assert_eq!(co.count(ItemId(0)), 5);
        assert_eq!(co.count(ItemId(1)), 5);
        assert_eq!(co.pair_count(ItemId(0), ItemId(1)), 3);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 3.0 / 7.0));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let seq = RequestSeqBuilder::new(2, 3)
            .push(0u32, 1.0, [0, 1])
            .push(1u32, 2.0, [1, 2])
            .push(0u32, 3.0, [0, 1, 2])
            .push(1u32, 4.0, [0])
            .build()
            .unwrap();
        let m = JaccardMatrix::from_sequence(&seq);
        for i in 0..3 {
            assert!(approx_eq(m.get(ItemId(i), ItemId(i)), 1.0));
            for j in 0..3 {
                assert!(approx_eq(
                    m.get(ItemId(i), ItemId(j)),
                    m.get(ItemId(j), ItemId(i))
                ));
            }
        }
        // d1: requests {0,2,3}; d2: {0,1,2}; both: {0,2} → 2/4.
        assert!(approx_eq(m.get(ItemId(0), ItemId(1)), 0.5));
        // d1 & d3: both {2}, union {0,1,2,3} → 1/4.
        assert!(approx_eq(m.get(ItemId(0), ItemId(2)), 0.25));
    }

    #[test]
    fn never_requested_items_have_zero_similarity() {
        let seq = RequestSeqBuilder::new(1, 3)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert!(approx_eq(co.jaccard(ItemId(1), ItemId(2)), 0.0));
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 0.0));
    }

    #[test]
    fn identical_access_patterns_have_similarity_one() {
        let seq = RequestSeqBuilder::new(1, 2)
            .push(0u32, 1.0, [0, 1])
            .push(0u32, 2.0, [0, 1])
            .build()
            .unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 1.0));
    }

    #[test]
    fn pair_counts_match_sequence_scan() {
        let co = CoOccurrence::from_sequence(&paper_sequence());
        let seq = paper_sequence();
        assert_eq!(
            co.pair_count(ItemId(0), ItemId(1)),
            seq.count_pair(ItemId(0), ItemId(1))
        );
        assert_eq!(
            co.pair_count(ItemId(1), ItemId(0)),
            seq.count_pair(ItemId(0), ItemId(1))
        );
    }

    #[test]
    fn tri_index_is_a_bijection() {
        let k = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..k {
            for j in (i + 1)..k {
                assert!(seen.insert(tri_index(k, i, j)));
            }
        }
        assert_eq!(seen.len(), k * (k - 1) / 2);
        assert_eq!(seen.iter().max(), Some(&(k * (k - 1) / 2 - 1)));
    }
}
